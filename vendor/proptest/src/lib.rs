//! Vendored offline subset of proptest (see `vendor/README.md`).
//!
//! Generation-only property testing: each `proptest!` test runs
//! `ProptestConfig::cases` cases, deriving a deterministic RNG per case
//! from the test's module path and case index. There is no shrinking —
//! a failing case panics with the case seed and the generated inputs,
//! which is enough to reproduce it (case RNGs are stable across runs).

pub mod strategy;

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng as _;
    use std::fmt;

    /// Per-test tuning; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// A hard failure: the property does not hold.
        Fail(String),
        /// The generated input was unsuitable; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    /// Deterministic RNG for one case of one test: FNV-1a over the test
    /// name, mixed with the case index by the golden-ratio constant.
    pub fn case_rng(test_name: &str, case: u64) -> SmallRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng as _;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),+ $(,)?) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut SmallRng) -> $ty {
                    rng.gen::<$ty>()
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    /// The strategy behind [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Any<T> {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`: full range for primitives.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// Element-count specification: an exact count or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                start: exact,
                end: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng as _;

    /// Strategy for `Option<S::Value>`, `Some` with probability 1/2.
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
            if rng.gen::<bool>() {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng as _;

    /// Uniform choice among a fixed list of values.
    #[derive(Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(
            !values.is_empty(),
            "sample::select needs at least one value"
        );
        Select(values)
    }
}

pub mod string {
    use rand::rngs::SmallRng;
    use rand::Rng as _;

    /// One repeatable unit of the regex subset.
    enum Atom {
        /// `.` — any printable ASCII character.
        Dot,
        /// `[...]` — explicit chars and `a-z` ranges.
        Class(Vec<(char, char)>),
        /// A literal character.
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Parses the regex subset used by the workspace's string strategies:
    /// sequences of `.`/`[class]`/literal atoms, each optionally followed
    /// by `{n}`, `{m,n}`, `?`, `*`, or `+` (unbounded repeats cap at 8).
    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Dot,
                '[' => {
                    let mut ranges = Vec::new();
                    let mut inner: Vec<char> = Vec::new();
                    for nc in chars.by_ref() {
                        if nc == ']' {
                            break;
                        }
                        inner.push(nc);
                    }
                    let mut i = 0;
                    while i < inner.len() {
                        if i + 2 < inner.len() && inner[i + 1] == '-' {
                            ranges.push((inner[i], inner[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((inner[i], inner[i]));
                            i += 1;
                        }
                    }
                    Atom::Class(ranges)
                }
                '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
                other => Atom::Literal(other),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for nc in chars.by_ref() {
                        if nc == '}' {
                            break;
                        }
                        spec.push(nc);
                    }
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad {m,n} bound"),
                            hi.trim().parse().expect("bad {m,n} bound"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad {n} bound");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// Generates one string matching `pattern` (within the subset above).
    pub fn generate_from_pattern(pattern: &str, rng: &mut SmallRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = if piece.min == piece.max {
                piece.min
            } else {
                rng.gen_range(piece.min..piece.max + 1)
            };
            for _ in 0..count {
                match &piece.atom {
                    Atom::Dot => out.push(rng.gen_range(0x20u8..0x7f) as char),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                        out.push(rng.gen_range(lo as u32..hi as u32 + 1) as u8 as char);
                    }
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of proptest's `prelude::prop` namespace module.
    pub mod prop {
        pub use crate::{collection, option, sample, strategy};
    }
}

/// Runs each contained `#[test] fn name(arg in strategy, ...) { ... }`
/// over `cases` generated inputs. A leading
/// `#![proptest_config(expr)]` sets the config for every test in the
/// block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    u64::from(__case),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err(e) => panic!(
                        "[proptest] {} failed at case {}/{}: {}\n    inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e,
                        __inputs,
                    ),
                }
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

/// Fails the enclosing proptest case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the enclosing proptest case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} — {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Fails the enclosing proptest case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::uniform(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..5, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_spec(
            exact in prop::collection::vec(0u64..10, 7),
            ranged in prop::collection::vec(0u64..10, 0..4),
        ) {
            prop_assert_eq!(exact.len(), 7);
            prop_assert!(ranged.len() < 4);
        }

        #[test]
        fn strings_match_their_pattern(s in "[a-c]{2,5}", any_s in ".{0,8}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5, "{}", s);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(any_s.len() <= 8);
        }

        #[test]
        fn oneof_and_combinators_compose(
            v in prop_oneof![Just(1u8), Just(2u8), 10u8..20],
            opt in prop::option::of(0i64..4),
            pick in prop::sample::select(vec!["x", "y"]),
            mapped in (0u32..3).prop_map(|n| n * 10),
        ) {
            prop_assert!(v == 1 || v == 2 || (10..20).contains(&v));
            prop_assert!(opt.is_none() || opt.unwrap() < 4);
            prop_assert!(pick == "x" || pick == "y");
            prop_assert!(mapped % 10 == 0 && mapped <= 20);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .boxed()
            .prop_recursive(4, 24, 3, |inner| {
                prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::case_rng("recursive", 0);
        for _ in 0..200 {
            // Must not hang or overflow the stack; depth is bounded.
            let _ = strat.generate(&mut rng);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = prop::collection::vec(0u64..1000, 0..10);
        let a: Vec<Vec<u64>> = (0..20)
            .map(|c| s.generate(&mut crate::test_runner::case_rng("det", c)))
            .collect();
        let b: Vec<Vec<u64>> = (0..20)
            .map(|c| s.generate(&mut crate::test_runner::case_rng("det", c)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn rejects_skip_the_case(x in 0u32..10) {
            if x > 3 {
                return Err(TestCaseError::reject("too big"));
            }
            prop_assert!(x <= 3);
        }
    }
}
