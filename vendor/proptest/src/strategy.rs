//! Strategy trait and combinators (generation-only; no shrink trees).

use rand::rngs::SmallRng;
use rand::Rng as _;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of `Value` from a seeded RNG.
///
/// Combinator methods carry `where Self: Sized` so the trait stays
/// object-safe; [`BoxedStrategy`] erases concrete strategy types.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Recursive strategies: `self` generates leaves; `branch` builds one
    /// recursion level from a strategy for the level below. Each of the
    /// `depth` levels mixes leaves back in (1:3) so generated trees have
    /// varied depth, and recursion is strictly bounded.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = Union::weighted(vec![(1, leaf.clone()), (3, branch(level).boxed())]).boxed();
        }
        level
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted choice among strategies of a common value type; the
/// `prop_oneof!` macro builds the uniform case.
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    pub fn uniform(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "Union needs at least one option");
        let total = options.iter().map(|(w, _)| *w).sum();
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, option) in &self.options {
            if pick < *weight {
                return option.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights changed during generation")
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+ $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut SmallRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// `&str` strategies generate strings matching the pattern as a regex
/// (within the subset `crate::string` implements).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);
