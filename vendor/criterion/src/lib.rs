//! Vendored offline subset of criterion (see `vendor/README.md`).
//!
//! Enough harness to run `cargo bench` without the registry: each
//! benchmark warms up briefly, runs `sample_size` timed samples of an
//! adaptively chosen iteration count, and prints the per-iteration
//! median. No statistics beyond that, no HTML reports, no CLI filters.

use std::time::{Duration, Instant};

/// Top-level benchmark driver, one per `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, 10, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up single iteration; its timing picks the per-sample count so
    // each sample lands around a few milliseconds.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 100_000);

    let mut nanos_per_iter: Vec<u128> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters: iters as u64,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() / iters
        })
        .collect();
    nanos_per_iter.sort_unstable();
    let median = nanos_per_iter[nanos_per_iter.len() / 2];
    println!("{id:<40} time: {median} ns/iter ({samples} samples x {iters} iters)");
}

/// Declares a runnable group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_apply_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("inc", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }
}
