//! Vendored offline subset of rand 0.8.5 (see `vendor/README.md`).
//!
//! Only the surface the workspace uses is provided: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`].
//! The algorithms follow rand 0.8.5 — SplitMix64 seeding into
//! xoshiro256++, Lemire widening-multiply rejection for integer ranges,
//! the `[1, 2)` mantissa trick for float ranges. Streams are fully
//! deterministic across runs and platforms; every committed fixture that
//! embeds RNG-derived bytes (the golden journals under `tests/golden/`)
//! is maintained against this implementation. Changing any sampling
//! algorithm here is a breaking change to those fixtures.

use crate::distributions::{Distribution, Standard};

/// Low-level source of randomness: the two word sizes plus byte fill.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Default PCG32-based seed expansion, as in rand_core 0.6. `SmallRng`
    /// overrides this with the SplitMix64 path xoshiro256++ defines.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let word = pcg32(&mut state);
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// rand 0.8.5's `SmallRng` on 64-bit targets: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        /// SplitMix64 expansion, as xoshiro256++ recommends.
        fn seed_from_u64(mut state: u64) -> SmallRng {
            const PHI: u64 = 0x9e3779b97f4a7c15;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(8) {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                chunk.copy_from_slice(&z.to_le_bytes());
            }
            SmallRng::from_seed(seed)
        }

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            if seed.iter().all(|&b| b == 0) {
                return SmallRng::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            SmallRng { s }
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// A way of turning raw random words into values of `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" full-range distribution for primitives.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            // Sign test on the most significant bit, as rand 0.8 does.
            (rng.next_u32() as i32) < 0
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53-bit multiply: uniform in [0, 1).
            let value = rng.next_u64() >> 11;
            value as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            let value = rng.next_u32() >> 8;
            value as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    macro_rules! standard_int {
        ($($ty:ty => $method:ident as $cast:ty),+ $(,)?) => {$(
            impl Distribution<$ty> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.$method() as $cast as $ty
                }
            }
        )+};
    }

    standard_int! {
        u8 => next_u32 as u8,
        u16 => next_u32 as u16,
        u32 => next_u32 as u32,
        u64 => next_u64 as u64,
        usize => next_u64 as usize,
        i8 => next_u32 as u8,
        i16 => next_u32 as u16,
        i32 => next_u32 as u32,
        i64 => next_u64 as u64,
        isize => next_u64 as usize,
    }

    pub mod uniform {
        use super::super::RngCore;
        use core::ops::Range;

        /// Types samplable over a half-open range.
        pub trait SampleUniform: Sized {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        }

        /// Range shapes accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "cannot sample empty range");
                T::sample_single(self.start, self.end, rng)
            }
        }

        // Lemire widening-multiply rejection, exactly as rand 0.8.5's
        // `uniform_int_impl!` does it: convert the half-open bound to
        // inclusive, then reject on the low product word. Small types
        // (≤ 16 bits) use the exact modulo zone; wide types use the
        // leading-zeros approximation.
        macro_rules! uniform_int_impl {
            ($ty:ty, $uty:ty, $ul:ty, $draw:ident, $wide:ty, $small_zone:expr) => {
                impl SampleUniform for $ty {
                    fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                        let high_inc = high.wrapping_sub(1);
                        let range = (high_inc.wrapping_sub(low) as $uty as $ul).wrapping_add(1);
                        if range == 0 {
                            // Full type range: any draw works.
                            return rng.$draw() as $ty;
                        }
                        let zone: $ul = if $small_zone {
                            let ints_to_reject = (<$ul>::MAX - range + 1) % range;
                            <$ul>::MAX - ints_to_reject
                        } else {
                            (range << range.leading_zeros()).wrapping_sub(1)
                        };
                        loop {
                            let v = rng.$draw() as $ul;
                            let wide = (v as $wide) * (range as $wide);
                            let hi = (wide >> (<$ul>::BITS)) as $ul;
                            let lo = wide as $ul;
                            if lo <= zone {
                                return low.wrapping_add(hi as $ty);
                            }
                        }
                    }
                }
            };
        }

        uniform_int_impl!(u8, u8, u32, next_u32, u64, true);
        uniform_int_impl!(i8, u8, u32, next_u32, u64, true);
        uniform_int_impl!(u16, u16, u32, next_u32, u64, true);
        uniform_int_impl!(i16, u16, u32, next_u32, u64, true);
        uniform_int_impl!(u32, u32, u32, next_u32, u64, false);
        uniform_int_impl!(i32, u32, u32, next_u32, u64, false);
        uniform_int_impl!(u64, u64, u64, next_u64, u128, false);
        uniform_int_impl!(i64, u64, u64, next_u64, u128, false);
        uniform_int_impl!(usize, usize, u64, next_u64, u128, false);
        uniform_int_impl!(isize, usize, u64, next_u64, u128, false);

        impl SampleUniform for f64 {
            fn sample_single<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
                let scale = high - low;
                loop {
                    // Value in [1, 2): 52 mantissa bits under exponent 0.
                    let bits = (rng.next_u64() >> 12) | (1023u64 << 52);
                    let value1_2 = f64::from_bits(bits);
                    let res = value1_2 * scale + (low - scale);
                    if res < high {
                        return res;
                    }
                }
            }
        }

        impl SampleUniform for f32 {
            fn sample_single<R: RngCore + ?Sized>(low: f32, high: f32, rng: &mut R) -> f32 {
                let scale = high - low;
                loop {
                    let bits = (rng.next_u32() >> 9) | (127u32 << 23);
                    let value1_2 = f32::from_bits(bits);
                    let res = value1_2 * scale + (low - scale);
                    if res < high {
                        return res;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng as _, SeedableRng as _};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(
            xs,
            (0..8)
                .map(|_| SmallRng::seed_from_u64(43).gen::<u64>())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let u = rng.gen_range(0..3u8);
            assert!(u < 3);
            let z = rng.gen_range(0usize..17);
            assert!(z < 17);
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bools_take_both_values() {
        let mut rng = SmallRng::seed_from_u64(5);
        let trues = (0..1_000).filter(|_| rng.gen::<bool>()).count();
        assert!(trues > 300 && trues < 700, "{trues}");
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = SmallRng::seed_from_u64(11);
        a.gen::<u64>();
        let mut b = a.clone();
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
