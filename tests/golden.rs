//! Golden-journal regression corpus: reference journals committed under
//! `tests/golden/`, pinned byte for byte. Two invariants ride on them:
//!
//! * **Engine stability** — re-running the recorded campaign (at a
//!   *parallel* `--jobs` × `--oracle-jobs` setting, exercising both the
//!   round engine and the work-stealing oracle) reproduces the committed
//!   bytes exactly. Any drift in mutation order, verdicts, coverage
//!   deltas, or journal encoding fails here first.
//! * **Resume fidelity** — `--resume` re-emits a journal bit-identically,
//!   both from a complete journal and from one interrupted mid-campaign.
//!
//! Plain mode only: corpus-mode headers embed machine-specific store
//! paths. Fault plans *are* journaled, so the fault-injected golden
//! legitimately covers retry and quarantine records.
//!
//! To regenerate after an intentional engine change:
//!
//! ```text
//! cargo test --test golden regenerate_golden_journals -- --ignored
//! ```
//!
//! then commit the diff alongside the change that explains it.

use jvmsim::FaultPlan;
use mopfuzzer::corpus::Seed;
use mopfuzzer::{
    read_journal, resume_campaign_extended, run_campaign_with_journal, CampaignConfig,
    JournalWriter,
};
use std::fs;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mop_golden_{}_{name}", std::process::id()))
}

/// The recorded campaigns, each with its seed corpus. Configs are spelled
/// out here because worker counts are not journaled — the journal is
/// identical at any of them.
///
/// Beyond the two engine-stability campaigns, three themed campaigns pin
/// the execution substrate itself: `long_heavy` (untagged 64-bit value
/// representation at the i32/i64 boundaries), `deep_call` (register-file
/// frame windows under recursion and leaf-inline-threshold call storms),
/// and `reflection` (the reflective invoke path's receiver and boxed-value
/// crossings).
fn golden_campaigns() -> Vec<(&'static str, CampaignConfig, Vec<Seed>)> {
    let plain = CampaignConfig {
        iterations_per_seed: 10,
        rounds: 6,
        rng_seed: 2024,
        ..CampaignConfig::new(6)
    };
    let mut faulted = CampaignConfig {
        iterations_per_seed: 10,
        rounds: 8,
        rng_seed: 77,
        ..CampaignConfig::new(8)
    };
    faulted.fault = Some(FaultPlan::new(7, 0.25));
    let themed = |rng_seed: u64| CampaignConfig {
        iterations_per_seed: 6,
        rounds: 4,
        rng_seed,
        ..CampaignConfig::new(4)
    };
    vec![
        ("plain_v2.jsonl", plain, mopfuzzer::corpus::builtin()),
        ("faulted_v2.jsonl", faulted, mopfuzzer::corpus::builtin()),
        (
            "long_heavy_v1.jsonl",
            themed(4101),
            mopfuzzer::corpus::long_heavy_seeds(),
        ),
        (
            "deep_call_v1.jsonl",
            themed(4102),
            mopfuzzer::corpus::deep_call_seeds(),
        ),
        (
            "reflection_v1.jsonl",
            themed(4103),
            mopfuzzer::corpus::reflection_heavy_seeds(),
        ),
    ]
}

/// Re-running the recorded campaign — with round-level and oracle-level
/// parallelism on — reproduces the committed journal bytes.
#[test]
fn fresh_runs_reproduce_the_golden_journals() {
    for (name, mut config, seeds) in golden_campaigns() {
        let golden = fs::read(golden_dir().join(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e} (see module docs)"));
        config.jobs = 2;
        config.oracle_jobs = 4;
        let path = temp_path(name);
        run_campaign_with_journal(&seeds, &config, &path).unwrap();
        assert_eq!(
            golden,
            fs::read(&path).unwrap(),
            "fresh run diverged from golden {name}; if the engine change is \
             intentional, regenerate (see module docs)"
        );
        fs::remove_file(&path).ok();
    }
}

/// `--resume` re-emits every golden bit-identically: from the complete
/// journal (pure replay) and from a copy interrupted halfway (replay +
/// live completion), in both cases with parallel workers.
#[test]
fn resume_reemits_the_golden_bytes() {
    for (name, _, _) in golden_campaigns() {
        let golden_path = golden_dir().join(name);
        let golden = fs::read(&golden_path)
            .unwrap_or_else(|e| panic!("missing golden {name}: {e} (see module docs)"));
        let contents = read_journal(&golden_path).unwrap();
        let cuts = [contents.records.len(), contents.records.len() / 2];
        for (i, cut) in cuts.into_iter().enumerate() {
            // Rebuild a journal holding only the first `cut` records — the
            // on-disk state of a campaign killed mid-flight.
            let path = temp_path(&format!("{i}_{name}"));
            let mut writer = JournalWriter::create(
                &path,
                &contents.config,
                &contents.seeds,
                contents.corpus.as_ref(),
            )
            .unwrap();
            for record in &contents.records[..cut] {
                writer.write_round(record).unwrap();
            }
            drop(writer);
            resume_campaign_extended(&path, None, Some(2), Some(4), None).unwrap();
            assert_eq!(
                golden,
                fs::read(&path).unwrap(),
                "resume from {cut} record(s) did not re-emit golden {name}"
            );
            fs::remove_file(&path).ok();
        }
    }
}

/// Writes the reference journals (serial engine — though any worker
/// count produces the same bytes, the generator stays at 1×1 so a
/// determinism bug can never contaminate the references themselves).
/// Run explicitly after an intentional engine change; see module docs.
#[test]
#[ignore = "regenerates the committed golden journals"]
fn regenerate_golden_journals() {
    fs::create_dir_all(golden_dir()).unwrap();
    for (name, config, seeds) in golden_campaigns() {
        let path = golden_dir().join(name);
        run_campaign_with_journal(&seeds, &config, &path).unwrap();
        println!("wrote {}", path.display());
    }
}

/// Worker counts are an execution detail: the themed substrate campaigns
/// emit byte-identical journals at `--jobs 1` and `--jobs 4` (with the
/// oracle pool width varied too).
#[test]
fn themed_campaigns_are_byte_identical_across_worker_counts() {
    for (name, config, seeds) in golden_campaigns() {
        if !name.ends_with("_v1.jsonl") {
            continue;
        }
        let golden = fs::read(golden_dir().join(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e} (see module docs)"));
        for (jobs, oracle_jobs) in [(1, 1), (4, 4)] {
            let mut config = config.clone();
            config.jobs = jobs;
            config.oracle_jobs = oracle_jobs;
            let path = temp_path(&format!("j{jobs}_{name}"));
            run_campaign_with_journal(&seeds, &config, &path).unwrap();
            assert_eq!(
                golden,
                fs::read(&path).unwrap(),
                "golden {name} diverged at --jobs {jobs} --oracle-jobs {oracle_jobs}"
            );
            fs::remove_file(&path).ok();
        }
    }
}
