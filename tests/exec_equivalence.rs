//! Cross-substrate equivalence: the closure-threaded executor
//! (`jexec::threaded`, the default) and the reference `Instr`-matching
//! interpreter (`jexec::interp`) must be observationally identical — not
//! just same output, but same step counts, same error at the same
//! instruction, same hotness profile, same `--profile` opcode tables,
//! and byte-identical campaign journals.
//!
//! Three layers of evidence:
//!
//! * **Golden corpus** — the committed golden journals are reproduced
//!   byte for byte under *both* `--exec-mode` settings (the substrate is
//!   an execution detail, never journaled).
//! * **Proptest sweep** — generated corpus programs agree on the full
//!   [`jexec::Outcome`] (output, error, stats incl. step counts, hotness
//!   profile) and on the profiler's per-opcode attribution tables, at
//!   default fuel and under fuel exhaustion.
//! * **Hang containment** — a cancelled watchdog token aborts both
//!   substrates with the same timeout panic payload.

use jexec::{ExecConfig, ExecMode};
use mopfuzzer::{run_campaign_with_journal, CampaignConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Restores the process-wide default exec mode on drop, so a failing
/// assertion cannot leak `Interp` into other tests in this binary.
struct ModeGuard(ExecMode);

impl ModeGuard {
    fn set(mode: ExecMode) -> ModeGuard {
        let guard = ModeGuard(jexec::default_exec_mode());
        jexec::set_default_exec_mode(mode);
        guard
    }
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        jexec::set_default_exec_mode(self.0);
    }
}

fn config_with_mode(mode: ExecMode) -> ExecConfig {
    ExecConfig {
        mode,
        ..ExecConfig::default()
    }
}

/// Both substrates reproduce the committed golden journals byte for
/// byte. This is the end-to-end form of the invariant: the whole
/// campaign pipeline (mutation, optimization, the 8-JVM differential
/// oracle, journal encoding) is insensitive to `--exec-mode`.
#[test]
fn golden_journals_are_byte_identical_across_exec_modes() {
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let seeds = mopfuzzer::corpus::builtin();
    let campaigns = [
        (
            "plain_v2.jsonl",
            CampaignConfig {
                iterations_per_seed: 10,
                rounds: 6,
                rng_seed: 2024,
                ..CampaignConfig::new(6)
            },
        ),
        (
            "faulted_v2.jsonl",
            CampaignConfig {
                iterations_per_seed: 10,
                rounds: 8,
                rng_seed: 77,
                ..CampaignConfig::new(8)
            },
        ),
    ];
    for (name, mut config) in campaigns {
        if name.starts_with("faulted") {
            config.fault = Some(jvmsim::FaultPlan::new(7, 0.25));
        }
        config.jobs = 2;
        config.oracle_jobs = 4;
        let golden = fs::read(golden_dir.join(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
        for mode in [ExecMode::Interp, ExecMode::Threaded] {
            let _guard = ModeGuard::set(mode);
            let path: PathBuf =
                std::env::temp_dir().join(format!("mop_exec_eq_{}_{name}", std::process::id()));
            run_campaign_with_journal(&seeds, &config, &path).unwrap();
            let produced = fs::read(&path).unwrap();
            fs::remove_file(&path).ok();
            assert_eq!(
                golden, produced,
                "--exec-mode {mode:?} diverged from golden {name}: the \
                 substrate must never be observable in journal bytes"
            );
        }
    }
}

/// A pre-cancelled watchdog token aborts both substrates at the same
/// poll point (steps & 0xFFF == 0) with the same timeout panic payload.
#[test]
fn hang_cancellation_aborts_both_substrates_identically() {
    let src = r#"
        class T {
            static void main() {
                int s = 0;
                for (int i = 0; i < 2_000_000; i++) { s = s + 1; }
                System.out.println(s);
            }
        }
    "#;
    let program = mjava::parse(src).unwrap();
    let mut payloads = Vec::new();
    for mode in [ExecMode::Interp, ExecMode::Threaded] {
        let token = jtelemetry::cancel::CancelToken::new();
        token.cancel();
        let _guard = jtelemetry::cancel::install(&token);
        let config = config_with_mode(mode);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            jexec::run_program(&program, &config)
        }));
        let payload = match result {
            Ok(_) => panic!("{mode:?} ignored the cancelled token"),
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .expect("timeout panics carry a String payload"),
        };
        assert!(
            payload.starts_with(jtelemetry::cancel::TIMEOUT_PANIC_MARKER),
            "{mode:?} panicked without the timeout marker: {payload}"
        );
        payloads.push(payload);
    }
    assert_eq!(
        payloads[0], payloads[1],
        "both substrates must classify the abort identically"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated corpus programs produce bit-identical [`jexec::Outcome`]s
    /// (output, error, every stats counter incl. step count, hotness
    /// profile) and identical `--profile` opcode-attribution tables on
    /// both substrates.
    #[test]
    fn generated_programs_agree_across_substrates(gen_seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(gen_seed);
        let program = mopfuzzer::corpus::generate(&mut rng, gen_seed as usize % 1000);
        let mut runs = Vec::new();
        for mode in [ExecMode::Interp, ExecMode::Threaded] {
            jtelemetry::install(jtelemetry::Session::from_spec(jtelemetry::SessionSpec {
                manual: true,
                trace: false,
                profile: true,
            }));
            let outcome = jexec::run_program(&program, &config_with_mode(mode))
                .expect("generated program builds");
            let opcodes = jtelemetry::take().unwrap().snapshot().opcodes;
            runs.push((outcome, opcodes));
        }
        prop_assert_eq!(&runs[0].0, &runs[1].0, "outcomes diverged");
        prop_assert_eq!(&runs[0].1, &runs[1].1, "opcode tables diverged");
    }

    /// Fuel exhaustion is step-exact: at any fuel budget both substrates
    /// stop on the same instruction with the same partial output, stats,
    /// and profile.
    #[test]
    fn fuel_exhaustion_is_step_exact_across_substrates(
        gen_seed in any::<u64>(),
        fuel in 1u64..4_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(gen_seed);
        let program = mopfuzzer::corpus::generate(&mut rng, gen_seed as usize % 1000);
        let mut outcomes = Vec::new();
        for mode in [ExecMode::Interp, ExecMode::Threaded] {
            let config = ExecConfig { fuel, ..config_with_mode(mode) };
            outcomes.push(
                jexec::run_program(&program, &config).expect("generated program builds"),
            );
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1]);
        // When the budget is short enough to bite, both report it.
        if let Some(err) = &outcomes[0].error {
            prop_assert_eq!(err, &jexec::ExecError::OutOfFuel);
            prop_assert_eq!(outcomes[0].stats.steps, fuel, "steps stop exactly at the budget");
        }
    }
}
