//! Cross-substrate equivalence: the closure-threaded executor
//! (`jexec::threaded`, the default) and the reference `Instr`-matching
//! interpreter (`jexec::interp`) must be observationally identical — not
//! just same output, but same step counts, same error at the same
//! instruction, same hotness profile, same `--profile` opcode tables,
//! and byte-identical campaign journals.
//!
//! Three layers of evidence:
//!
//! * **Golden corpus** — the committed golden journals are reproduced
//!   byte for byte under *both* `--exec-mode` settings (the substrate is
//!   an execution detail, never journaled).
//! * **Proptest sweep** — generated corpus programs agree on the full
//!   [`jexec::Outcome`] (output, error, stats incl. step counts, hotness
//!   profile) and on the profiler's per-opcode attribution tables, at
//!   default fuel and under fuel exhaustion.
//! * **Hang containment** — a cancelled watchdog token aborts both
//!   substrates with the same timeout panic payload.

use jexec::{ExecConfig, ExecMode};
use mopfuzzer::{run_campaign_with_journal, CampaignConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Restores the process-wide default exec mode on drop, so a failing
/// assertion cannot leak `Interp` into other tests in this binary.
struct ModeGuard(ExecMode);

impl ModeGuard {
    fn set(mode: ExecMode) -> ModeGuard {
        let guard = ModeGuard(jexec::default_exec_mode());
        jexec::set_default_exec_mode(mode);
        guard
    }
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        jexec::set_default_exec_mode(self.0);
    }
}

fn config_with_mode(mode: ExecMode) -> ExecConfig {
    ExecConfig {
        mode,
        ..ExecConfig::default()
    }
}

/// Both substrates reproduce the committed golden journals byte for
/// byte. This is the end-to-end form of the invariant: the whole
/// campaign pipeline (mutation, optimization, the 8-JVM differential
/// oracle, journal encoding) is insensitive to `--exec-mode`.
#[test]
fn golden_journals_are_byte_identical_across_exec_modes() {
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let themed = |rng_seed: u64| CampaignConfig {
        iterations_per_seed: 6,
        rounds: 4,
        rng_seed,
        ..CampaignConfig::new(4)
    };
    let campaigns = [
        (
            "plain_v2.jsonl",
            CampaignConfig {
                iterations_per_seed: 10,
                rounds: 6,
                rng_seed: 2024,
                ..CampaignConfig::new(6)
            },
            mopfuzzer::corpus::builtin(),
        ),
        (
            "faulted_v2.jsonl",
            CampaignConfig {
                iterations_per_seed: 10,
                rounds: 8,
                rng_seed: 77,
                ..CampaignConfig::new(8)
            },
            mopfuzzer::corpus::builtin(),
        ),
        // The substrate-stress campaigns (see tests/golden.rs): the
        // representation-hazard seed sets must journal identically on
        // both substrates too.
        (
            "long_heavy_v1.jsonl",
            themed(4101),
            mopfuzzer::corpus::long_heavy_seeds(),
        ),
        (
            "deep_call_v1.jsonl",
            themed(4102),
            mopfuzzer::corpus::deep_call_seeds(),
        ),
        (
            "reflection_v1.jsonl",
            themed(4103),
            mopfuzzer::corpus::reflection_heavy_seeds(),
        ),
    ];
    for (name, mut config, seeds) in campaigns {
        if name.starts_with("faulted") {
            config.fault = Some(jvmsim::FaultPlan::new(7, 0.25));
        }
        config.jobs = 2;
        config.oracle_jobs = 4;
        let golden = fs::read(golden_dir.join(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
        for mode in [ExecMode::Interp, ExecMode::Threaded] {
            let _guard = ModeGuard::set(mode);
            let path: PathBuf =
                std::env::temp_dir().join(format!("mop_exec_eq_{}_{name}", std::process::id()));
            run_campaign_with_journal(&seeds, &config, &path).unwrap();
            let produced = fs::read(&path).unwrap();
            fs::remove_file(&path).ok();
            assert_eq!(
                golden, produced,
                "--exec-mode {mode:?} diverged from golden {name}: the \
                 substrate must never be observable in journal bytes"
            );
        }
    }
}

/// A pre-cancelled watchdog token aborts both substrates at the same
/// poll point (steps & 0xFFF == 0) with the same timeout panic payload.
#[test]
fn hang_cancellation_aborts_both_substrates_identically() {
    let src = r#"
        class T {
            static void main() {
                int s = 0;
                for (int i = 0; i < 2_000_000; i++) { s = s + 1; }
                System.out.println(s);
            }
        }
    "#;
    let program = mjava::parse(src).unwrap();
    let mut payloads = Vec::new();
    for mode in [ExecMode::Interp, ExecMode::Threaded] {
        let token = jtelemetry::cancel::CancelToken::new();
        token.cancel();
        let _guard = jtelemetry::cancel::install(&token);
        let config = config_with_mode(mode);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            jexec::run_program(&program, &config)
        }));
        let payload = match result {
            Ok(_) => panic!("{mode:?} ignored the cancelled token"),
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .expect("timeout panics carry a String payload"),
        };
        assert!(
            payload.starts_with(jtelemetry::cancel::TIMEOUT_PANIC_MARKER),
            "{mode:?} panicked without the timeout marker: {payload}"
        );
        payloads.push(payload);
    }
    assert_eq!(
        payloads[0], payloads[1],
        "both substrates must classify the abort identically"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated corpus programs produce bit-identical [`jexec::Outcome`]s
    /// (output, error, every stats counter incl. step count, hotness
    /// profile) and identical `--profile` opcode-attribution tables on
    /// both substrates.
    #[test]
    fn generated_programs_agree_across_substrates(gen_seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(gen_seed);
        let program = mopfuzzer::corpus::generate(&mut rng, gen_seed as usize % 1000);
        let mut runs = Vec::new();
        for mode in [ExecMode::Interp, ExecMode::Threaded] {
            jtelemetry::install(jtelemetry::Session::from_spec(jtelemetry::SessionSpec {
                manual: true,
                trace: false,
                profile: true,
            }));
            let outcome = jexec::run_program(&program, &config_with_mode(mode))
                .expect("generated program builds");
            let opcodes = jtelemetry::take().unwrap().snapshot().opcodes;
            runs.push((outcome, opcodes));
        }
        prop_assert_eq!(&runs[0].0, &runs[1].0, "outcomes diverged");
        prop_assert_eq!(&runs[0].1, &runs[1].1, "opcode tables diverged");
    }

    /// Fuel exhaustion is step-exact: at any fuel budget both substrates
    /// stop on the same instruction with the same partial output, stats,
    /// and profile.
    #[test]
    fn fuel_exhaustion_is_step_exact_across_substrates(
        gen_seed in any::<u64>(),
        fuel in 1u64..4_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(gen_seed);
        let program = mopfuzzer::corpus::generate(&mut rng, gen_seed as usize % 1000);
        let mut outcomes = Vec::new();
        for mode in [ExecMode::Interp, ExecMode::Threaded] {
            let config = ExecConfig { fuel, ..config_with_mode(mode) };
            outcomes.push(
                jexec::run_program(&program, &config).expect("generated program builds"),
            );
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1]);
        // When the budget is short enough to bite, both report it.
        if let Some(err) = &outcomes[0].error {
            prop_assert_eq!(err, &jexec::ExecError::OutOfFuel);
            prop_assert_eq!(outcomes[0].stats.steps, fuel, "steps stop exactly at the budget");
        }
    }
}

// ---------------------------------------------------------------------------
// Representation-hazard battery
// ---------------------------------------------------------------------------
//
// The threaded substrate stores every value untagged in a 64-bit register
// file, recovers `int`×`int` arithmetic at lowering time, and executes tiny
// leaf calls inline in the caller's frame window. Each of those moves has a
// characteristic failure mode:
//
// * i64 boundary values whose low 32 bits collide with small ints,
// * values crossing a call boundary (argument slots become callee locals
//   in place — no copying),
// * leaf bodies right at the inline-size threshold, mixed with bodies just
//   over it.
//
// The generator below is *biased* toward exactly those shapes, and the
// properties check the full `Outcome` (output, error, every stat counter
// including the step index), the profiler's per-opcode tables, and
// step-index equality under truncated fuel — all with proptest shrinking,
// so a divergence minimizes to a small program.

/// Long constants at the representation boundaries.
const HAZARD_LONGS: &[&str] = &[
    "0L",
    "1L",
    "-1L",
    "2147483647L",
    "2147483648L",
    "-2147483648L",
    "-2147483649L",
    "4294967295L",
    "4294967296L",
    "4294967297L",
    "9223372036854775807L",
    "-9223372036854775807L - 1L",
];

/// Int constants at the 32-bit boundaries.
const HAZARD_INTS: &[&str] = &["0", "1", "-1", "7", "2147483647", "-2147483647 - 1"];

/// One generated static method: parameter widths, a body template, and an
/// index into the hazard-constant pools.
#[derive(Debug, Clone)]
struct HazardMethod {
    /// Parameter widths; `true` = `long`.
    params: Vec<bool>,
    /// Body template: 0 = sum (leaf, inlinable), 1 = scale-sub (leaf),
    /// 2 = boolean compare (leaf), 3 = wide body (over the inline cap).
    kind: u8,
    /// Hazard-constant selector.
    k: usize,
}

impl HazardMethod {
    fn returns_bool(&self) -> bool {
        self.kind == 2
    }

    fn render(&self, i: usize) -> String {
        let names = ["a", "b", "c"];
        let params: Vec<String> = self
            .params
            .iter()
            .enumerate()
            .map(|(p, &long)| format!("{} {}", if long { "long" } else { "int" }, names[p]))
            .collect();
        let c = HAZARD_LONGS[self.k % HAZARD_LONGS.len()];
        let sum = self
            .params
            .iter()
            .enumerate()
            .map(|(p, _)| names[p])
            .collect::<Vec<_>>()
            .join(" + ");
        let body = match self.kind {
            0 => format!("return {sum} + ({c});"),
            1 => format!("return a * 2L - ({c});"),
            2 => format!("return a > ({c});"),
            _ => format!(
                "long t = {sum} + ({c}); t = t * 3L; t = t - a; t = t + (t / 5L); return t;"
            ),
        };
        let ret = if self.returns_bool() {
            "boolean"
        } else {
            "long"
        };
        format!("    static {ret} m{i}({}) {{ {body} }}", params.join(", "))
    }

    /// Renders a call-site argument list. Int parameters draw from the
    /// int pool or the live loop counter; long parameters from the long
    /// pool or the live accumulator — so computed values keep crossing
    /// the call boundary.
    fn render_args(&self, mi: usize, salt: &[u8]) -> String {
        self.params
            .iter()
            .enumerate()
            .map(|(p, &long)| {
                let pick = salt[(mi * 3 + p) % salt.len()] as usize;
                if long {
                    match pick % (HAZARD_LONGS.len() + 1) {
                        0 => "acc".to_string(),
                        n => format!("({})", HAZARD_LONGS[n - 1]),
                    }
                } else {
                    match pick % (HAZARD_INTS.len() + 2) {
                        0 => "i".to_string(),
                        1 => "ia".to_string(),
                        n => format!("({})", HAZARD_INTS[n - 2]),
                    }
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// A whole generated program: a handful of hazard methods plus a `main`
/// loop that routes boundary values through every call shape, an instance
/// method (receiver + field crossing), and prints the accumulated state.
#[derive(Debug, Clone)]
struct HazardProgram {
    methods: Vec<HazardMethod>,
    iters: u8,
    salt: Vec<u8>,
}

impl HazardProgram {
    fn render(&self) -> String {
        let mut out = String::from("class H {\n    long f;\n");
        for (i, m) in self.methods.iter().enumerate() {
            out.push_str(&m.render(i));
            out.push('\n');
        }
        out.push_str("    long via(long x) { f = f + x; return f; }\n");
        out.push_str("    static void main() {\n");
        out.push_str("        H h = new H();\n");
        let acc0 = HAZARD_LONGS[self.salt[0] as usize % HAZARD_LONGS.len()];
        out.push_str(&format!("        long acc = {acc0};\n"));
        out.push_str("        int ia = 1;\n");
        out.push_str(&format!(
            "        for (int i = 0; i < {}; i++) {{\n",
            self.iters
        ));
        for (i, m) in self.methods.iter().enumerate() {
            let args = m.render_args(i, &self.salt);
            if m.returns_bool() {
                out.push_str(&format!(
                    "            if (H.m{i}({args})) {{ acc = acc - 1L; }}\n"
                ));
            } else {
                out.push_str(&format!("            acc = acc + H.m{i}({args});\n"));
            }
        }
        out.push_str("            ia = ia + i;\n");
        out.push_str("            acc = acc + h.via(acc);\n");
        out.push_str("        }\n");
        out.push_str("        System.out.println(acc);\n");
        out.push_str("        System.out.println(ia);\n");
        out.push_str("        System.out.println(h.f);\n");
        out.push_str("    }\n}\n");
        out
    }
}

fn hazard_program() -> impl Strategy<Value = HazardProgram> {
    let method = (
        proptest::collection::vec(any::<bool>(), 1..4),
        0u8..4,
        any::<usize>(),
    )
        .prop_map(|(params, kind, k)| HazardMethod { params, kind, k });
    (
        proptest::collection::vec(method, 1..4),
        1u8..11,
        proptest::collection::vec(any::<u8>(), 4..13),
    )
        .prop_map(|(methods, iters, salt)| HazardProgram {
            methods,
            iters,
            salt,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full battery: outcome equality (including error identity and
    /// exact step counts), per-opcode attribution tables, and step-index
    /// equality at truncated fuel budgets — which cut execution inside
    /// superinstructions and inside inlined leaf bodies.
    #[test]
    fn representation_hazards_agree_across_substrates(prog in hazard_program()) {
        let src = prog.render();
        let program = mjava::parse(&src)
            .unwrap_or_else(|e| panic!("generator emitted invalid source: {e:?}\n{src}"));
        let mut runs = Vec::new();
        for mode in [ExecMode::Interp, ExecMode::Threaded] {
            jtelemetry::install(jtelemetry::Session::from_spec(jtelemetry::SessionSpec {
                manual: true,
                trace: false,
                profile: true,
            }));
            let outcome = jexec::run_program(&program, &config_with_mode(mode))
                .expect("generated program builds");
            let opcodes = jtelemetry::take().unwrap().snapshot().opcodes;
            runs.push((outcome, opcodes));
        }
        prop_assert_eq!(&runs[0].0, &runs[1].0, "outcomes diverged on:\n{}", src);
        prop_assert_eq!(&runs[0].1, &runs[1].1, "opcode tables diverged on:\n{}", src);
        // Step-index equality: truncate fuel at awkward cut points. Every
        // budget must stop both substrates on the same step with the same
        // partial output.
        let total = runs[0].0.stats.steps;
        for fuel in [1, 2, total / 3, total / 2, total.saturating_sub(1)] {
            let mut outcomes = Vec::new();
            for mode in [ExecMode::Interp, ExecMode::Threaded] {
                let config = ExecConfig { fuel, ..config_with_mode(mode) };
                outcomes.push(
                    jexec::run_program(&program, &config).expect("generated program builds"),
                );
            }
            prop_assert_eq!(
                &outcomes[0], &outcomes[1],
                "diverged at fuel {} on:\n{}", fuel, src
            );
        }
    }
}
