//! The parallel campaign engine's contract: `--jobs N` is an execution
//! detail, never an observable one. Campaigns at any worker count must
//! produce byte-identical journals, store flushes, and results — with
//! fault injection on, in plain and corpus mode, for arbitrary RNG
//! seeds. Plus: store-lock recovery and the cross-campaign quarantine
//! overlay that lets concurrent campaigns share discoveries.

use jvmsim::FaultPlan;
use mopfuzzer::{
    corpus, import_seeds, read_journal, run_campaign_with_journal, run_corpus_campaign,
    CampaignConfig, CorpusOptions,
};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mop_parallel_{}_{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn seeded_store(dir: &Path) -> jcorpus::Store {
    let mut store = jcorpus::Store::init(dir).unwrap();
    import_seeds(&mut store, &corpus::builtin(), jcorpus::Provenance::Builtin).unwrap();
    store.save().unwrap();
    store
}

/// A campaign with deterministic fault injection — the retry/quarantine
/// machinery must not perturb the parallel merge.
fn faulty_config(rounds: usize, rng_seed: u64, jobs: usize) -> CampaignConfig {
    let mut config = CampaignConfig {
        iterations_per_seed: 10,
        rounds,
        rng_seed,
        jobs,
        ..CampaignConfig::new(rounds)
    };
    config.fault = Some(FaultPlan::new(rng_seed ^ 0x5eed, 0.25));
    config
}

/// Everything in the store directory except the advisory lockfile,
/// relative paths sorted for stable comparison.
fn snapshot_dir(dir: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else if path.file_name().and_then(|n| n.to_str()) != Some(jcorpus::LOCKFILE) {
                let rel = path.strip_prefix(dir).unwrap().to_path_buf();
                files.push((rel, fs::read(&path).unwrap()));
            }
        }
    }
    files.sort();
    files
}

fn restore_dir(dir: &Path, snapshot: &[(PathBuf, Vec<u8>)]) {
    fs::remove_dir_all(dir).unwrap();
    for (rel, bytes) in snapshot {
        let path = dir.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, bytes).unwrap();
    }
}

/// Plain mode under fault injection: `--jobs 4` writes the same journal
/// bytes and returns the same result as the serial loop, even when
/// rounds fault, retry, and quarantine seeds mid-campaign.
#[test]
fn parallel_plain_campaign_is_bit_identical() {
    let seeds = corpus::builtin();
    let dir = temp_dir("plain");
    fs::create_dir_all(&dir).unwrap();
    let (path_1, path_4) = (dir.join("jobs1.jsonl"), dir.join("jobs4.jsonl"));

    let serial = run_campaign_with_journal(&seeds, &faulty_config(10, 77, 1), &path_1).unwrap();
    let parallel = run_campaign_with_journal(&seeds, &faulty_config(10, 77, 4), &path_4).unwrap();

    assert_eq!(serial, parallel);
    assert_eq!(fs::read(&path_1).unwrap(), fs::read(&path_4).unwrap());
    // The fault machinery actually fired — otherwise this proves nothing.
    assert!(
        serial.retried_attempts > 0 || serial.errored_rounds > 0 || serial.skipped_rounds > 0,
        "fault plan produced no faults; raise the rate"
    );

    fs::remove_dir_all(dir).ok();
}

/// Corpus mode: starting from byte-identical stores at the same path,
/// serial and 4-worker campaigns leave byte-identical journals,
/// manifests, and quarantine files behind.
#[test]
fn parallel_corpus_campaign_is_bit_identical() {
    let dir = temp_dir("corpus");
    let mut store = seeded_store(&dir);
    let pristine = snapshot_dir(&dir);
    let journal = dir.join("campaign.jsonl");
    let opts = CorpusOptions {
        promote_threshold: 1.0,
        ..CorpusOptions::default()
    };

    let serial = run_corpus_campaign(
        &mut store,
        &faulty_config(6, 401, 1),
        &opts,
        Some(&journal),
        None,
    )
    .unwrap();
    let after_serial = snapshot_dir(&dir);

    // Same path (the journal header records the store dir), same bytes.
    restore_dir(&dir, &pristine);
    let mut store = jcorpus::Store::open(&dir).unwrap();
    let parallel = run_corpus_campaign(
        &mut store,
        &faulty_config(6, 401, 4),
        &opts,
        Some(&journal),
        None,
    )
    .unwrap();

    assert_eq!(serial, parallel);
    assert_eq!(after_serial, snapshot_dir(&dir));

    fs::remove_dir_all(dir).ok();
}

/// Lock recovery: a torn (empty) lockfile and a dead holder's lockfile
/// are both stolen; a live lock held by this process blocks a second
/// acquire until its timeout; `save` succeeds over a torn lock.
#[test]
fn torn_and_stale_locks_are_recovered() {
    let dir = temp_dir("lock");
    fs::create_dir_all(&dir).unwrap();
    let lockfile = dir.join(jcorpus::LOCKFILE);

    // Torn: a writer died between create and write.
    fs::write(&lockfile, "").unwrap();
    let lock = jcorpus::StoreLock::acquire_with_timeout(&dir, Duration::from_millis(200))
        .expect("torn lock must be stolen");
    drop(lock);

    // Stale: the recorded holder is long dead.
    fs::write(&lockfile, "999999999").unwrap();
    let lock = jcorpus::StoreLock::acquire_with_timeout(&dir, Duration::from_millis(200))
        .expect("dead holder's lock must be stolen");

    // Live: a held lock is not stolen — the second acquire times out.
    let contended = jcorpus::StoreLock::acquire_with_timeout(&dir, Duration::from_millis(50));
    assert!(contended.is_err(), "live lock was stolen");
    drop(lock);

    // End to end: a store save steals a torn lock rather than deadlocking.
    fs::remove_dir_all(&dir).unwrap();
    let mut store = seeded_store(&dir);
    fs::write(&lockfile, "").unwrap();
    store.save().expect("save must recover the torn lock");

    fs::remove_dir_all(dir).ok();
}

/// The cross-campaign overlay: a quarantine pair appended to the shared
/// store directory *after* this campaign opened its store — i.e. by a
/// concurrently running campaign — is picked up at the next round. The
/// blocked seed is never scheduled again, the pair is not re-reported,
/// and it survives this campaign's own flush.
#[test]
fn external_quarantine_is_observed_by_a_live_campaign() {
    let dir = temp_dir("overlay");
    let mut store = seeded_store(&dir);
    let pristine = snapshot_dir(&dir);
    let journal = dir.join("campaign.jsonl");
    let opts = CorpusOptions::default();
    let config = faulty_config(4, 17, 4);

    // Dry run to learn which seed round 0 would schedule.
    run_corpus_campaign(&mut store, &config, &opts, Some(&journal), None).unwrap();
    let victim = read_journal(&journal).unwrap().records[0].seed.clone();

    // Fresh identical store; the "other campaign" quarantines the victim
    // whole after our store is already open.
    restore_dir(&dir, &pristine);
    let mut store = jcorpus::Store::open(&dir).unwrap();
    fs::write(
        dir.join("quarantine.jsonl"),
        format!("{{\"seed\":\"{victim}\",\"mutator\":null}}\n"),
    )
    .unwrap();
    let result = run_corpus_campaign(&mut store, &config, &opts, Some(&journal), None).unwrap();

    for record in &read_journal(&journal).unwrap().records {
        assert_ne!(
            record.seed, victim,
            "round {} ran a fleet-quarantined seed",
            record.round
        );
    }
    assert!(
        !result.quarantined.iter().any(|(s, _)| s == &victim),
        "externally quarantined pairs must not be re-reported"
    );
    let reopened = jcorpus::Store::open(&dir).unwrap();
    assert!(
        reopened
            .quarantine()
            .iter()
            .any(|(s, m)| s == &victim && m.is_none()),
        "the external pair must survive this campaign's flush"
    );

    fs::remove_dir_all(dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The equivalence is not an artifact of one lucky seed: for any
    /// campaign RNG seed and fault-plan seed, 4 workers reproduce the
    /// serial journal byte for byte.
    #[test]
    fn parallel_equivalence_holds_for_any_seed(rng_seed in any::<u64>(), fault_seed in 0u64..32) {
        let seeds = corpus::builtin();
        let make = |jobs: usize| {
            let mut config = CampaignConfig {
                iterations_per_seed: 8,
                rounds: 3,
                rng_seed,
                jobs,
                ..CampaignConfig::new(3)
            };
            config.fault = Some(FaultPlan::new(fault_seed, 0.3));
            config
        };
        let dir = temp_dir(&format!("prop_{rng_seed:016x}"));
        fs::create_dir_all(&dir).unwrap();
        let (path_1, path_4) = (dir.join("a.jsonl"), dir.join("b.jsonl"));
        let serial = run_campaign_with_journal(&seeds, &make(1), &path_1).unwrap();
        let parallel = run_campaign_with_journal(&seeds, &make(4), &path_4).unwrap();
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(fs::read(&path_1).unwrap(), fs::read(&path_4).unwrap());
        fs::remove_dir_all(&dir).ok();
    }
}
