//! Property-based tests over the core invariants, using proptest to
//! drive generator and RNG seeds.

use jprofile::{Obv, Pattern};
use jvmsim::Trigger;
use mopfuzzer::all_mutators;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng as _;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated corpus programs always parse back to themselves.
    #[test]
    fn generated_programs_round_trip(gen_seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(gen_seed);
        let program = mopfuzzer::corpus::generate(&mut rng, gen_seed as usize % 1000);
        let printed = mjava::print(&program);
        let reparsed = mjava::parse(&printed).expect("generated program parses");
        prop_assert_eq!(reparsed, program);
    }

    /// Generated programs always build and execute cleanly on the
    /// reference interpreter.
    #[test]
    fn generated_programs_execute(gen_seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(gen_seed);
        let program = mopfuzzer::corpus::generate(&mut rng, gen_seed as usize % 1000);
        let outcome = jexec::run_program(&program, &jexec::ExecConfig::default())
            .expect("generated program builds");
        prop_assert!(outcome.is_clean());
        prop_assert_eq!(outcome.output.len(), 1);
    }

    /// Every applicable mutator application yields a mutant that builds,
    /// whose updated MP resolves, and that reparses exactly.
    #[test]
    fn mutations_preserve_validity(seed_idx in 0usize..10, rng_seed in any::<u64>()) {
        let seed = &mopfuzzer::corpus::builtin()[seed_idx];
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let Some(mp) = mopfuzzer::fuzzer::select_mp(&seed.program, &mut rng) else {
            return Ok(());
        };
        for mutator in all_mutators() {
            if !mutator.is_applicable(&seed.program, &mp) {
                continue;
            }
            let Some(mutation) = mutator.apply(&seed.program, &mp, &mut rng) else {
                continue;
            };
            prop_assert!(
                mjava::path::stmt_at(&mutation.program, &mutation.mp).is_some(),
                "stale MP from {:?}", mutator.kind()
            );
            let printed = mjava::print(&mutation.program);
            prop_assert_eq!(
                &mjava::parse(&printed).expect("mutant parses"),
                &mutation.program
            );
            let outcome = jexec::run_program(&mutation.program, &jexec::ExecConfig::default())
                .expect("mutant builds");
            prop_assert!(
                outcome.error.is_none()
                    || outcome.error.as_ref().is_some_and(|e| e.is_program_level()),
                "VM-level error {:?} from {:?}", outcome.error, mutator.kind()
            );
        }
    }

    /// Δ is non-negative, zero on identity, and grows monotonically when
    /// a child gains extra behaviours (Eq. 2 sanity).
    #[test]
    fn delta_metric_properties(counts in proptest::collection::vec(0u64..40, 19)) {
        let mut obv = Obv::zero();
        for (kind, &count) in jopt::OptEventKind::observable().zip(counts.iter()) {
            for _ in 0..count {
                obv.bump(kind);
            }
        }
        prop_assert_eq!(Obv::delta(&obv, &obv), 0.0);
        let mut bigger = obv;
        bigger.bump(jopt::OptEventKind::Unroll);
        let d = Obv::delta(&obv, &bigger);
        prop_assert!(d >= 1.0 - 1e-12);
        // Symmetric decrease is invisible.
        prop_assert_eq!(Obv::delta(&bigger, &obv), 0.0);
    }

    /// Weight updates never shrink a weight (Eq. 3 multiplies by ≥ 1).
    #[test]
    fn weights_are_monotone(w in 0.01f64..100.0, bumps in 0u64..50) {
        let mut child = Obv::zero();
        for _ in 0..bumps {
            child.bump(jopt::OptEventKind::Inline);
        }
        let delta = Obv::delta(&Obv::zero(), &child);
        let updated = jprofile::update_weight(w, delta, &child);
        prop_assert!(updated >= w * (1.0 - 1e-12));
    }

    /// The pattern engine never panics and literal patterns match iff the
    /// literal occurs.
    #[test]
    fn pattern_engine_total(haystack in ".{0,64}", needle in "[A-Za-z ]{1,8}") {
        let p = Pattern::new(&needle);
        prop_assert_eq!(p.is_match(&haystack), haystack.contains(&needle));
    }

    /// Trigger evaluation is monotone: adding events can only turn more
    /// `AtLeast` conjunctions true, never falsify a firing trigger.
    #[test]
    fn triggers_are_monotone(extra in 0u64..5) {
        use jopt::{OptEvent, OptEventKind};
        let base: Vec<OptEvent> = vec![
            OptEvent { kind: OptEventKind::Unroll, method: "m".into(), detail: "2".into() },
            OptEvent { kind: OptEventKind::LockCoarsen, method: "m".into(), detail: "2".into() },
            OptEvent { kind: OptEventKind::NestedLock, method: "m".into(), detail: "2".into() },
        ];
        let mut more = base.clone();
        for _ in 0..extra {
            more.push(OptEvent {
                kind: OptEventKind::Peel,
                method: "m".into(),
                detail: "1".into(),
            });
        }
        for bug in jvmsim::bugs::extended_library() {
            if bug.fires(&base) {
                prop_assert!(bug.fires(&more), "{} lost firing on superset", bug.id);
            }
        }
        // And the trigger combinators behave.
        let t = Trigger::Any(vec![
            Trigger::AtLeast(jopt::OptEventKind::Unroll, 1),
            Trigger::AtLeast(jopt::OptEventKind::Deopt, 9),
        ]);
        prop_assert!(t.eval(&jvmsim::bugs::count_events(&base)));
    }
}
