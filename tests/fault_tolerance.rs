//! Fault-tolerance properties of the supervised campaign loop: with
//! deterministic fault injection enabled, campaigns must complete without
//! panicking, quarantine repeat offenders, stay fully deterministic, and
//! resume from a checkpoint journal with bit-identical results.

use jvmsim::FaultPlan;
use mopfuzzer::{corpus, resume_campaign, run_campaign, run_campaign_with_journal};
use mopfuzzer::{CampaignConfig, CampaignResult};
use std::path::PathBuf;

fn faulty_config(plan_seed: u64, rounds: usize) -> CampaignConfig {
    let mut config = CampaignConfig {
        iterations_per_seed: 5,
        rounds,
        rng_seed: 9000 + plan_seed,
        ..CampaignConfig::new(rounds)
    };
    config.fault = Some(FaultPlan::new(plan_seed, 0.05));
    config.supervisor.max_retries = 1;
    config.supervisor.quarantine_threshold = 1;
    config
}

fn temp_journal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mop_ft_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The headline robustness property: 50-round campaigns under 5% fault
/// injection finish normally across many independent fault/RNG seeds —
/// no contained panic ever escapes the supervisor — and the injected
/// faults leave visible, plausible traces in the result.
#[test]
fn campaigns_survive_fault_injection_across_seeds() {
    let seeds = corpus::builtin();
    let mut campaigns_with_errors = 0u32;
    let mut campaigns_with_quarantine = 0u32;
    // Campaigns run on worker threads: the supervisor's panic containment
    // must hold when several supervised campaigns fault concurrently.
    let results: Vec<(u64, CampaignConfig, CampaignResult)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..10)
            .map(|plan_seed| {
                let seeds = &seeds;
                s.spawn(move || {
                    let config = faulty_config(plan_seed, 50);
                    let result = run_campaign(seeds, &config);
                    (plan_seed, config, result)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (plan_seed, config, result) in results {
        // Every round is accounted for: completed + errored + skipped.
        assert_eq!(
            result.completed_rounds() as u64 + result.errored_rounds + result.skipped_rounds,
            config.rounds as u64,
            "plan seed {plan_seed}"
        );
        // Faulted attempts never leak totals into the result: executions
        // only come from completed rounds, which all really ran.
        if result.completed_rounds() > 0 {
            assert!(result.executions > 0, "plan seed {plan_seed}");
        }
        if !result.round_errors.is_empty() {
            campaigns_with_errors += 1;
        }
        if !result.quarantined.is_empty() {
            campaigns_with_quarantine += 1;
        }
        // Quarantined pairs are only minted by errored rounds.
        assert!(result.quarantined.len() as u64 <= result.errored_rounds);
    }
    // At a 5% rate over 50 rounds × 10 plans, faults (and with a
    // threshold of 1, quarantines) are statistically certain to appear.
    assert!(campaigns_with_errors >= 5, "{campaigns_with_errors}");
    assert!(
        campaigns_with_quarantine >= 1,
        "{campaigns_with_quarantine}"
    );
}

/// Same plan, same campaign: fault injection and fault handling are pure
/// functions of the configuration.
#[test]
fn faulty_campaigns_are_deterministic() {
    let seeds = corpus::builtin();
    let config = faulty_config(3, 30);
    let a = run_campaign(&seeds, &config);
    let b = run_campaign(&seeds, &config);
    assert_eq!(a, b);
    assert!(!a.round_errors.is_empty(), "plan 3 should inject something");
}

/// Checkpoint/resume under faults: killing a journaled campaign after any
/// prefix of rounds and resuming produces the exact same result as the
/// uninterrupted run — including fault bookkeeping and quarantine state.
#[test]
fn resume_is_bit_identical_under_faults() {
    let seeds = corpus::builtin();
    let config = faulty_config(7, 20);
    let path = temp_journal("resume.jsonl");

    let full = run_campaign_with_journal(&seeds, &config, &path).unwrap();
    let journal_text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = journal_text.lines().collect();
    assert_eq!(
        lines.len(),
        1 + config.rounds,
        "header + one line per round"
    );

    // Simulate kills at several points: after 0, 7 and 19 rounds, plus a
    // mid-line truncation (killed while writing round 12).
    for kept_rounds in [0usize, 7, 19] {
        std::fs::write(&path, lines[..=kept_rounds].join("\n")).unwrap();
        let resumed = resume_campaign(&path).unwrap();
        assert_eq!(resumed, full, "kept {kept_rounds} rounds");
        // The resumed journal is complete again and readable.
        let rewritten = std::fs::read_to_string(&path).unwrap();
        assert_eq!(rewritten.lines().count(), 1 + config.rounds);
    }

    let mut partial = lines[..=12].join("\n");
    partial.push('\n');
    partial.push_str(&lines[13][..lines[13].len() / 2]);
    std::fs::write(&path, partial).unwrap();
    let resumed = resume_campaign(&path).unwrap();
    assert_eq!(resumed, full, "mid-line truncation");

    std::fs::remove_file(&path).ok();
}

/// A fault-free journaled campaign equals the plain in-memory campaign:
/// journaling is observation, not interference.
#[test]
fn journaling_does_not_change_results() {
    let seeds = corpus::builtin();
    let config = CampaignConfig {
        iterations_per_seed: 8,
        rounds: 4,
        ..CampaignConfig::new(4)
    };
    let path = temp_journal("observer.jsonl");
    let plain = run_campaign(&seeds, &config);
    let journaled = run_campaign_with_journal(&seeds, &config, &path).unwrap();
    assert_eq!(plain, journaled);
    // And replaying the complete journal reproduces it a third time.
    let replayed = resume_campaign(&path).unwrap();
    assert_eq!(replayed, plain);
    std::fs::remove_file(&path).ok();
}

fn count_kinds(result: &CampaignResult) -> (usize, usize, usize) {
    use mopfuzzer::RoundError;
    let mut mutator = 0;
    let mut vm = 0;
    let mut build = 0;
    for failure in &result.round_errors {
        match failure.error {
            RoundError::MutatorPanic { .. } => mutator += 1,
            RoundError::VmPanic { .. } => vm += 1,
            RoundError::BuildFailure { .. } => build += 1,
            RoundError::BudgetExhausted { .. } | RoundError::Timeout { .. } => {}
        }
    }
    (mutator, vm, build)
}

/// Cranked to a high fault rate, every class of the error taxonomy shows
/// up and is correctly classified — nothing lands in a catch-all.
#[test]
fn error_taxonomy_is_exercised_at_high_rates() {
    let seeds = corpus::builtin();
    let mut config = faulty_config(0, 0);
    config.rounds = 12;
    let mut totals = (0, 0, 0);
    for plan_seed in 0..6 {
        config.fault = Some(FaultPlan::new(plan_seed, 0.6));
        config.rng_seed = 100 + plan_seed;
        let result = run_campaign(&seeds, &config);
        let (m, v, b) = count_kinds(&result);
        totals = (totals.0 + m, totals.1 + v, totals.2 + b);
    }
    assert!(totals.0 > 0, "no mutator panics classified: {totals:?}");
    assert!(totals.1 > 0, "no VM panics classified: {totals:?}");
    assert!(totals.2 > 0, "no build failures classified: {totals:?}");
}
