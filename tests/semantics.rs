//! Soundness integration tests: on bug-free JVMs, the whole optimizing
//! stack must preserve the observable semantics of seeds *and* of
//! arbitrarily mutated programs — otherwise the differential oracle would
//! drown in false positives.

use jvmsim::{JvmSpec, RunOptions, Verdict, Version};
use mopfuzzer::all_mutators;
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng as _};

fn bug_free_pool() -> Vec<JvmSpec> {
    JvmSpec::differential_pool()
        .into_iter()
        .map(JvmSpec::without_bugs)
        .collect()
}

/// Applies `steps` random mutator applications at a random fixed MP.
fn random_mutant(seed: &mjava::Program, steps: usize, rng_seed: u64) -> mjava::Program {
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    let mutators = all_mutators();
    let mut program = seed.clone();
    let Some(mut mp) = mopfuzzer::fuzzer::select_mp(&program, &mut rng) else {
        return program;
    };
    for _ in 0..steps {
        let applicable: Vec<_> = mutators
            .iter()
            .filter(|m| m.is_applicable(&program, &mp))
            .collect();
        if applicable.is_empty() {
            break;
        }
        let pick = applicable[rng.gen_range(0..applicable.len())];
        if let Some(mutation) = pick.apply(&program, &mp, &mut rng) {
            program = mutation.program;
            mp = mutation.mp;
        }
    }
    program
}

#[test]
fn optimizers_preserve_mutant_semantics_across_bug_free_pool() {
    let seeds = mopfuzzer::corpus::builtin();
    let pool = bug_free_pool();
    for (i, seed) in seeds.iter().enumerate() {
        let mutant = random_mutant(&seed.program, 8, 900 + i as u64);
        // Reference: pure interpretation.
        let reference = jexec::run_program(&mutant, &jexec::ExecConfig::default())
            .expect("mutant builds")
            .observable();
        for spec in &pool {
            let run = jvmsim::run_jvm(&mutant, spec, &RunOptions::fuzzing());
            let Verdict::Completed(_) = &run.verdict else {
                panic!(
                    "bug-free {} failed on mutant of {}: {:?}",
                    spec.name(),
                    seed.name,
                    run.verdict
                );
            };
            assert_eq!(
                run.observable().expect("completed"),
                reference,
                "bug-free {} changed semantics of a mutant of {}:\n{}",
                spec.name(),
                seed.name,
                mjava::print(&mutant)
            );
        }
    }
}

#[test]
fn generated_corpus_mutants_also_preserved() {
    let mut rng = SmallRng::seed_from_u64(31);
    let pool = [
        JvmSpec::hotspur(Version::Mainline).without_bugs(),
        JvmSpec::j9(Version::V17).without_bugs(),
    ];
    for case in 0..8 {
        let seed = mopfuzzer::corpus::generate(&mut rng, case as usize);
        let mutant = random_mutant(&seed, 6, 7_000 + case);
        let reference = jexec::run_program(&mutant, &jexec::ExecConfig::default())
            .expect("mutant builds")
            .observable();
        for spec in &pool {
            let run = jvmsim::run_jvm(&mutant, spec, &RunOptions::fuzzing());
            assert_eq!(
                run.observable().expect("completed"),
                reference,
                "{} diverged on generated mutant:\n{}",
                spec.name(),
                mjava::print(&mutant)
            );
        }
    }
}

#[test]
fn mutation_chains_round_trip_through_source_text() {
    // Mutants are reported as source text; the chain print → parse must
    // lose nothing, however deep the mutation stack.
    let seeds = mopfuzzer::corpus::builtin();
    for (i, seed) in seeds.iter().enumerate() {
        let mutant = random_mutant(&seed.program, 12, 400 + i as u64);
        let printed = mjava::print(&mutant);
        let reparsed = mjava::parse(&printed)
            .unwrap_or_else(|e| panic!("mutant of {} unparseable: {e}\n{printed}", seed.name));
        assert_eq!(reparsed, mutant, "round-trip mismatch for {}", seed.name);
    }
}

#[test]
fn armed_and_disarmed_jvms_agree_unless_a_bug_fires() {
    // With bugs armed, behaviour may only differ when a bug actually
    // fired (crash or recorded corruption) — never silently.
    let seeds = mopfuzzer::corpus::builtin();
    for (i, seed) in seeds.iter().enumerate() {
        let mutant = random_mutant(&seed.program, 8, 1_300 + i as u64);
        for spec in JvmSpec::differential_pool() {
            let armed = jvmsim::run_jvm(&mutant, &spec, &RunOptions::fuzzing());
            let disarmed = jvmsim::run_jvm(
                &mutant,
                &spec.clone().without_bugs(),
                &RunOptions::fuzzing(),
            );
            match (&armed.verdict, &disarmed.verdict) {
                (Verdict::CompilerCrash(_), _) => {} // bug fired: fine
                (Verdict::Completed(_), Verdict::Completed(_)) => {
                    if armed.miscompiled_by.is_empty() {
                        assert_eq!(
                            armed.observable(),
                            disarmed.observable(),
                            "silent divergence on {} for mutant of {}",
                            spec.name(),
                            seed.name
                        );
                    }
                }
                (a, d) => panic!("unexpected verdict pair: {a:?} vs {d:?}"),
            }
        }
    }
}
