//! End-to-end observability properties: a fault-injected supervised
//! campaign must produce schema-valid telemetry exports, counters and
//! gauges that agree exactly with the campaign result, flight-recorder
//! dumps in the journal that name the failing phase/mutator — and none of
//! it may change what the campaign computes.

use jtelemetry::export::{jsonl_line, prometheus, trace_json};
use jtelemetry::schema::{validate_prometheus, validate_snapshot_line, validate_trace};
use jtelemetry::{FlightKind, ManualClock, Session};
use jvmsim::FaultPlan;
use mopfuzzer::{
    corpus, read_journal, run_campaign, run_campaign_with_journal, CampaignConfig, Disposition,
    RoundError,
};
use std::path::PathBuf;

fn faulty_config(plan_seed: u64, rate: f64, rounds: usize) -> CampaignConfig {
    let mut config = CampaignConfig {
        iterations_per_seed: 5,
        rounds,
        rng_seed: 7000 + plan_seed,
        ..CampaignConfig::new(rounds)
    };
    config.fault = Some(FaultPlan::new(plan_seed, rate));
    config.supervisor.max_retries = 1;
    config.supervisor.quarantine_threshold = 1;
    config
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mop_telemetry_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The acceptance scenario: a 50-round campaign at a 5% fault rate with
/// telemetry installed produces a schema-valid JSONL snapshot and
/// Prometheus page, and the metrics agree exactly with the result.
#[test]
fn faulty_campaign_telemetry_is_valid_and_consistent() {
    let seeds = corpus::builtin();
    let config = faulty_config(3, 0.05, 50);
    let path = temp_path("campaign.jsonl");
    jtelemetry::install(Session::new());
    let result = run_campaign_with_journal(&seeds, &config, &path).unwrap();
    let snap = jtelemetry::take().expect("session installed").snapshot();
    std::fs::remove_file(&path).ok();

    // Both export formats pass their own strict schema validators.
    validate_snapshot_line(&jsonl_line(&snap)).expect("JSONL snapshot valid");
    validate_prometheus(&prometheus(&snap)).expect("Prometheus page valid");

    // Round accounting matches the campaign result one-to-one.
    assert!(result.errored_rounds > 0, "plan 3 should inject faults");
    assert_eq!(snap.counter("rounds_ok"), result.completed_rounds() as u64);
    assert_eq!(snap.counter("rounds_errored"), result.errored_rounds);
    assert_eq!(snap.counter("rounds_skipped"), result.skipped_rounds);
    assert_eq!(snap.counter("retried_attempts"), result.retried_attempts);
    assert_eq!(snap.gauge("rounds_done"), config.rounds as f64);
    assert_eq!(snap.gauge("bugs_found"), result.bugs.len() as f64);
    assert_eq!(
        snap.gauge("quarantine_count"),
        result.quarantined.len() as f64
    );

    // The productive/wasted split is exhaustive: every completed VM
    // execution (the always-on work meter feeds both) lands on exactly
    // one side of the ledger.
    assert_eq!(snap.gauge("productive_steps"), result.steps as f64);
    assert_eq!(snap.gauge("wasted_steps"), result.wasted_steps as f64);
    assert_eq!(snap.gauge("productive_execs"), result.executions as f64);
    assert_eq!(snap.gauge("wasted_execs"), result.wasted_execs as f64);
    assert_eq!(
        snap.counter("vm_executions"),
        result.executions + result.wasted_execs
    );

    // Optimizer phases and VM executions produced timing spans.
    for span in ["inline", "iterative_gvn", "dead_code", "vm_execution"] {
        let stat = snap
            .spans
            .iter()
            .find(|s| s.name == span)
            .unwrap_or_else(|| panic!("no span {span:?} recorded"));
        assert!(stat.count > 0);
    }
    // Mutator accept/reject stats flowed in from the fuzzer.
    assert!(!snap.mutators.is_empty());
    let oracle_verdicts = snap.counter("oracle_pass")
        + snap.counter("oracle_crash")
        + snap.counter("oracle_miscompile")
        + snap.counter("oracle_inconclusive");
    assert!(oracle_verdicts > 0);
}

/// Every journaled failure carries a flight dump that names the failing
/// site: the attempt header, and for attributed mutator panics the
/// panicking mutator as the most recent mutator event.
#[test]
fn journaled_flight_dumps_name_the_failing_site() {
    let seeds = corpus::builtin();
    // High fault rate so every error class (incl. mutator panics) shows up.
    let config = faulty_config(0, 0.6, 12);
    let path = temp_path("flight.jsonl");
    jtelemetry::install(Session::new());
    let result = run_campaign_with_journal(&seeds, &config, &path).unwrap();
    jtelemetry::take();
    assert!(
        result.errored_rounds > 0,
        "0.6 fault rate must error rounds"
    );

    let contents = read_journal(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let mut quarantined_rounds = 0;
    let mut mutator_attributions = 0;
    for record in &contents.records {
        if record.disposition == Disposition::Errored {
            quarantined_rounds += 1;
            assert!(!record.errors.is_empty());
        }
        for failure in &record.errors {
            // Every failed attempt left a dump, opening with its header.
            let first = failure.flight.first().expect("flight dump present");
            assert_eq!(first.kind, FlightKind::Round);
            assert_eq!(first.label, "attempt");
            assert!(
                first.detail.contains(&format!("round {}", record.round)),
                "{:?}",
                first.detail
            );
            match &failure.error {
                RoundError::MutatorPanic {
                    mutator: Some(kind),
                    ..
                } => {
                    // The most recent mutator event is the culprit.
                    let last = failure
                        .flight
                        .iter()
                        .rev()
                        .find(|e| e.kind == FlightKind::Mutator)
                        .expect("mutator panic dump has a mutator event");
                    assert_eq!(last.label, format!("{kind:?}"));
                    mutator_attributions += 1;
                }
                RoundError::VmPanic { .. } | RoundError::BuildFailure { .. } => {
                    // The dump shows VM activity (the span opened on entry
                    // survives in the recorder even though the run died).
                    assert!(
                        failure.flight.iter().any(|e| e.kind == FlightKind::Vm),
                        "{:?}",
                        failure.flight
                    );
                }
                RoundError::MutatorPanic { mutator: None, .. }
                | RoundError::BudgetExhausted { .. }
                | RoundError::Timeout { .. } => {}
            }
        }
    }
    assert!(quarantined_rounds > 0);
    assert!(mutator_attributions > 0, "no mutator panic was attributed");
}

/// The trace layer inherits the determinism contract of the metrics
/// layer: under a manual clock the exported Chrome-trace JSON is
/// byte-identical at any `--jobs`/`--oracle-jobs` setting. The round
/// lane is renumbered into program order at merge time and the
/// wall-clock scheduler lane is suppressed under a manual clock, so the
/// whole export — ids, parents, timestamps, durations — is a pure
/// function of the campaign.
#[test]
fn traces_are_byte_identical_across_worker_counts() {
    let seeds = corpus::builtin();
    let meta = [("jobs", "any".to_string())];
    let mut exports = Vec::new();
    for (jobs, oracle_jobs) in [(1, 1), (4, 4)] {
        let mut config = faulty_config(3, 0.05, 12);
        config.jobs = jobs;
        config.oracle_jobs = oracle_jobs;
        jtelemetry::install(
            Session::with_clock(Box::new(ManualClock::new()))
                .with_trace()
                .with_profile(),
        );
        let result = run_campaign(&seeds, &config);
        let session = jtelemetry::take().expect("session installed");
        let trace = trace_json(&session, &meta).expect("tracing session exports a trace");
        validate_trace(&trace).expect("trace export valid");
        exports.push((result, trace));
    }
    let (serial_result, serial_trace) = &exports[0];
    let (parallel_result, parallel_trace) = &exports[1];
    assert_eq!(serial_result, parallel_result);
    assert_eq!(
        serial_trace, parallel_trace,
        "trace bytes must not depend on worker count"
    );
    assert!(serial_trace.contains("\"round\""));
    assert!(serial_trace.contains("\"fuzz\""));
    assert!(serial_trace.contains("\"differential\""));
}

/// Tracing and profiling are pure observers even at full parallelism:
/// the journal written by a traced+profiled campaign at `--jobs 4
/// --oracle-jobs 4` is byte-for-byte the journal of the serial run
/// with a plain metrics session. (Both runs install a session — flight
/// dumps in failure records are a session feature and would differ
/// against a session-less run by design.)
#[test]
fn tracing_does_not_change_journal_bytes() {
    let seeds = corpus::builtin();
    let plain_path = temp_path("trace_off.jsonl");
    let traced_path = temp_path("trace_on.jsonl");

    let config = faulty_config(5, 0.05, 12);
    jtelemetry::install(Session::new());
    let plain = run_campaign_with_journal(&seeds, &config, &plain_path).unwrap();
    jtelemetry::take();

    let mut config = faulty_config(5, 0.05, 12);
    config.jobs = 4;
    config.oracle_jobs = 4;
    jtelemetry::install(Session::new().with_trace().with_profile());
    let traced = run_campaign_with_journal(&seeds, &config, &traced_path).unwrap();
    let session = jtelemetry::take().expect("session installed");
    assert!(trace_json(&session, &[]).is_some());

    let plain_bytes = std::fs::read(&plain_path).unwrap();
    let traced_bytes = std::fs::read(&traced_path).unwrap();
    std::fs::remove_file(&plain_path).ok();
    std::fs::remove_file(&traced_path).ok();
    assert_eq!(plain, traced);
    assert_eq!(
        plain_bytes, traced_bytes,
        "tracing must not perturb the journal"
    );
}

/// Telemetry is observation, not interference: the same faulty campaign
/// with and without a session produces identical results (flight dumps
/// are excluded from failure identity by design).
#[test]
fn telemetry_does_not_change_campaign_results() {
    let seeds = corpus::builtin();
    let config = faulty_config(5, 0.05, 30);
    let plain = run_campaign(&seeds, &config);
    jtelemetry::install(Session::new());
    let observed = run_campaign(&seeds, &config);
    jtelemetry::take();
    assert_eq!(plain, observed);
}
