//! Crash-consistency and hang-proofing, end to end.
//!
//! The crash-point sweep is the headline: a journaled corpus campaign is
//! crashed (via the chaos VFS) after *every* mutating filesystem
//! operation in turn, recovered with `fsck --repair` plus a resume, and
//! must converge to the byte-identical journal, manifest, and quarantine
//! of an uninterrupted run. The hang tests exercise the round watchdog:
//! a mutant that wedges the VM times out, is retried and quarantined,
//! and journals bit-identically at any worker-count combination.

use jcorpus::{ChaosVfs, Store, Vfs};
use jvmsim::{FaultPlan, VmFault};
use mopfuzzer::{
    corpus, import_seeds, read_journal, resume_campaign, run_campaign_with_journal,
    run_corpus_campaign_with, CampaignConfig, CampaignResult, CorpusOptions, RoundError,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mop_crash_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A store seeded with the builtin corpus, saved and closed (real fs —
/// the sweep only crashes the campaign, not its setup).
fn seed_store(dir: &Path) {
    let mut store = Store::init(dir).unwrap();
    import_seeds(&mut store, &corpus::builtin(), jcorpus::Provenance::Builtin).unwrap();
    store.save().unwrap();
}

fn small_config(rounds: usize, rng_seed: u64) -> CampaignConfig {
    CampaignConfig {
        iterations_per_seed: 8,
        rounds,
        rng_seed,
        ..CampaignConfig::new(rounds)
    }
}

fn opts() -> CorpusOptions {
    CorpusOptions {
        promote_threshold: 1.0,
        ..CorpusOptions::default()
    }
}

/// Opens the store and runs the journaled campaign, with every store and
/// journal write routed through `fs`.
fn campaign_with(dir: &Path, fs: Arc<dyn Vfs>) -> Result<CampaignResult, String> {
    let mut store = Store::open_with(dir, fs.clone())?;
    run_corpus_campaign_with(
        &mut store,
        &small_config(3, 4242),
        &opts(),
        Some(&dir.join("campaign.jsonl")),
        None,
        fs,
    )
}

fn bytes(dir: &Path, file: &str) -> Vec<u8> {
    std::fs::read(dir.join(file)).unwrap_or_default()
}

/// (journal, manifest, quarantine) — everything the campaign persists.
fn persisted(dir: &Path) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    (
        bytes(dir, "campaign.jsonl"),
        bytes(dir, "manifest.jsonl"),
        bytes(dir, "quarantine.jsonl"),
    )
}

/// The acceptance sweep: crash the campaign after every mutating VFS
/// operation, repair + resume, and demand byte-identical convergence.
#[test]
fn crash_point_sweep_recovers_to_the_uninterrupted_bytes() {
    // One directory throughout: the journal header records the store dir,
    // so byte-comparisons only hold when every trial runs at the same
    // path. `seed_store` re-creates identical starting bytes each time.
    let dir = temp_dir("sweep");

    // Baseline: the uninterrupted run on the real filesystem.
    seed_store(&dir);
    let expected = campaign_with(&dir, jcorpus::vfs::real()).unwrap();
    let expected_bytes = persisted(&dir);

    // Probe: the same campaign through a fault-free chaos VFS counts the
    // mutating operations and must already be byte-identical.
    std::fs::remove_dir_all(&dir).unwrap();
    seed_store(&dir);
    let probe = Arc::new(ChaosVfs::probe());
    let result = campaign_with(&dir, probe.clone()).unwrap();
    assert_eq!(result, expected);
    assert_eq!(persisted(&dir), expected_bytes);
    let ops = probe.ops();
    assert!(ops > 10, "campaign must persist through the VFS: {ops} ops");

    for crash_at in 1..=ops {
        std::fs::remove_dir_all(&dir).unwrap();
        seed_store(&dir);
        let chaos = Arc::new(ChaosVfs::crash_after(crash_at));
        // The crashed campaign may fail anywhere (or finish, when the
        // crash point lies beyond its last write) — only recovery has to
        // succeed.
        let crashed = campaign_with(&dir, chaos.clone());
        if crash_at < ops {
            assert!(
                chaos.crashed() || crashed.is_err(),
                "crash at op {crash_at} had no effect"
            );
        }

        // Recovery, on the real filesystem: repair the store, then resume
        // from the journal if it has a readable header, else rerun.
        let report = jcorpus::fsck(&dir, true).unwrap();
        assert_eq!(
            report.unrepaired(),
            0,
            "crash at op {crash_at} left unrepairable damage: {}",
            report.render_text()
        );
        let journal = dir.join("campaign.jsonl");
        let recovered = match read_journal(&journal) {
            Ok(_) => resume_campaign(&journal).unwrap(),
            Err(_) => campaign_with(&dir, jcorpus::vfs::real()).unwrap(),
        };
        assert_eq!(recovered, expected, "crash at op {crash_at}");
        assert_eq!(persisted(&dir), expected_bytes, "crash at op {crash_at}");
        assert!(jcorpus::fsck(&dir, false).unwrap().clean());
    }

    std::fs::remove_dir_all(dir).ok();
}

/// A campaign whose rounds all hang: the watchdog cancels each attempt at
/// the configured wall-clock limit, the failure is classified as
/// [`RoundError::Timeout`] carrying that limit (never elapsed time), the
/// offender is quarantined, and the journal records it all.
#[test]
fn hanging_rounds_time_out_and_quarantine() {
    let dir = temp_dir("hang");
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("hang.jsonl");
    let mut config = small_config(2, 77);
    config.supervisor.round_wall_timeout_ms = Some(50);
    config.supervisor.max_retries = 1;
    config.supervisor.quarantine_threshold = 1;
    config.fault = Some(FaultPlan::new(3, 1.0).with_only(VmFault::Hang));
    let seeds = corpus::builtin();

    let result = run_campaign_with_journal(&seeds, &config, &journal).unwrap();
    assert_eq!(result.completed_rounds(), 0, "every round hangs");
    assert_eq!(
        result.errored_rounds + result.skipped_rounds,
        config.rounds as u64
    );
    assert!(
        result
            .round_errors
            .iter()
            .all(|f| matches!(f.error, RoundError::Timeout { limit_ms: 50 })),
        "{:?}",
        result.round_errors
    );
    assert!(!result.quarantined.is_empty(), "hangs must quarantine");

    // The journaled failures round-trip with the configured limit.
    let contents = read_journal(&journal).unwrap();
    assert!(contents
        .records
        .iter()
        .flat_map(|r| &r.errors)
        .any(|f| matches!(f.error, RoundError::Timeout { limit_ms: 50 })));

    std::fs::remove_dir_all(dir).ok();
}

/// Timeouts are scheduling-independent: because the journal records the
/// configured limit (not elapsed time) and every attempt deterministically
/// hangs, the journal bytes are identical at any `--jobs` ×
/// `--oracle-jobs` combination.
#[test]
fn hang_timeouts_journal_identically_at_any_worker_count() {
    let dir = temp_dir("hang_jobs");
    std::fs::create_dir_all(&dir).unwrap();
    let seeds = corpus::builtin();
    let mut journals = Vec::new();
    for (jobs, oracle_jobs) in [(1, 1), (2, 2), (3, 1)] {
        let journal = dir.join(format!("hang_{jobs}x{oracle_jobs}.jsonl"));
        let mut config = small_config(2, 77);
        config.supervisor.round_wall_timeout_ms = Some(50);
        config.supervisor.max_retries = 1;
        config.supervisor.quarantine_threshold = 1;
        config.fault = Some(FaultPlan::new(3, 1.0).with_only(VmFault::Hang));
        config.jobs = jobs;
        config.oracle_jobs = oracle_jobs;
        run_campaign_with_journal(&seeds, &config, &journal).unwrap();
        journals.push(std::fs::read(&journal).unwrap());
    }
    assert_eq!(journals[0], journals[1], "1x1 vs 2x2");
    assert_eq!(journals[0], journals[2], "1x1 vs 3x1");

    std::fs::remove_dir_all(dir).ok();
}
