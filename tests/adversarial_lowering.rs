//! Adversarial lowering: hand-built, corrupt, and truncated bytecode must
//! produce *the same error on the same step* on both substrates.
//!
//! The threaded substrate validates local/static slots and branch targets
//! at lowering time and replaces bad sites with `Corrupt` ops that fire at
//! the exact step the reference interpreter would have failed. Fusion and
//! leaf inlining raise the stakes: an error can now surface mid-way
//! through a superinstruction or inside an inlined leaf body, and a fuel
//! budget can cut execution at any of those interior points. Every case
//! here is therefore swept across fuel budgets, not just run to the error.

use jexec::code::{ArithOp, Code, Instr};
use jexec::{interp, threaded, ExecConfig, ExecError, Image};

/// Installs `instrs` as `main`'s body and checks both substrates agree on
/// the outcome at full fuel *and* at every budget up to a few steps past
/// the point of death — so the sweep crosses superinstruction and
/// inlined-leaf interiors.
fn assert_adversarial_equivalent(instrs: Vec<Instr>, n_locals: u16, want: Option<ExecError>) {
    let program = mjava::parse("class T { static void main() { } }").unwrap();
    let mut image = Image::build(&program).unwrap();
    let main = image.main();
    let max_stack = Code::compute_max_stack(&instrs);
    image.install_code(
        main,
        Code {
            instrs,
            n_locals,
            max_stack,
        },
    );
    sweep(&image, want);
}

/// Runs both substrates at full fuel (asserting the expected error) and
/// then at every fuel budget from 0 to just past the full run's steps.
fn sweep(image: &Image, want: Option<ExecError>) {
    let config = ExecConfig::default();
    let threaded = threaded::run(image, &config);
    let interp = interp::run(image, &config);
    if let Some(want) = &want {
        assert_eq!(threaded.error.as_ref(), Some(want), "unexpected error");
    }
    assert_eq!(threaded, interp, "full-fuel outcomes diverged");
    let horizon = interp.stats.steps + 3;
    for fuel in 0..=horizon {
        let config = ExecConfig {
            fuel,
            ..ExecConfig::default()
        };
        let threaded = threaded::run(image, &config);
        let interp = interp::run(image, &config);
        assert_eq!(threaded, interp, "diverged at fuel {fuel}");
    }
}

#[test]
fn corrupt_slots_and_branches_error_step_exactly() {
    let cases: Vec<(Vec<Instr>, u16, ExecError)> = vec![
        // Stack underflow on the first instruction.
        (
            vec![Instr::Pop, Instr::Return],
            0,
            ExecError::VmCorrupt("operand stack underflow"),
        ),
        // Local slot beyond n_locals, read and write.
        (
            vec![Instr::Load(9), Instr::Return],
            2,
            ExecError::VmCorrupt("local slot out of range"),
        ),
        (
            vec![Instr::ConstI(1), Instr::Store(9), Instr::Return],
            2,
            ExecError::VmCorrupt("local slot out of range"),
        ),
        // Static slot beyond the class's static table.
        (
            vec![Instr::GetStatic(0, 7), Instr::Return],
            0,
            ExecError::VmCorrupt("static slot out of range"),
        ),
        (
            vec![Instr::ConstI(3), Instr::PutStatic(0, 7), Instr::Return],
            0,
            ExecError::VmCorrupt("static slot out of range"),
        ),
        // Branch target beyond the body.
        (
            vec![Instr::Jump(99)],
            0,
            ExecError::VmCorrupt("pc out of range"),
        ),
        (
            vec![
                Instr::ConstB(true),
                Instr::JumpIfFalse(77),
                Instr::ConstB(false),
                Instr::JumpIfFalse(77),
                Instr::Return,
            ],
            0,
            ExecError::VmCorrupt("pc out of range"),
        ),
    ];
    for (instrs, n_locals, want) in cases {
        assert_adversarial_equivalent(instrs, n_locals, Some(want));
    }
}

#[test]
fn truncated_bodies_fall_off_the_end_step_exactly() {
    // Bodies with no terminating return: execution falls off the end and
    // must die with the interpreter's exact "pc out of range", after
    // executing the real prefix (including any superinstructions the
    // fuser built from it).
    let cases: Vec<(Vec<Instr>, u16)> = vec![
        (vec![], 0),
        (vec![Instr::ConstI(1), Instr::Pop], 0),
        (vec![Instr::ConstI(1), Instr::Print], 0),
        // A fusable arithmetic tail, then the cliff.
        (
            vec![
                Instr::ConstI(5),
                Instr::Store(0),
                Instr::Load(0),
                Instr::ConstI(2),
                Instr::Arith(ArithOp::Mul),
                Instr::ConstI(1),
                Instr::Arith(ArithOp::Add),
                Instr::Print,
            ],
            1,
        ),
    ];
    for (instrs, n_locals) in cases {
        assert_adversarial_equivalent(
            instrs,
            n_locals,
            Some(ExecError::VmCorrupt("pc out of range")),
        );
    }
}

#[test]
fn jump_into_superinstruction_interior_stays_exact() {
    // The backward jump targets the *middle* of what the fuser would
    // otherwise collapse (const·const·arith chains): the group must split
    // at the join point so the second entry executes the tail alone.
    assert_adversarial_equivalent(
        vec![
            // i = 0; first pass jumps into the chain's interior.
            Instr::ConstI(0),
            Instr::Store(0),
            Instr::Jump(5),
            // Chain head (skipped on the first pass).
            Instr::ConstI(10),
            Instr::Pop,
            // Interior join point: i = i + 1.
            Instr::Load(0),
            Instr::ConstI(1),
            Instr::Arith(ArithOp::Add),
            Instr::Store(0),
            // Loop until i == 3, re-entering through the chain head.
            Instr::Load(0),
            Instr::ConstI(3),
            Instr::Cmp(jexec::code::CmpOp::Lt),
            Instr::JumpIfFalse(14),
            Instr::Jump(3),
            Instr::Load(0),
            Instr::Print,
            Instr::Return,
        ],
        1,
        None,
    );
}

#[test]
fn corrupt_leaf_body_errors_mid_inline_step_exactly() {
    // A leaf small enough to inline whose body dies partway through: the
    // error (and any fuel cut) lands *inside* the inlined body, which must
    // be indistinguishable from the real call frame the interpreter built.
    let program = mjava::parse(
        "class T { static int leaf() { return 1; } static void main() { System.out.println(T.leaf()); } }",
    )
    .unwrap();
    let image = Image::build(&program).unwrap();
    let leaf = image.method_id("T", "leaf").unwrap();

    // Type error on the third micro-step of the inlined body.
    let mut bad = image.clone();
    bad.install_code(
        leaf,
        Code {
            instrs: vec![
                Instr::ConstB(true),
                Instr::ConstI(1),
                Instr::Arith(ArithOp::Add),
                Instr::ReturnV,
            ],
            n_locals: 0,
            max_stack: 2,
        },
    );
    sweep(&bad, None);

    // Stack underflow on the first micro-step of the inlined body.
    let mut underflow = image.clone();
    underflow.install_code(
        leaf,
        Code {
            instrs: vec![Instr::Pop, Instr::ConstI(1), Instr::ReturnV],
            n_locals: 0,
            max_stack: 1,
        },
    );
    sweep(&underflow, None);

    // Truncated leaf (no return): too adversarial to inline — the builder
    // must reject it and fall back to a real frame, which then falls off
    // the end exactly like the interpreter.
    let mut truncated = image.clone();
    truncated.install_code(
        leaf,
        Code {
            instrs: vec![Instr::ConstI(1), Instr::Pop],
            n_locals: 0,
            max_stack: 1,
        },
    );
    sweep(&truncated, Some(ExecError::VmCorrupt("pc out of range")));
}
