//! End-to-end properties of the persistent corpus subsystem: store
//! round-trips, order-independent dedup, deterministic power scheduling,
//! journal resume over a store, and the promotion/quarantine lifecycle
//! across consecutive campaigns.

use mopfuzzer::{
    corpus, import_seeds, read_journal, resume_campaign, run_corpus_campaign, CampaignConfig,
    CampaignResult, CorpusOptions,
};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mop_corpus_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A store seeded with the ten builtin seeds.
fn seeded_store(dir: &Path) -> jcorpus::Store {
    let mut store = jcorpus::Store::init(dir).unwrap();
    let outcome =
        import_seeds(&mut store, &corpus::builtin(), jcorpus::Provenance::Builtin).unwrap();
    assert_eq!(outcome.admitted.len(), 10, "builtin seeds must be distinct");
    store.save().unwrap();
    store
}

fn small_config(rounds: usize, rng_seed: u64) -> CampaignConfig {
    CampaignConfig {
        iterations_per_seed: 12,
        rounds,
        rng_seed,
        ..CampaignConfig::new(rounds)
    }
}

fn manifest_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("manifest.jsonl")).unwrap()
}

fn quarantine_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("quarantine.jsonl")).unwrap_or_default()
}

/// Two campaigns over byte-identical stores produce byte-identical
/// results and byte-identical stores: scheduling, promotion and the
/// store flush are pure functions of (store state, campaign config).
#[test]
fn corpus_campaigns_are_deterministic_across_identical_stores() {
    let (dir_a, dir_b) = (temp_dir("det_a"), temp_dir("det_b"));
    let mut store_a = seeded_store(&dir_a);
    let mut store_b = seeded_store(&dir_b);
    assert_eq!(manifest_bytes(&dir_a), manifest_bytes(&dir_b));

    let config = small_config(5, 71);
    let opts = CorpusOptions {
        promote_threshold: 1.0,
        ..CorpusOptions::default()
    };
    let a = run_corpus_campaign(&mut store_a, &config, &opts, None, None).unwrap();
    let b = run_corpus_campaign(&mut store_b, &config, &opts, None, None).unwrap();
    assert_eq!(a, b);
    assert_eq!(manifest_bytes(&dir_a), manifest_bytes(&dir_b));
    assert_eq!(quarantine_bytes(&dir_a), quarantine_bytes(&dir_b));
    // The campaign fed schedule history back into the store.
    assert!(store_a.entries().iter().any(|e| e.stats.schedules > 0));

    for dir in [dir_a, dir_b] {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// Behavioural dedup does not depend on import order: forward and
/// reversed imports admit the same (name, fingerprint) set, and
/// re-importing is a complete no-op.
#[test]
fn store_dedup_is_order_independent() {
    let (dir_f, dir_r) = (temp_dir("dedup_f"), temp_dir("dedup_r"));
    let seeds = corpus::builtin();
    let mut reversed = seeds.clone();
    reversed.reverse();

    let mut store_f = jcorpus::Store::init(&dir_f).unwrap();
    let mut store_r = jcorpus::Store::init(&dir_r).unwrap();
    import_seeds(&mut store_f, &seeds, jcorpus::Provenance::Builtin).unwrap();
    import_seeds(&mut store_r, &reversed, jcorpus::Provenance::Builtin).unwrap();

    let set = |store: &jcorpus::Store| -> BTreeSet<(String, u64)> {
        store
            .entries()
            .iter()
            .map(|e| (e.name.clone(), e.fingerprint))
            .collect()
    };
    assert_eq!(set(&store_f), set(&store_r));

    // A second import of the same seeds dedups every one of them, in
    // either order.
    let again = import_seeds(&mut store_f, &reversed, jcorpus::Provenance::Imported).unwrap();
    assert!(again.admitted.is_empty(), "{:?}", again.admitted);
    assert_eq!(again.deduped.len(), seeds.len());

    for dir in [dir_f, dir_r] {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// The power scheduler is a pure function of (admissions, recorded
/// outcomes, campaign seed, round number).
#[test]
fn power_scheduler_is_deterministic_for_a_fixed_seed() {
    let build = || {
        let mut s = jcorpus::PowerScheduler::new();
        for (i, name) in ["alpha", "beta", "gamma", "delta"].iter().enumerate() {
            s.admit(
                name,
                jcorpus::EntryStats {
                    schedules: i as u64,
                    yield_sum: 3.5 * i as f64,
                    faults: (i % 2) as u64,
                    bugs: 0,
                },
                false,
            );
        }
        s
    };
    let (mut a, mut b) = (build(), build());
    for round in 0..48 {
        let pa = a.pick(round, 0xC0FFEE);
        assert_eq!(pa, b.pick(round, 0xC0FFEE), "round {round}");
        // Feed identical outcomes back so later rounds see identical state.
        let name = pa.unwrap();
        a.record_ok(&name, round as f64, 0);
        b.record_ok(&name, round as f64, 0);
    }
}

/// Killing a journaled corpus campaign after any prefix of rounds and
/// resuming reproduces the uninterrupted result bit-for-bit — including
/// the store flush: per-entry stats, promoted entries and quarantine are
/// byte-identical on disk.
#[test]
fn corpus_resume_is_bit_identical() {
    let dir = temp_dir("resume");
    let mut store = seeded_store(&dir);
    let journal = dir.join("campaign.jsonl");
    let config = small_config(6, 401);
    let opts = CorpusOptions {
        promote_threshold: 1.0,
        ..CorpusOptions::default()
    };

    let full = run_corpus_campaign(&mut store, &config, &opts, Some(&journal), None).unwrap();
    let full_manifest = manifest_bytes(&dir);
    let full_quarantine = quarantine_bytes(&dir);
    let journal_text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = journal_text.lines().collect();
    assert_eq!(
        lines.len(),
        1 + config.rounds,
        "header + one line per round"
    );

    for kept_rounds in [0usize, 3, 5] {
        std::fs::write(&journal, lines[..=kept_rounds].join("\n")).unwrap();
        let resumed = resume_campaign(&journal).unwrap();
        assert_eq!(resumed, full, "kept {kept_rounds} rounds");
        assert_eq!(manifest_bytes(&dir), full_manifest, "kept {kept_rounds}");
        assert_eq!(quarantine_bytes(&dir), full_quarantine);
    }

    // Killed mid-write: the torn trailing line is dropped and re-run.
    let mut torn = lines[..=2].join("\n");
    torn.push('\n');
    torn.push_str(&lines[3][..lines[3].len() / 2]);
    std::fs::write(&journal, torn).unwrap();
    let resumed = resume_campaign(&journal).unwrap();
    assert_eq!(resumed, full, "mid-line truncation");
    assert_eq!(manifest_bytes(&dir), full_manifest);

    std::fs::remove_dir_all(dir).ok();
}

/// Runs the two-campaign promotion lifecycle on a fresh store and
/// returns (campaign-1 result, campaign-2 result, campaign-2 journal
/// seeds in round order).
fn promotion_lifecycle(dir: &Path) -> (CampaignResult, CampaignResult, Vec<String>) {
    let mut store = seeded_store(dir);
    let opts = CorpusOptions {
        promote_threshold: 1.0,
        ..CorpusOptions::default()
    };
    let first = run_corpus_campaign(&mut store, &small_config(4, 2024), &opts, None, None).unwrap();

    // Reopen from disk: campaign two must see campaign one only through
    // the persisted store.
    let mut store = jcorpus::Store::open(dir).unwrap();
    let journal = dir.join("second.jsonl");
    let second = run_corpus_campaign(
        &mut store,
        &small_config(12, 2025),
        &opts,
        Some(&journal),
        None,
    )
    .unwrap();
    let scheduled = read_journal(&journal)
        .unwrap()
        .records
        .iter()
        .map(|r| r.seed.clone())
        .collect();
    (first, second, scheduled)
}

/// The full promotion story: campaign one promotes at least one
/// high-yield mutant into the store (minimized, `promoted` provenance,
/// parented to the seed that bred it); campaign two — a separate
/// process in spirit, reopening the store from disk — schedules it. The
/// whole two-campaign lifecycle is deterministic.
#[test]
fn promoted_mutants_become_seeds_for_the_next_campaign() {
    let (dir_a, dir_b) = (temp_dir("promo_a"), temp_dir("promo_b"));
    let (first, second, scheduled) = promotion_lifecycle(&dir_a);

    assert!(
        !first.promotions.is_empty(),
        "campaign one must promote something (deltas: {:?})",
        first.final_deltas
    );
    let store = jcorpus::Store::open(&dir_a).unwrap();
    let promoted: Vec<_> = store
        .entries()
        .iter()
        .filter(|e| e.provenance == jcorpus::Provenance::Promoted)
        .collect();
    // Both campaigns promote into the same store.
    assert_eq!(
        promoted.len(),
        first.promotions.len() + second.promotions.len()
    );
    for entry in &promoted {
        assert!(entry.name.starts_with('p'), "{:?}", entry.name);
        assert!(entry.parent.is_some(), "promotions record their seed");
        // The minimized program is on disk and loadable.
        assert!(store.program(&entry.name).is_some());
    }
    assert!(
        scheduled.iter().any(|s| s.starts_with('p')),
        "campaign two must schedule a promoted entry: {scheduled:?}"
    );
    assert!(second.executions > 0);

    // The lifecycle is deterministic end to end.
    let (first_b, second_b, scheduled_b) = promotion_lifecycle(&dir_b);
    assert_eq!(first, first_b);
    assert_eq!(second, second_b);
    assert_eq!(scheduled, scheduled_b);
    assert_eq!(manifest_bytes(&dir_a), manifest_bytes(&dir_b));

    for dir in [dir_a, dir_b] {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// A seed quarantined whole in campaign one is never attempted by
/// campaign two: the quarantine is persisted in the store and blocks the
/// scheduler before the first round.
#[test]
fn quarantine_persists_across_campaigns() {
    let dir = temp_dir("quarantine");
    let mut store = seeded_store(&dir);

    // Campaign one: a round-step deadline nothing fits under faults every
    // attempt; unattributable faults quarantine the seed as a whole.
    let mut config = small_config(2, 11);
    config.supervisor.round_step_deadline = Some(1);
    config.supervisor.max_retries = 1;
    config.supervisor.quarantine_threshold = 1;
    let opts = CorpusOptions::default();
    let first = run_corpus_campaign(&mut store, &config, &opts, None, None).unwrap();
    let banned: BTreeSet<String> = first
        .quarantined
        .iter()
        .filter(|(_, m)| m.is_none())
        .map(|(s, _)| s.clone())
        .collect();
    assert!(!banned.is_empty(), "campaign one must quarantine seeds");

    // The pairs are on disk.
    let store = jcorpus::Store::open(&dir).unwrap();
    for name in &banned {
        assert!(
            store
                .quarantine()
                .iter()
                .any(|(s, m)| s == name && m.is_none()),
            "{name} missing from persisted quarantine"
        );
    }

    // Campaign two (healthy config) never schedules a banned seed.
    let mut store = jcorpus::Store::open(&dir).unwrap();
    let journal = dir.join("second.jsonl");
    run_corpus_campaign(
        &mut store,
        &small_config(8, 12),
        &opts,
        Some(&journal),
        None,
    )
    .unwrap();
    for record in &read_journal(&journal).unwrap().records {
        assert!(
            !banned.contains(&record.seed),
            "round {} ran quarantined seed {:?}",
            record.round,
            record.seed
        );
    }

    std::fs::remove_dir_all(dir).ok();
}

/// `corpus stats --json` output parses and carries the documented schema:
/// a typed, versioned object whose entries mirror the store.
#[test]
fn stats_json_is_machine_readable() {
    use jtelemetry::schema::{parse_json, Json};

    let dir = temp_dir("stats_json");
    let mut store = seeded_store(&dir);
    run_corpus_campaign(
        &mut store,
        &small_config(3, 57),
        &CorpusOptions::default(),
        None,
        None,
    )
    .unwrap();

    let json = parse_json(&store.stats_json()).expect("stats --json must be valid JSON");
    assert_eq!(json.get("type"), Some(&Json::Str("jcorpus-stats".into())));
    assert_eq!(json.get("version"), Some(&Json::Num(1.0)));
    assert_eq!(json.get("dir"), Some(&Json::Str(dir.display().to_string())));
    let Some(Json::Arr(entries)) = json.get("entries") else {
        panic!("entries must be an array");
    };
    assert_eq!(entries.len(), store.entries().len());
    let mut total = 0.0;
    for entry in entries {
        for key in ["id", "name", "fingerprint", "provenance"] {
            assert!(
                matches!(entry.get(key), Some(Json::Str(_))),
                "{key} must be a string: {entry:?}"
            );
        }
        assert!(matches!(
            entry.get("parent"),
            Some(Json::Str(_) | Json::Null)
        ));
        for key in [
            "schedules",
            "yield_sum",
            "faults",
            "bugs",
            "energy",
            "floor_streak",
        ] {
            assert!(
                matches!(entry.get(key), Some(Json::Num(_))),
                "{key} must be a number: {entry:?}"
            );
        }
        let Some(Json::Num(energy)) = entry.get("energy") else {
            unreachable!()
        };
        total += energy;
    }
    assert!(matches!(json.get("tombstones"), Some(Json::Arr(_))));
    let Some(Json::Arr(quarantine)) = json.get("quarantine") else {
        panic!("quarantine must be an array");
    };
    assert_eq!(quarantine.len(), store.quarantine().len());
    let Some(Json::Num(reported)) = json.get("total_energy") else {
        panic!("total_energy must be a number");
    };
    assert!((reported - total).abs() < 1e-9);

    std::fs::remove_dir_all(dir).ok();
}

/// Fingerprint memoization: re-importing an already-imported seed set is
/// served entirely from the manifest's source hashes — zero reference-JVM
/// executions.
#[test]
fn reimport_skips_reference_jvm_via_memoized_fingerprints() {
    let dir = temp_dir("memoized");
    let mut store = seeded_store(&dir);

    jtelemetry::install(jtelemetry::Session::new());
    let again = import_seeds(
        &mut store,
        &corpus::builtin(),
        jcorpus::Provenance::Imported,
    );
    let metrics = jtelemetry::take().unwrap().snapshot();
    let again = again.unwrap();

    assert!(again.admitted.is_empty());
    assert_eq!(again.deduped.len(), corpus::builtin().len());
    assert_eq!(
        metrics.counter("vm_executions"),
        0,
        "memoized re-import must not execute the reference JVM"
    );

    std::fs::remove_dir_all(dir).ok();
}

/// Corpus GC leaves tombstones, not dangling ids: a journal written
/// before an entry was collected still resumes to the uninterrupted
/// result, because replay resolves seeds from the journal and the flush
/// treats tombstoned names as no-ops.
#[test]
fn gc_tombstones_do_not_break_resume() {
    let dir = temp_dir("gc_resume");
    let mut store = seeded_store(&dir);
    let journal = dir.join("campaign.jsonl");
    let config = small_config(6, 401);
    let opts = CorpusOptions::default();
    let full = run_corpus_campaign(&mut store, &config, &opts, Some(&journal), None).unwrap();

    // Collect a seed the campaign actually scheduled.
    let mut store = jcorpus::Store::open(&dir).unwrap();
    let victim = store
        .entries()
        .iter()
        .find(|e| e.stats.schedules > 0)
        .expect("some entry was scheduled")
        .name
        .clone();
    store.set_floor_streak(&victim, 5).unwrap();
    let dropped = store.gc(1);
    assert!(dropped.contains(&victim), "{dropped:?}");
    store.save().unwrap();
    let store = jcorpus::Store::open(&dir).unwrap();
    assert!(store.entries().iter().all(|e| e.name != victim));
    assert!(store.tombstones().iter().any(|t| t.name == victim));

    // Truncate the journal and resume over the GC'd store.
    let journal_text = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = journal_text.lines().collect();
    std::fs::write(&journal, lines[..=3].join("\n")).unwrap();
    let resumed = resume_campaign(&journal).unwrap();
    assert_eq!(
        resumed, full,
        "resume over tombstones must reproduce the run"
    );

    std::fs::remove_dir_all(dir).ok();
}
