//! Fleet-service equivalence, end to end.
//!
//! The daemon's whole promise is that multi-tenancy is *invisible* in
//! the artifacts: a campaign submitted over HTTP and run concurrently
//! with other tenants journals byte-for-byte what a standalone CLI run
//! with the same seed and worker counts journals — including across a
//! SIGTERM-style drain plus `serve --resume`. These tests pin that
//! promise with real sockets against an in-process [`mopfuzzerd::Server`],
//! and pin the sharded corpus store's migration round-trip.

use mopfuzzerd::{Config, Server, CAMPAIGNS_DIR, JOURNAL_FILE};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mop_service_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One HTTP/1.1 request over a real socket; returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: d\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Polls `GET /campaigns/{id}` until `pred` holds on the body.
fn poll_campaign(addr: SocketAddr, id: &str, pred: impl Fn(&str) -> bool, what: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = request(addr, "GET", &format!("/campaigns/{id}"), "");
        assert_eq!(status, 200, "{body}");
        if pred(&body) {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what} on {id}; last status: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The reference journal: the same library call, config, and defaults
/// the CLI's `--rounds .. --journal ..` path uses (`run_serve` is a thin
/// exec shim, and the CLI's own tests pin the binary to this call).
fn reference_journal(
    path: &Path,
    rounds: usize,
    rng_seed: u64,
    iterations: usize,
    jobs: usize,
    oracle_jobs: usize,
) {
    let config = mopfuzzer::CampaignConfig {
        iterations_per_seed: iterations,
        variant: mopfuzzer::Variant::Full,
        rounds,
        pool: jvmsim::JvmSpec::differential_pool(),
        rng_seed,
        supervisor: mopfuzzer::SupervisorConfig::default(),
        fault: None,
        jobs,
        oracle_jobs,
    };
    let seeds = mopfuzzer::corpus::builtin();
    mopfuzzer::run_campaign_with_journal(&seeds, &config, path).unwrap();
}

fn daemon_journal(data_dir: &Path, id: &str) -> PathBuf {
    data_dir.join(CAMPAIGNS_DIR).join(id).join(JOURNAL_FILE)
}

/// Two tenants through one daemon over HTTP, concurrently, must journal
/// byte-identically to the same two campaigns run serially via the CLI
/// entry points — and /metrics must stay a valid Prometheus page with a
/// per-campaign label for each tenant while they run.
#[test]
fn concurrent_tenants_journal_identically_to_serial_cli_runs() {
    let dir = temp_dir("tenants");
    let server = Server::start(Config {
        listen: "127.0.0.1:0".to_string(),
        data_dir: dir.clone(),
        max_active: 2,
        resume: false,
    })
    .unwrap();
    let addr = server.addr();
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = request(
        addr,
        "POST",
        "/campaigns",
        "{\"rounds\": 3, \"seed\": 11, \"iterations\": 6, \"jobs\": 1, \"oracle_jobs\": 1}",
    );
    assert_eq!(status, 201, "{body}");
    assert!(body.contains("\"id\":\"c0001\""), "{body}");
    let (status, body) = request(
        addr,
        "POST",
        "/campaigns",
        "{\"rounds\": 2, \"seed\": 22, \"iterations\": 5, \"jobs\": 2, \"oracle_jobs\": 1}",
    );
    assert_eq!(status, 201, "{body}");
    assert!(body.contains("\"id\":\"c0002\""), "{body}");

    // While the tenants run: the fleet metrics page must validate and,
    // once each tenant has finished a round, carry its campaign label.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, page) = request(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        jtelemetry::schema::validate_prometheus(&page)
            .unwrap_or_else(|e| panic!("invalid /metrics page: {e}\n{page}"));
        if page.contains("{campaign=\"c0001\"}") && page.contains("{campaign=\"c0002\"}") {
            break;
        }
        assert!(Instant::now() < deadline, "no per-campaign labels\n{page}");
        std::thread::sleep(Duration::from_millis(50));
    }

    poll_campaign(addr, "c0001", |b| b.contains("\"state\":\"done\""), "done");
    poll_campaign(addr, "c0002", |b| b.contains("\"state\":\"done\""), "done");
    let (_, listing) = request(addr, "GET", "/campaigns", "");
    assert!(
        listing.contains("c0001") && listing.contains("c0002"),
        "{listing}"
    );
    server.shutdown();

    // Serial reference runs with the same seeds and worker counts.
    let ref_dir = temp_dir("tenants_ref");
    std::fs::create_dir_all(&ref_dir).unwrap();
    reference_journal(&ref_dir.join("a.jsonl"), 3, 11, 6, 1, 1);
    reference_journal(&ref_dir.join("b.jsonl"), 2, 22, 5, 2, 1);
    let got_a = std::fs::read(daemon_journal(&dir, "c0001")).unwrap();
    let got_b = std::fs::read(daemon_journal(&dir, "c0002")).unwrap();
    assert_eq!(
        got_a,
        std::fs::read(ref_dir.join("a.jsonl")).unwrap(),
        "tenant c0001's journal diverged from the serial CLI-equivalent run"
    );
    assert_eq!(
        got_b,
        std::fs::read(ref_dir.join("b.jsonl")).unwrap(),
        "tenant c0002's journal diverged from the serial CLI-equivalent run"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// Drain mid-campaign, then `--resume`: the re-adopted tenant finishes
/// its journal byte-identically to an uninterrupted run.
#[test]
fn drain_and_resume_converges_to_the_uninterrupted_journal() {
    let dir = temp_dir("drain");
    let server = Server::start(Config {
        listen: "127.0.0.1:0".to_string(),
        data_dir: dir.clone(),
        max_active: 1,
        resume: false,
    })
    .unwrap();
    let addr = server.addr();
    let (status, body) = request(
        addr,
        "POST",
        "/campaigns",
        "{\"rounds\": 12, \"seed\": 7, \"iterations\": 8, \"jobs\": 1, \"oracle_jobs\": 1}",
    );
    assert_eq!(status, 201, "{body}");

    // Let at least one round land, then drain — the SIGTERM path minus
    // the signal itself (the binary's handler calls the same drain).
    poll_campaign(
        addr,
        "c0001",
        |b| !b.contains("\"completed_rounds\":0,"),
        "first round",
    );
    server.drain();

    let status_text =
        std::fs::read_to_string(dir.join(CAMPAIGNS_DIR).join("c0001").join("status.json")).unwrap();
    assert!(
        status_text.contains("\"state\":\"interrupted\"")
            || status_text.contains("\"state\":\"done\""),
        "{status_text}"
    );
    assert!(
        !status_text.contains("\"state\":\"running\""),
        "drain must settle the persisted state: {status_text}"
    );

    // A fresh daemon re-adopts and finishes it.
    let server = Server::start(Config {
        listen: "127.0.0.1:0".to_string(),
        data_dir: dir.clone(),
        max_active: 1,
        resume: true,
    })
    .unwrap();
    let addr = server.addr();
    poll_campaign(addr, "c0001", |b| b.contains("\"state\":\"done\""), "done");
    server.shutdown();

    let ref_dir = temp_dir("drain_ref");
    std::fs::create_dir_all(&ref_dir).unwrap();
    reference_journal(&ref_dir.join("ref.jsonl"), 12, 7, 8, 1, 1);
    assert_eq!(
        std::fs::read(daemon_journal(&dir, "c0001")).unwrap(),
        std::fs::read(ref_dir.join("ref.jsonl")).unwrap(),
        "drain + resume diverged from the uninterrupted journal"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// Corpus campaigns work through the daemon too, over a store the
/// campaign promotes into; the journal matches a serial corpus run.
#[test]
fn corpus_tenant_journals_identically() {
    let dir = temp_dir("corpus");
    let store_dir = dir.join("store");
    let mut store = jcorpus::Store::init(&store_dir).unwrap();
    mopfuzzer::import_seeds(
        &mut store,
        &mopfuzzer::corpus::builtin(),
        jcorpus::Provenance::Builtin,
    )
    .unwrap();
    store.save().unwrap();
    // The reference store is a byte-copy made before any campaign runs.
    let ref_store_dir = dir.join("store_ref");
    copy_dir(&store_dir, &ref_store_dir);

    let server = Server::start(Config {
        listen: "127.0.0.1:0".to_string(),
        data_dir: dir.join("data"),
        max_active: 1,
        resume: false,
    })
    .unwrap();
    let addr = server.addr();
    let (status, body) = request(
        addr,
        "POST",
        "/campaigns",
        &format!(
            "{{\"rounds\": 2, \"seed\": 5, \"iterations\": 6, \"jobs\": 1, \
             \"oracle_jobs\": 1, \"corpus\": \"{}\"}}",
            store_dir.display()
        ),
    );
    assert_eq!(status, 201, "{body}");
    poll_campaign(addr, "c0001", |b| b.contains("\"state\":\"done\""), "done");
    server.shutdown();

    let ref_journal = dir.join("ref.jsonl");
    let mut ref_store = jcorpus::Store::open(&ref_store_dir).unwrap();
    let config = mopfuzzer::CampaignConfig {
        iterations_per_seed: 6,
        variant: mopfuzzer::Variant::Full,
        rounds: 2,
        pool: jvmsim::JvmSpec::differential_pool(),
        rng_seed: 5,
        supervisor: mopfuzzer::SupervisorConfig::default(),
        fault: None,
        jobs: 1,
        oracle_jobs: 1,
    };
    mopfuzzer::run_corpus_campaign(
        &mut ref_store,
        &config,
        &mopfuzzer::CorpusOptions::default(),
        Some(&ref_journal),
        None,
    )
    .unwrap();
    // The journals agree except for the header's store path (an absolute
    // path baked into the corpus header), so compare line by line with
    // the paths normalized.
    let got = std::fs::read_to_string(daemon_journal(&dir.join("data"), "c0001")).unwrap();
    let want = std::fs::read_to_string(&ref_journal).unwrap();
    let norm = |text: &str, dir: &Path| text.replace(&dir.display().to_string(), "STORE");
    assert_eq!(
        norm(&got, &store_dir),
        norm(&want, &ref_store_dir),
        "corpus tenant journal diverged from the serial run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Sharded-store round trip: init flat, migrate in place, fsck clean,
/// stats and entries preserved, and the sharded store still drives a
/// campaign.
#[test]
fn shard_migration_round_trips_and_stays_campaignable() {
    let dir = temp_dir("shards");
    let store_dir = dir.join("store");
    let mut store = jcorpus::Store::init(&store_dir).unwrap();
    mopfuzzer::import_seeds(
        &mut store,
        &mopfuzzer::corpus::builtin(),
        jcorpus::Provenance::Builtin,
    )
    .unwrap();
    store.save().unwrap();
    let flat_stats = store.stats_json();
    let flat: Vec<(String, String)> = store
        .entries()
        .iter()
        .map(|e| (e.name.clone(), e.id.clone()))
        .collect();
    drop(store);

    let migrated = jcorpus::shard_store(&store_dir, 4).unwrap();
    assert_eq!(migrated, flat.len());
    let report = jcorpus::fsck(&store_dir, false).unwrap();
    assert!(report.clean(), "{:?}", report.issues);

    let sharded = jcorpus::Store::open(&store_dir).unwrap();
    assert_eq!(sharded.shards(), Some(4));
    assert_eq!(sharded.len(), flat.len());
    for (name, id) in &flat {
        let entry = sharded
            .entries()
            .iter()
            .find(|e| &e.name == name)
            .unwrap_or_else(|| panic!("entry {name} lost in migration"));
        assert_eq!(&entry.id, id, "{name} changed id in migration");
    }
    // Same per-entry content: the stats pages agree on the total energy
    // (ordering is shard-major, so whole-page bytes are not comparable).
    let total = |stats: &str| {
        stats
            .rsplit_once("\"total_energy\":")
            .map(|(_, tail)| tail.to_string())
            .unwrap()
    };
    let sharded_stats = sharded.stats_json();
    assert_eq!(total(&sharded_stats), total(&flat_stats));
    assert!(sharded_stats.contains("\"shards\":4"), "{sharded_stats}");
    drop(sharded);

    // The migrated store still runs a campaign end to end.
    let mut store = jcorpus::Store::open(&store_dir).unwrap();
    let config = mopfuzzer::CampaignConfig {
        iterations_per_seed: 4,
        variant: mopfuzzer::Variant::Full,
        rounds: 1,
        pool: jvmsim::JvmSpec::differential_pool(),
        rng_seed: 0,
        supervisor: mopfuzzer::SupervisorConfig::default(),
        fault: None,
        jobs: 1,
        oracle_jobs: 1,
    };
    let result = mopfuzzer::run_corpus_campaign(
        &mut store,
        &config,
        &mopfuzzer::CorpusOptions::default(),
        None,
        None,
    )
    .unwrap();
    assert_eq!(result.completed_rounds(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}
