//! End-to-end integration: the full MopFuzzer pipeline from seed to
//! reduced, reproducible bug report — the flow of the paper's §2.4
//! motivating example and §3.5 oracles.

use jvmsim::{JvmSpec, RunOptions, Verdict, Version};
use mopfuzzer::{fuzz, FuzzConfig, Variant};

/// The analogue of the paper's Listing 3: a hand-built mutant combining
/// nested monitors, an unrollable loop, and adjacent monitor regions —
/// which together (and only together) crash the mainline JVM in macro
/// expansion (MOP-8312744, the JDK-8312744 analogue).
fn listing3_analogue() -> mjava::Program {
    mjava::parse(
        r#"
        class T {
            static int s;
            static void main() {
                synchronized (T.class) {
                    synchronized (T.class) {
                        s = s + 1;
                    }
                }
                int i = 0;
                // Body size 8: the 2x-unroller fires exactly twice across
                // the rounds (8 → 17 → 35 > unroll body limit), giving the
                // two Unroll events MOP-8312744's trigger needs without
                // reaching MOP-9014's three.
                while (i < 64) {
                    s = s + i;
                    s = s + 1;
                    s = s - 2;
                    s = s + 5;
                    s = s - 4;
                    s = s + 7;
                    s = s - 6;
                    i = i + 1;
                }
                synchronized (T.class) { s = s + 3; }
                synchronized (T.class) { s = s + 4; }
                System.out.println(s);
            }
        }
        "#,
    )
    .unwrap()
}

#[test]
fn listing3_crashes_mainline_in_macro_expansion() {
    let program = listing3_analogue();
    let spec = JvmSpec::hotspur(Version::Mainline);
    let run = jvmsim::run_jvm(&program, &spec, &RunOptions::fuzzing());
    match &run.verdict {
        Verdict::CompilerCrash(report) => {
            assert_eq!(report.bug_id, "MOP-8312744", "wrong bug: {report:?}");
            assert!(report.hs_err.contains("Macro Expansion"));
        }
        other => panic!("expected the JDK-8312744 analogue, got {other:?}"),
    }
}

#[test]
fn listing3_needs_every_ingredient() {
    // The paper stresses that removing any injected structure defuses the
    // crash. Ablate each ingredient on the AST and verify MOP-8312744 no
    // longer fires.
    use mjava::Stmt;
    let no_nesting = {
        // Flatten the nested monitor: the outer sync keeps the inner body.
        let mut p = listing3_analogue();
        let main = &mut p.classes[0].methods[0].body;
        let Stmt::Sync { body, .. } = &mut main.0[0] else {
            panic!("statement 0 is the nested sync");
        };
        let Stmt::Sync { body: inner, .. } = body.0[0].clone() else {
            panic!("inner sync expected");
        };
        *body = inner;
        p
    };
    let no_loop = {
        let mut p = listing3_analogue();
        let main = &mut p.classes[0].methods[0].body;
        main.0.retain(|s| !matches!(s, Stmt::While { .. }));
        p
    };
    let no_adjacency = {
        // Drop the last synchronized region so none are adjacent.
        let mut p = listing3_analogue();
        let main = &mut p.classes[0].methods[0].body;
        let last_sync = main
            .0
            .iter()
            .rposition(|s| matches!(s, Stmt::Sync { .. }))
            .expect("trailing sync exists");
        main.0.remove(last_sync);
        p
    };
    let spec = JvmSpec::hotspur(Version::Mainline);
    for (i, program) in [no_nesting, no_loop, no_adjacency].iter().enumerate() {
        let run = jvmsim::run_jvm(program, &spec, &RunOptions::fuzzing());
        if let Verdict::CompilerCrash(report) = &run.verdict {
            assert_ne!(
                report.bug_id, "MOP-8312744",
                "ablation {i} should defuse the interaction"
            );
        }
    }
}

#[test]
fn jdk8324174_analogue_needs_three_nested_locks() {
    // Paper §3.4: "JDK-8324174 exposes the bug through the use of three
    // nested locks." Its analogue additionally needs an eliminable
    // (thread-local) monitor in the same compilation.
    let program = mjava::parse(
        r#"
        class T {
            static int s;
            static void main() {
                T local = new T();
                synchronized (local) { s = s + 1; }
                synchronized (T.class) {
                    synchronized (T.class) {
                        synchronized (T.class) {
                            s = s + 2;
                        }
                    }
                }
                System.out.println(s);
            }
        }
        "#,
    )
    .unwrap();
    let spec = JvmSpec::hotspur(Version::V17);
    let run = jvmsim::run_jvm(&program, &spec, &RunOptions::fuzzing());
    match &run.verdict {
        Verdict::CompilerCrash(report) => assert_eq!(report.bug_id, "MOP-8324174"),
        other => panic!("expected the JDK-8324174 analogue, got {other:?}"),
    }
    // With only two nested levels the bug stays dormant.
    let two_levels = mjava::parse(
        r#"
        class T {
            static int s;
            static void main() {
                T local = new T();
                synchronized (local) { s = s + 1; }
                synchronized (T.class) {
                    synchronized (T.class) {
                        s = s + 2;
                    }
                }
                System.out.println(s);
            }
        }
        "#,
    )
    .unwrap();
    let run = jvmsim::run_jvm(&two_levels, &spec, &RunOptions::fuzzing());
    if let Verdict::CompilerCrash(report) = &run.verdict {
        assert_ne!(report.bug_id, "MOP-8324174");
    }
}

#[test]
fn jdk8322743_analogue_needs_four_way_interaction() {
    // Paper §4.2: JDK-8322743's trigger involves escape analysis, lock
    // elimination, autobox elimination, and deoptimization together.
    let program = mjava::parse(
        r#"
        class T {
            int v;
            static int s;
            static void main() {
                T o = new T();
                o.v = 3;
                synchronized (o) {
                    s = s + o.v;
                }
                int b = Integer.valueOf(s).intValue();
                // The loop body is bulky on purpose: after peeling it
                // exceeds the 2x-unroll size limit, so no Unroll events
                // occur and the loop-heavy bugs (e.g. MOP-9015) stay
                // quiet — isolating the four-way interaction under test.
                for (int i = 0; i < 200; i++) {
                    if (i == 1_000_003) { s = s + b; }
                    s = s + i; s = s + 1; s = s + 2; s = s + 3;
                    s = s + 4; s = s + 5; s = s + 6; s = s + 7;
                    s = s + 8; s = s + 9; s = s + 10; s = s + 11;
                    s = s + 12; s = s + 13; s = s + 14; s = s + 15;
                    s = s + 16; s = s + 17; s = s + 18; s = s + 19;
                    s = s + 20; s = s + 21; s = s + 22; s = s + 23;
                }
                System.out.println(s);
            }
        }
        "#,
    )
    .unwrap();
    let spec = JvmSpec::hotspur(Version::Mainline);
    let run = jvmsim::run_jvm(&program, &spec, &RunOptions::fuzzing());
    match &run.verdict {
        Verdict::CompilerCrash(report) => assert_eq!(report.bug_id, "MOP-8322743"),
        other => panic!("expected the JDK-8322743 analogue, got {other:?}"),
    }
}

#[test]
fn fuzzing_discovers_a_crash_and_reduction_keeps_it() {
    let seeds = mopfuzzer::corpus::builtin();
    let pool = JvmSpec::differential_pool();
    let mut found = None;
    for round in 0u64..120 {
        let seed = &seeds[round as usize % seeds.len()];
        let config = FuzzConfig {
            max_iterations: 50,
            variant: Variant::Full,
            guidance: pool[round as usize % pool.len()].clone(),
            rng_seed: 555 + round,
            weight_scheme: Default::default(),
            banned: Vec::new(),
            fault: None,
        };
        let outcome = fuzz(&seed.program, &config);
        if outcome.crash.is_some() {
            found = Some((config, outcome));
            break;
        }
    }
    let (config, outcome) = found.expect("a guided run should crash within the window");
    assert!(outcome.crash.is_some());

    // The crash reproduces on a fresh run of the final mutant. (Without
    // the fuzzer's `compileonly` restriction every method compiles, so a
    // different injected bug may fire first — but the VM must still
    // crash.)
    let rerun = jvmsim::run_jvm(
        &outcome.final_mutant,
        &config.guidance,
        &RunOptions::fuzzing(),
    );
    let Verdict::CompilerCrash(report) = &rerun.verdict else {
        panic!("crash did not reproduce: {:?}", rerun.verdict);
    };

    // Reduction shrinks the mutant while preserving the crash.
    let bug_id = report.bug_id.clone();
    let spec = config.guidance.clone();
    let mut oracle = |p: &mjava::Program| {
        matches!(
            &jvmsim::run_jvm(p, &spec, &RunOptions::fuzzing()).verdict,
            Verdict::CompilerCrash(r) if r.bug_id == bug_id
        )
    };
    let (reduced, stats) = jreduce::reduce(&outcome.final_mutant, &mut oracle);
    assert!(oracle(&reduced), "reduced case must still crash");
    assert!(
        stats.after_stmts <= stats.before_stmts,
        "reduction must never grow the case"
    );
}

#[test]
fn fixed_mp_beats_random_mp_on_behaviour_increment() {
    // The §4.4 ablation shape at miniature scale: over the same seeds and
    // RNG seeds, the fixed-MP strategy accumulates more behaviour change
    // than random-MP.
    let seeds = mopfuzzer::corpus::builtin();
    let guidance = JvmSpec::hotspur(Version::V17).without_bugs();
    let mut full_total = 0.0;
    let mut random_total = 0.0;
    for (i, seed) in seeds.iter().enumerate().take(6) {
        for variant in [Variant::Full, Variant::RandomMp] {
            let config = FuzzConfig {
                max_iterations: 20,
                variant,
                guidance: guidance.clone(),
                rng_seed: 40 + i as u64,
                weight_scheme: Default::default(),
                banned: Vec::new(),
                fault: None,
            };
            let outcome = fuzz(&seed.program, &config);
            match variant {
                Variant::Full => full_total += outcome.final_delta(),
                Variant::RandomMp => random_total += outcome.final_delta(),
                Variant::NoGuidance => unreachable!(),
            }
        }
    }
    assert!(
        full_total > random_total,
        "fixed MP {full_total:.1} should beat random MP {random_total:.1}"
    );
}
