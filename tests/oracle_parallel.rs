//! The parallel differential oracle's contract: `--oracle-jobs N` is an
//! execution detail, never an observable one. The work-stealing oracle
//! must reproduce the serial loop bit for bit — `DifferentialResult`s
//! (verdicts, culprit sets, coverage), telemetry verdict counters and
//! flight-recorder replays, and whole campaign journals, in plain and
//! corpus mode, under fault injection, at any `--jobs` × `--oracle-jobs`
//! combination. Plus the property angle: equivalence for arbitrary
//! generated programs and worker counts, and verdict invariance under
//! pool-order permutation.

use jvmsim::{FaultPlan, JvmSpec, RunOptions};
use mopfuzzer::{
    corpus, differential_jobs, fuzz, import_seeds, run_campaign_with_journal, run_corpus_campaign,
    CampaignConfig, CorpusOptions, DifferentialResult, FuzzConfig, OracleVerdict,
};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mop_oracle_{}_{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A campaign with deterministic fault injection — the retry/quarantine
/// machinery must not perturb the oracle merge (crashing *injected*
/// faults land inside `run_jvm`, i.e. inside the parallel section).
fn faulty_config(rounds: usize, rng_seed: u64, jobs: usize, oracle_jobs: usize) -> CampaignConfig {
    let mut config = CampaignConfig {
        iterations_per_seed: 10,
        rounds,
        rng_seed,
        jobs,
        oracle_jobs,
        ..CampaignConfig::new(rounds)
    };
    config.fault = Some(FaultPlan::new(rng_seed ^ 0x5eed, 0.25));
    config
}

/// Optimization-heavy mutants for direct oracle calls: each builtin seed
/// fuzzed briefly, so verdicts cover more than cold seed programs.
fn oracle_workload() -> Vec<mjava::Program> {
    let pool = JvmSpec::differential_pool();
    corpus::builtin()
        .iter()
        .enumerate()
        .map(|(i, seed)| {
            let config = FuzzConfig {
                max_iterations: 12,
                rng_seed: i as u64,
                ..FuzzConfig::new(pool[i % pool.len()].clone())
            };
            fuzz(&seed.program, &config).final_mutant
        })
        .collect()
}

/// A deterministic Fisher-Yates permutation keyed by `key` (no RNG dep).
fn permuted(pool: &[JvmSpec], key: u64) -> Vec<JvmSpec> {
    let mut v = pool.to_vec();
    let mut state = key | 1;
    for i in (1..v.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.swap(i, (state >> 33) as usize % (i + 1));
    }
    v
}

/// Direct oracle calls: every worker count returns a `DifferentialResult`
/// equal to the serial loop's — verdict, culprit sets, outputs, coverage,
/// execution and step totals.
#[test]
fn parallel_oracle_results_match_serial() {
    let pool = JvmSpec::differential_pool();
    let options = RunOptions::fuzzing();
    for program in &oracle_workload() {
        let serial = differential_jobs(program, &pool, &options, 1);
        for oracle_jobs in [2, 4, 8, 13] {
            let parallel = differential_jobs(program, &pool, &options, oracle_jobs);
            assert_eq!(serial, parallel, "diverged at oracle-jobs {oracle_jobs}");
        }
    }
}

/// With a telemetry session installed, the parallel oracle replays every
/// serial side effect in canonical pool order: verdict and execution
/// counters, span counts, mutator stats, and the flight-recorder stream
/// (work-step timestamps included) are identical. Span *durations* are
/// wall-clock and excluded — the manual clock pins the main session, but
/// absorbed worker spans still tick real nanoseconds.
#[test]
fn parallel_oracle_telemetry_matches_serial() {
    let pool = JvmSpec::differential_pool();
    let options = RunOptions::fuzzing();
    let programs = oracle_workload();
    let run = |oracle_jobs: usize| {
        jtelemetry::install(jtelemetry::Session::with_clock(Box::new(
            jtelemetry::ManualClock::new(),
        )));
        jtelemetry::flight_reset();
        let results: Vec<DifferentialResult> = programs
            .iter()
            .map(|p| differential_jobs(p, &pool, &options, oracle_jobs))
            .collect();
        let flight = jtelemetry::flight_snapshot();
        let snap = jtelemetry::take().expect("session installed").snapshot();
        (results, flight, snap)
    };
    let (serial_results, serial_flight, serial_snap) = run(1);
    assert!(
        serial_snap.counter("vm_executions") > 0,
        "telemetry did not observe the oracle"
    );
    for oracle_jobs in [2, 4, 8] {
        let (results, flight, snap) = run(oracle_jobs);
        assert_eq!(serial_results, results);
        assert_eq!(
            serial_flight, flight,
            "flight replay diverged at oracle-jobs {oracle_jobs}"
        );
        assert_eq!(
            serial_snap.counters, snap.counters,
            "counters diverged at oracle-jobs {oracle_jobs}"
        );
        let span_counts = |s: &jtelemetry::MetricsSnapshot| {
            s.spans
                .iter()
                .map(|sp| (sp.name.clone(), sp.count))
                .collect::<Vec<_>>()
        };
        assert_eq!(span_counts(&serial_snap), span_counts(&snap));
        assert_eq!(serial_snap.mutators, snap.mutators);
    }
}

/// Plain campaign mode under fault injection: `--oracle-jobs 4` writes
/// the same journal bytes and returns the same result as the serial
/// oracle, even when rounds fault, retry, and quarantine mid-campaign.
#[test]
fn plain_campaign_is_bit_identical_across_oracle_jobs() {
    let seeds = corpus::builtin();
    let dir = temp_dir("plain");
    fs::create_dir_all(&dir).unwrap();
    let (path_1, path_4) = (dir.join("oj1.jsonl"), dir.join("oj4.jsonl"));

    let serial = run_campaign_with_journal(&seeds, &faulty_config(10, 77, 1, 1), &path_1).unwrap();
    let parallel =
        run_campaign_with_journal(&seeds, &faulty_config(10, 77, 1, 4), &path_4).unwrap();

    assert_eq!(serial, parallel);
    assert_eq!(fs::read(&path_1).unwrap(), fs::read(&path_4).unwrap());
    // The fault machinery actually fired — otherwise this proves nothing.
    assert!(
        serial.retried_attempts > 0 || serial.errored_rounds > 0 || serial.skipped_rounds > 0,
        "fault plan produced no faults; raise the rate"
    );

    fs::remove_dir_all(dir).ok();
}

/// Round-level and oracle-level parallelism compose: any `--jobs` ×
/// `--oracle-jobs` combination reproduces the fully serial journal.
#[test]
fn jobs_and_oracle_jobs_compose_bit_identically() {
    let seeds = corpus::builtin();
    let dir = temp_dir("compose");
    fs::create_dir_all(&dir).unwrap();
    let baseline_path = dir.join("serial.jsonl");
    let baseline =
        run_campaign_with_journal(&seeds, &faulty_config(8, 902, 1, 1), &baseline_path).unwrap();
    let baseline_bytes = fs::read(&baseline_path).unwrap();

    for (jobs, oracle_jobs) in [(2, 2), (4, 2), (2, 4)] {
        let path = dir.join(format!("j{jobs}_oj{oracle_jobs}.jsonl"));
        let result =
            run_campaign_with_journal(&seeds, &faulty_config(8, 902, jobs, oracle_jobs), &path)
                .unwrap();
        assert_eq!(
            baseline, result,
            "result diverged at jobs {jobs} x oracle-jobs {oracle_jobs}"
        );
        assert_eq!(
            baseline_bytes,
            fs::read(&path).unwrap(),
            "journal diverged at jobs {jobs} x oracle-jobs {oracle_jobs}"
        );
    }

    fs::remove_dir_all(dir).ok();
}

/// Corpus mode: starting from byte-identical stores at the same path,
/// serial- and parallel-oracle campaigns leave byte-identical journals,
/// manifests, and quarantine files behind.
#[test]
fn corpus_campaign_is_bit_identical_across_oracle_jobs() {
    let dir = temp_dir("corpus");
    let mut store = jcorpus::Store::init(&dir).unwrap();
    import_seeds(&mut store, &corpus::builtin(), jcorpus::Provenance::Builtin).unwrap();
    store.save().unwrap();
    let pristine = snapshot_dir(&dir);
    let journal = dir.join("campaign.jsonl");
    let opts = CorpusOptions {
        promote_threshold: 1.0,
        ..CorpusOptions::default()
    };

    let serial = run_corpus_campaign(
        &mut store,
        &faulty_config(6, 401, 1, 1),
        &opts,
        Some(&journal),
        None,
    )
    .unwrap();
    let after_serial = snapshot_dir(&dir);

    restore_dir(&dir, &pristine);
    let mut store = jcorpus::Store::open(&dir).unwrap();
    let parallel = run_corpus_campaign(
        &mut store,
        &faulty_config(6, 401, 1, 4),
        &opts,
        Some(&journal),
        None,
    )
    .unwrap();

    assert_eq!(serial, parallel);
    assert_eq!(after_serial, snapshot_dir(&dir));

    fs::remove_dir_all(dir).ok();
}

/// Everything in the store directory except the advisory lockfile,
/// relative paths sorted for stable comparison.
fn snapshot_dir(dir: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else if path.file_name().and_then(|n| n.to_str()) != Some(jcorpus::LOCKFILE) {
                let rel = path.strip_prefix(dir).unwrap().to_path_buf();
                files.push((rel, fs::read(&path).unwrap()));
            }
        }
    }
    files.sort();
    files
}

fn restore_dir(dir: &Path, snapshot: &[(PathBuf, Vec<u8>)]) {
    fs::remove_dir_all(dir).unwrap();
    for (rel, bytes) in snapshot {
        let path = dir.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, bytes).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The equivalence is not an artifact of the builtin corpus: for any
    /// generated program (arbitrary generator seed, briefly fuzzed) and
    /// any worker count, the parallel oracle matches the serial one.
    #[test]
    fn oracle_equivalence_holds_for_generated_programs(
        rng_seed in any::<u64>(),
        workers in 2usize..9,
    ) {
        let seed = corpus::corpus(1, rng_seed).pop().unwrap();
        let pool = JvmSpec::differential_pool();
        let options = RunOptions::fuzzing();
        let config = FuzzConfig {
            max_iterations: 6,
            rng_seed,
            ..FuzzConfig::new(pool[(rng_seed % pool.len() as u64) as usize].clone())
        };
        let mutant = fuzz(&seed.program, &config).final_mutant;
        let serial = differential_jobs(&mutant, &pool, &options, 1);
        let parallel = differential_jobs(&mutant, &pool, &options, workers);
        prop_assert_eq!(serial, parallel);
    }

    /// Verdicts are a property of the *set* of JVMs, not their order: for
    /// any pool permutation and worker count, non-crash results are fully
    /// identical (culprit sets, outputs, coverage, totals — all of them
    /// canonicalized), and a crash verdict stays a crash verdict (which
    /// JVM wins is by design the first crasher in pool order).
    #[test]
    fn verdicts_are_invariant_under_pool_permutation(
        seed_index in 0usize..6,
        key in any::<u64>(),
        workers in 1usize..9,
    ) {
        let seeds = corpus::builtin();
        let seed = &seeds[seed_index % seeds.len()];
        let pool = JvmSpec::differential_pool();
        let options = RunOptions::fuzzing();
        let config = FuzzConfig {
            max_iterations: 8,
            rng_seed: key,
            ..FuzzConfig::new(pool[seed_index % pool.len()].clone())
        };
        let mutant = fuzz(&seed.program, &config).final_mutant;
        let base = differential_jobs(&mutant, &pool, &options, 1);
        let shuffled = permuted(&pool, key);
        let perm = differential_jobs(&mutant, &shuffled, &options, workers);
        match (&base.verdict, &perm.verdict) {
            (OracleVerdict::Crash { .. }, OracleVerdict::Crash { .. }) => {}
            _ => prop_assert_eq!(&base, &perm),
        }
    }
}
