//! Reproduces the paper's motivating scenario (§2.4): iterated mutation
//! at a fixed mutation point until a mutant crashes a JVM's JIT compiler
//! — the analogue of finding JDK-8312744 — then prints the `hs_err`
//! report and the reduced test case.
//!
//! Run with: `cargo run --release --example find_crash`

use jvmsim::{JvmSpec, RunOptions, Verdict};
use mopfuzzer::{fuzz, FuzzConfig, Variant};

fn main() {
    let seeds = mopfuzzer::corpus::builtin();
    let pool = JvmSpec::differential_pool();

    // Fuzz seeds against rotating guidance JVMs until a crash shows up.
    let mut found = None;
    'search: for round in 0u64..400 {
        let seed = &seeds[round as usize % seeds.len()];
        let guidance = pool[round as usize % pool.len()].clone();
        let config = FuzzConfig {
            max_iterations: 50,
            variant: Variant::Full,
            guidance,
            rng_seed: 1000 + round,
            weight_scheme: Default::default(),
            banned: Vec::new(),
            fault: None,
        };
        let outcome = fuzz(&seed.program, &config);
        if outcome.crash.is_some() {
            found = Some((seed.name.clone(), config, outcome));
            break 'search;
        }
    }
    let Some((seed_name, config, outcome)) = found else {
        println!("no crash found in this search window — rerun with more rounds");
        return;
    };
    let crash = outcome.crash.as_ref().expect("crash found");
    println!(
        "crash found: {} in component \"{}\" on {} (seed {}, {} iterations)",
        crash.bug_id,
        crash.component.label(),
        config.guidance.name(),
        seed_name,
        outcome.records.len(),
    );
    println!("\nmutators applied:");
    for record in &outcome.records {
        println!("  {:2}. {}", record.iteration, record.mutator.label());
    }
    println!("\nhs_err report:\n{}", crash.hs_err);

    // Reduce the mutant while the same bug still crashes the same JVM.
    let bug_id = crash.bug_id.clone();
    let spec = config.guidance.clone();
    let mut oracle = |candidate: &mjava::Program| {
        let run = jvmsim::run_jvm(candidate, &spec, &RunOptions::fuzzing());
        matches!(&run.verdict, Verdict::CompilerCrash(r) if r.bug_id == bug_id)
    };
    println!(
        "reducing ({} statements) ...",
        outcome.final_mutant.stmt_count()
    );
    let (reduced, stats) = jreduce::reduce(&outcome.final_mutant, &mut oracle);
    println!(
        "reduced {} → {} statements in {} oracle calls",
        stats.before_stmts, stats.after_stmts, stats.oracle_calls
    );
    println!(
        "\nreduced bug-triggering test case:\n{}",
        mjava::print(&reduced)
    );
}
