//! A miniature fuzzing campaign: many seeds, rotating guidance JVMs,
//! crash + differential oracles, root-cause deduplication, coverage, and
//! mutator statistics — everything §4's experiments are built from.
//!
//! Run with: `cargo run --release --example campaign`

use jvmsim::Area;
use mopfuzzer::stats::{mutator_ratios, pair_ratios};
use mopfuzzer::{run_campaign, CampaignConfig, Variant};

fn main() {
    let seeds = mopfuzzer::corpus::corpus(5, 42);
    let config = CampaignConfig {
        iterations_per_seed: 50,
        variant: Variant::Full,
        rounds: 30,
        ..CampaignConfig::new(0)
    };
    println!(
        "campaign: {} rounds × {} iterations over {} seeds, {} JVMs in the pool",
        config.rounds,
        config.iterations_per_seed,
        seeds.len(),
        config.pool.len()
    );
    let result = run_campaign(&seeds, &config);

    println!(
        "\n{} JVM executions, {} simulated steps, median final Δ {:.1}",
        result.executions,
        result.steps,
        result.median_delta()
    );
    println!("\ncoverage:");
    for area in Area::ALL {
        println!("  {area:8} {:5.1}%", result.coverage.percent(area));
    }

    println!("\nbugs found ({}):", result.bugs.len());
    for bug in &result.bugs {
        println!(
            "  {:12} {:26} {:12} via seed {:14} after {:>9} execs",
            bug.id,
            bug.component.label(),
            if bug.is_crash { "crash" } else { "miscompile" },
            bug.seed,
            bug.at_execs,
        );
    }

    if !result.bugs.is_empty() {
        println!("\ntop mutators involved in bug-triggering cases:");
        for (kind, ratio) in mutator_ratios(&result.bugs).into_iter().take(5) {
            println!("  {:26} {:5.1}%", kind.label(), ratio * 100.0);
        }
        println!("\ntop mutator pairs:");
        for ((a, b), ratio) in pair_ratios(&result.bugs).into_iter().take(5) {
            println!(
                "  {:22} + {:22} {:5.1}%",
                a.label(),
                b.label(),
                ratio * 100.0
            );
        }
    }
}
