//! Quickstart: parse a MiniJava seed, run it on a simulated JVM with all
//! trace flags, scrape the profile data into an OBV, and apply a couple
//! of optimization-evoking mutations by hand.
//!
//! Run with: `cargo run --example quickstart`

use jprofile::Obv;
use jvmsim::{run_jvm, JvmSpec, RunOptions, Version};
use mopfuzzer::{all_mutators, MutatorKind};
use rand::SeedableRng as _;

fn main() {
    // 1. A seed in the style of a JDK regression test (paper Listing 2).
    let seed = mjava::parse(
        r#"
        class T {
            int f;
            static void main() {
                T t = new T();
                for (int i = 0; i < 2_000; i++) {
                    t.foo(i);
                }
                System.out.println(t.f);
            }
            void foo(int i) { f = f + i % 7; }
        }
        "#,
    )
    .expect("seed parses");

    // 2. Execute on HotSpur-17 with -Xcomp and all 15 print flags.
    let spec = JvmSpec::hotspur(Version::V17);
    let run = run_jvm(&seed, &spec, &RunOptions::fuzzing());
    println!("JVM: {run}");
    println!("output: {:?}", run.observable().expect("completes"));
    println!("\nprofile data (first 10 lines):");
    for line in run.log.iter().take(10) {
        println!("  {line}");
    }

    // 3. The Optimization Behavior Vector the fuzzer derives from it.
    let obv = Obv::from_log(&run.log);
    println!("\nOBV = {obv}");
    println!("distinct behaviours: {}", obv.distinct());

    // 4. Apply two mutators at the paper's mutation point (`t.foo(i)`).
    let mp = mjava::path::all_paths(&seed)
        .into_iter()
        .find(|p| {
            mjava::path::stmt_at(&seed, p)
                .map(mjava::print_stmt)
                .is_some_and(|s| s.contains("t.foo(i)"))
        })
        .expect("mutation point exists");
    let mutators = all_mutators();
    let lock_elim = mutators
        .iter()
        .find(|m| m.kind() == MutatorKind::LockElimination)
        .expect("mutator registered");
    let unroll = mutators
        .iter()
        .find(|m| m.kind() == MutatorKind::LoopUnrolling)
        .expect("mutator registered");

    let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
    let m1 = lock_elim.apply(&seed, &mp, &mut rng).expect("applies");
    let m2 = unroll
        .apply(&m1.program, &m1.mp, &mut rng)
        .expect("applies");
    println!("\nmutant after LockElimination-evoke + LoopUnrolling-evoke:");
    println!("{}", mjava::print(&m2.program));

    // 5. The mutant triggers more optimization behaviours.
    let mutant_run = run_jvm(&m2.program, &spec, &RunOptions::fuzzing());
    let mutant_obv = Obv::from_log(&mutant_run.log);
    println!("mutant OBV = {mutant_obv}");
    println!(
        "Δ(seed → mutant) = {:.2}  (Eq. 2)",
        Obv::delta(&obv, &mutant_obv)
    );
}
