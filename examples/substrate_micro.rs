//! Per-shape substrate microbenchmark: times `--exec-mode interp` vs
//! `--exec-mode threaded` on small programs that isolate one dispatch
//! shape each (counted loops, local/static arithmetic, static and
//! virtual calls, field access, boxing), reporting ns/step per mode.
//!
//! Complements `interp_bench` (which measures the full campaign
//! workload): when the campaign-level ratio moves, this shows *which*
//! shape moved. `--workload-profile` prints the opcode mix of the
//! campaign workload instead, for deciding what to fuse next.
use jexec::{ExecConfig, ExecMode, Image};
use std::time::Instant;

/// Opcode mix of the interp_bench campaign workload (sampled 1/64).
fn workload_profile() {
    use mopfuzzer::{fuzz, FuzzConfig};
    let pool = jvmsim::JvmSpec::differential_pool();
    let programs: Vec<mjava::Program> = mopfuzzer::corpus::builtin()
        .iter()
        .take(16)
        .enumerate()
        .map(|(i, seed)| {
            let config = FuzzConfig {
                max_iterations: 20,
                rng_seed: i as u64,
                ..FuzzConfig::new(pool[i % pool.len()].clone())
            };
            fuzz(&seed.program, &config).final_mutant
        })
        .collect();
    jtelemetry::install(jtelemetry::Session::from_spec(jtelemetry::SessionSpec {
        manual: true,
        trace: false,
        profile: true,
    }));
    let config = ExecConfig {
        mode: ExecMode::Interp,
        ..ExecConfig::default()
    };
    for p in &programs {
        let _ = jexec::run_program(p, &config);
    }
    let snap = jtelemetry::take().unwrap().snapshot();
    let total: u64 = snap.opcodes.iter().map(|o| o.hits).sum();
    let mut rows: Vec<_> = snap.opcodes.iter().collect();
    rows.sort_by_key(|o| std::cmp::Reverse(o.hits));
    for o in rows.iter().take(20) {
        println!(
            "{:16} {:10} ({:.1}%)",
            o.name,
            o.hits,
            100.0 * o.hits as f64 / total as f64
        );
    }
}

fn bench(name: &str, src: &str) {
    let image = Image::build(&mjava::parse(src).unwrap()).unwrap();
    for mode in [ExecMode::Interp, ExecMode::Threaded] {
        let config = ExecConfig {
            mode,
            ..ExecConfig::default()
        };
        // warm
        let o = jexec::run(&image, &config);
        let steps = o.stats.steps;
        let reps = (40_000_000 / steps.max(1)).max(1);
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(jexec::run(&image, &config));
        }
        let s = start.elapsed().as_secs_f64();
        println!(
            "{name:14} {mode:?}: {:.1} ns/step ({:.2e} steps/s, {steps} steps)",
            s * 1e9 / (reps * steps) as f64,
            (reps * steps) as f64 / s
        );
    }
}

fn main() {
    if std::env::args().any(|a| a == "--workload-profile") {
        workload_profile();
        return;
    }
    bench(
        "empty-loop",
        "class T { static void main() { for (int i = 0; i < 500000; i++) { } System.out.println(0); } }",
    );
    bench(
        "arith-local",
        "class T { static void main() { int s = 0; for (int i = 0; i < 200000; i++) { s = s + i % 5; } System.out.println(s); } }",
    );
    bench(
        "arith-static",
        "class T { static int s; static void main() { for (int i = 0; i < 200000; i++) { s = s + i % 5; } System.out.println(s); } }",
    );
    bench(
        "calls",
        "class T { static int f(int i) { return i * 2; } static void main() { int s = 0; for (int i = 0; i < 100000; i++) { s = s + T.f(i); } System.out.println(s); } }",
    );
    bench(
        "fields",
        "class T { int f; static void main() { T t = new T(); for (int i = 0; i < 100000; i++) { t.f = t.f + i; } System.out.println(t.f); } }",
    );
    bench(
        "vcalls",
        "class T { int g(int i) { return i + 1; } static void main() { T t = new T(); int s = 0; for (int i = 0; i < 100000; i++) { s = s + t.g(i); } System.out.println(s); } }",
    );
    bench(
        "boxing",
        "class T { static void main() { int s = 0; for (int i = 0; i < 100000; i++) { Integer b = Integer.valueOf(i); s = s + b.intValue(); } System.out.println(s); } }",
    );
    // Register-file / untagged-representation shapes: long arithmetic
    // exercises the 64-bit slot encoding's non-fast paths, `leaf-inline`
    // is a tiny static call the lowerer folds into the caller's frame
    // window, and `deep-calls` stresses frame entry/exit — (base, floor,
    // sp) bumps into the shared arena instead of per-frame vectors.
    bench(
        "long-arith",
        "class T { static void main() { long s = 4294967296L; for (int i = 0; i < 200000; i++) { s = s + (s % 7L) - 3L; } System.out.println(s); } }",
    );
    bench(
        "leaf-inline",
        "class T { static int f(int a, int b) { return a * b + 1; } static void main() { int s = 0; for (int i = 0; i < 100000; i++) { s = s + T.f(i, 3); } System.out.println(s); } }",
    );
    bench(
        "deep-calls",
        "class T { static int down(int n, int acc) { if (n < 1) { return acc; } return T.down(n - 1, acc + n); } static void main() { int s = 0; for (int i = 0; i < 2000; i++) { s = s + T.down(120, 0); } System.out.println(s); } }",
    );
}
