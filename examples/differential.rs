//! Differential testing across the JVM pool (paper §3.5): run one program
//! on every HotSpur LTS/mainline version and every J9 version, compare
//! observable behaviour, and report miscompilations.
//!
//! Run with: `cargo run --release --example differential`

use jvmsim::{JvmSpec, RunOptions};
use mopfuzzer::{differential, fuzz, FuzzConfig, OracleVerdict, Variant};

fn main() {
    let pool = JvmSpec::differential_pool();
    println!("differential pool:");
    for spec in &pool {
        println!("  {}", spec.name());
    }

    // A healthy program: every JVM must agree.
    let healthy = mjava::samples::boxing_mix().program;
    let result = differential(&healthy, &pool, &RunOptions::fuzzing());
    println!(
        "\nhealthy seed verdict: {:?}",
        discriminant_name(&result.verdict)
    );

    // Hunt for a miscompilation: fuzz and differential-test final mutants.
    let seeds = mopfuzzer::corpus::builtin();
    for round in 0u64..300 {
        let seed = &seeds[round as usize % seeds.len()];
        let config = FuzzConfig {
            max_iterations: 50,
            variant: Variant::Full,
            guidance: pool[round as usize % pool.len()].clone(),
            rng_seed: 7_000 + round,
            weight_scheme: Default::default(),
            banned: Vec::new(),
            fault: None,
        };
        let outcome = fuzz(&seed.program, &config);
        if outcome.crash.is_some() {
            continue; // crashes are the other oracle's business today
        }
        let diff = differential(&outcome.final_mutant, &pool, &RunOptions::fuzzing());
        if let OracleVerdict::Miscompile { outputs, culprits } = diff.verdict {
            println!(
                "\nmiscompilation detected after fuzzing seed {}:",
                seed.name
            );
            for (jvm, obs) in &outputs {
                println!("  {jvm:16} → {:?}", truncated(obs));
            }
            println!("ground-truth culprit bug(s): {culprits:?}");
            return;
        }
    }
    println!("\nno miscompilation found in this search window — rerun with more rounds");
}

fn discriminant_name(v: &OracleVerdict) -> &'static str {
    match v {
        OracleVerdict::Pass => "Pass",
        OracleVerdict::Crash { .. } => "Crash",
        OracleVerdict::Miscompile { .. } => "Miscompile",
        OracleVerdict::Inconclusive(_) => "Inconclusive",
    }
}

fn truncated(lines: &[String]) -> Vec<String> {
    lines.iter().take(3).cloned().collect()
}
