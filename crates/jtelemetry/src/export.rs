//! Export surfaces for a [`MetricsSnapshot`]: JSONL lines for machine
//! consumption, a Prometheus-style text page, a human end-of-campaign
//! report, and a one-line live status for TTYs.
//!
//! Everything is hand-rolled text generation (no serde); the companion
//! [`crate::schema`] module re-parses and validates both machine formats
//! so CI catches drift between writer and reader.

use crate::metrics::MetricsSnapshot;
use crate::trace::TraceEvent;
use crate::Session;
use std::collections::HashMap;

/// Prefix shared by every Prometheus metric family we emit.
pub const PROM_PREFIX: &str = "mop_";

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` as a valid JSON number (non-finite values become 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Renders one newline-free JSONL snapshot line:
///
/// ```json
/// {"type":"telemetry","version":1,"elapsed_nanos":..,"counters":{..},
///  "gauges":{..},"spans":[..],"mutators":[..]}
/// ```
pub fn jsonl_line(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"type\":\"telemetry\",\"version\":");
    out.push_str(&snap.schema_version.to_string());
    out.push_str(",\"elapsed_nanos\":");
    out.push_str(&snap.elapsed_nanos.to_string());
    out.push_str(",\"counters\":{");
    for (i, (key, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json(key, &mut out);
        out.push(':');
        out.push_str(&value.to_string());
    }
    out.push_str("},\"gauges\":{");
    for (i, (key, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_json(key, &mut out);
        out.push(':');
        out.push_str(&json_f64(*value));
    }
    out.push_str("},\"spans\":[");
    for (i, span) in snap.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        escape_json(&span.name, &mut out);
        out.push_str(&format!(
            ",\"count\":{},\"total_nanos\":{},\"self_nanos\":{},\"max_nanos\":{},\"buckets\":[",
            span.count, span.total_nanos, span.self_nanos, span.max_nanos
        ));
        for (j, b) in span.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&b.to_string());
        }
        out.push_str("]}");
    }
    out.push_str("],\"mutators\":[");
    for (i, m) in snap.mutators.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        escape_json(&m.name, &mut out);
        out.push_str(&format!(
            ",\"applies\":{},\"accepted\":{},\"rejected\":{},\"yield_sum\":{}",
            m.applies,
            m.accepted,
            m.rejected,
            json_f64(m.yield_sum)
        ));
        out.push('}');
    }
    out.push_str("],\"opcodes\":[");
    for (i, o) in snap.opcodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        escape_json(&o.name, &mut out);
        out.push_str(&format!(",\"hits\":{},\"nanos\":{}}}", o.hits, o.nanos));
    }
    out.push_str("]}");
    out
}

fn prom_escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders the full Prometheus-style text page: one `# TYPE` line per
/// family, `mop_`-prefixed names, span/mutator stats as labelled series.
pub fn prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "# TYPE {p}schema_version gauge\n{p}schema_version {}\n",
        snap.schema_version,
        p = PROM_PREFIX
    ));
    out.push_str(&format!(
        "# TYPE {p}elapsed_nanos gauge\n{p}elapsed_nanos {}\n",
        snap.elapsed_nanos,
        p = PROM_PREFIX
    ));
    for (key, value) in &snap.counters {
        out.push_str(&format!(
            "# TYPE {p}{key} counter\n{p}{key} {value}\n",
            p = PROM_PREFIX
        ));
    }
    for (key, value) in &snap.gauges {
        out.push_str(&format!(
            "# TYPE {p}{key} gauge\n{p}{key} {}\n",
            json_f64(*value),
            p = PROM_PREFIX
        ));
    }
    // Span timings export as one native Prometheus histogram family. The
    // log2 accumulator bucket `i` holds durations with `i` significant
    // bits, i.e. integers in `[2^(i-1), 2^i)`, so its inclusive upper
    // bound is `2^i - 1` — that is the `le` value, and the series are
    // cumulative as the exposition format requires. The final accumulator
    // bucket is a clamp (everything with more significant bits than the
    // histogram tracks), so it has no finite `le` and surfaces only in
    // `+Inf`.
    out.push_str(&format!(
        "# TYPE {PROM_PREFIX}span_duration_nanos histogram\n"
    ));
    for span in &snap.spans {
        let label = prom_escape_label(&span.name);
        let mut cumulative = 0u64;
        for (i, b) in span.buckets[..span.buckets.len() - 1].iter().enumerate() {
            cumulative += b;
            let le = (1u64 << i) - 1;
            out.push_str(&format!(
                "{PROM_PREFIX}span_duration_nanos_bucket{{span=\"{label}\",le=\"{le}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "{PROM_PREFIX}span_duration_nanos_bucket{{span=\"{label}\",le=\"+Inf\"}} {}\n",
            span.count
        ));
        out.push_str(&format!(
            "{PROM_PREFIX}span_duration_nanos_sum{{span=\"{label}\"}} {}\n",
            span.total_nanos
        ));
        out.push_str(&format!(
            "{PROM_PREFIX}span_duration_nanos_count{{span=\"{label}\"}} {}\n",
            span.count
        ));
    }
    out.push_str(&format!("# TYPE {PROM_PREFIX}span_max_nanos gauge\n"));
    for span in &snap.spans {
        out.push_str(&format!(
            "{PROM_PREFIX}span_max_nanos{{span=\"{}\"}} {}\n",
            prom_escape_label(&span.name),
            span.max_nanos
        ));
    }
    out.push_str(&format!("# TYPE {PROM_PREFIX}span_self_nanos counter\n"));
    for span in &snap.spans {
        out.push_str(&format!(
            "{PROM_PREFIX}span_self_nanos{{span=\"{}\"}} {}\n",
            prom_escape_label(&span.name),
            span.self_nanos
        ));
    }
    out.push_str(&format!("# TYPE {PROM_PREFIX}opcode_hits counter\n"));
    out.push_str(&format!("# TYPE {PROM_PREFIX}opcode_nanos counter\n"));
    for o in &snap.opcodes {
        out.push_str(&format!(
            "{PROM_PREFIX}opcode_hits{{opcode=\"{}\"}} {}\n",
            prom_escape_label(&o.name),
            o.hits
        ));
        out.push_str(&format!(
            "{PROM_PREFIX}opcode_nanos{{opcode=\"{}\"}} {}\n",
            prom_escape_label(&o.name),
            o.nanos
        ));
    }
    for family in ["mutator_applies", "mutator_accepted", "mutator_rejected"] {
        out.push_str(&format!("# TYPE {PROM_PREFIX}{family} counter\n"));
        for m in &snap.mutators {
            let value = match family {
                "mutator_applies" => m.applies,
                "mutator_accepted" => m.accepted,
                _ => m.rejected,
            };
            out.push_str(&format!(
                "{PROM_PREFIX}{family}{{mutator=\"{}\"}} {value}\n",
                prom_escape_label(&m.name)
            ));
        }
    }
    out.push_str(&format!("# TYPE {PROM_PREFIX}mutator_yield_sum gauge\n"));
    for m in &snap.mutators {
        out.push_str(&format!(
            "{PROM_PREFIX}mutator_yield_sum{{mutator=\"{}\"}} {}\n",
            prom_escape_label(&m.name),
            json_f64(m.yield_sum)
        ));
    }
    out
}

/// Renders one Prometheus page for a fleet of concurrent sessions: the
/// full aggregate page (every family declared and sampled unlabelled, so
/// the strict checker's expected-family sweep passes) followed by
/// per-tenant counter/gauge samples carrying a `campaign` label. Span
/// histograms, mutator and opcode tables are exported aggregate-only —
/// per-campaign drill-down belongs in each campaign's own
/// `--metrics-out`, not on the shared scrape page.
pub fn prometheus_fleet(tenants: &[(String, MetricsSnapshot)]) -> String {
    let mut agg = MetricsSnapshot::empty();
    for (_, snap) in tenants {
        agg.merge(snap);
    }
    let mut out = prometheus(&agg);
    for (id, snap) in tenants {
        let label = prom_escape_label(id);
        out.push_str(&format!(
            "{PROM_PREFIX}elapsed_nanos{{campaign=\"{label}\"}} {}\n",
            snap.elapsed_nanos
        ));
        for (key, value) in &snap.counters {
            out.push_str(&format!(
                "{PROM_PREFIX}{key}{{campaign=\"{label}\"}} {value}\n"
            ));
        }
        for (key, value) in &snap.gauges {
            out.push_str(&format!(
                "{PROM_PREFIX}{key}{{campaign=\"{label}\"}} {}\n",
                json_f64(*value)
            ));
        }
    }
    out
}

/// Reconstructs absolute open timestamps (in steps) for round-lane
/// events: roots are laid end to end in stream (= merge) order, children
/// sit at `parent + rel_steps`. Returns per-event absolute opens,
/// indexed like `events`.
fn absolute_opens(events: &[TraceEvent]) -> Vec<u64> {
    let by_id: HashMap<u64, usize> = events.iter().enumerate().map(|(i, e)| (e.id, i)).collect();
    let mut root_offsets: HashMap<u64, u64> = HashMap::new();
    let mut cursor = 0u64;
    for event in events {
        if event.parent == 0 {
            root_offsets.insert(event.id, cursor);
            // A one-step gap keeps adjacent zero-duration roots from
            // overlapping in trace viewers.
            cursor = cursor.saturating_add(event.dur_steps).saturating_add(1);
        }
    }
    fn resolve(
        idx: usize,
        events: &[TraceEvent],
        by_id: &HashMap<u64, usize>,
        roots: &HashMap<u64, u64>,
        memo: &mut HashMap<u64, u64>,
    ) -> u64 {
        let event = &events[idx];
        if let Some(abs) = memo.get(&event.id) {
            return *abs;
        }
        let abs = match by_id.get(&event.parent) {
            _ if event.parent == 0 => roots.get(&event.id).copied().unwrap_or(0),
            Some(pidx) => {
                resolve(*pidx, events, by_id, roots, memo).saturating_add(event.rel_steps)
            }
            // A dangling parent (should not happen for fully closed
            // traces) degrades to an absolute timestamp.
            None => event.rel_steps,
        };
        memo.insert(event.id, abs);
        abs
    }
    let mut memo = HashMap::new();
    (0..events.len())
        .map(|i| resolve(i, events, &by_id, &root_offsets, &mut memo))
        .collect()
}

fn trace_event_json(event: &TraceEvent, ts: u64, dur: u64, pid: u64, out: &mut String) {
    out.push_str("{\"name\":");
    escape_json(event.name, out);
    if event.instant {
        out.push_str(&format!(
            ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\"tid\":0,\"args\":{{"
        ));
    } else {
        out.push_str(&format!(
            ",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{pid},\"tid\":0,\"args\":{{"
        ));
    }
    out.push_str(&format!(
        "\"id\":\"{}\",\"parent\":\"{}\",\"dur_steps\":\"{}\",\"wall_ns\":\"{}\"",
        event.id, event.parent, event.dur_steps, event.dur_nanos
    ));
    for (key, value) in &event.args {
        out.push(',');
        escape_json(key, out);
        out.push(':');
        escape_json(value, out);
    }
    out.push_str("}}");
}

/// Renders the session's trace buffer as Chrome trace-event JSON
/// (loadable in Perfetto / `chrome://tracing`), or `None` when the
/// session does not trace.
///
/// * Round-lane events land on `pid` 0 with timestamps in simulated
///   steps (1 step rendered as 1µs) — deterministic at any worker
///   count. Wall nanoseconds ride along as the `wall_ns` arg.
/// * Scheduler-lane events land on `pid` 1 with wall-clock timestamps
///   (µs since session start). The lane is empty under a manual clock.
/// * Parent links are carried in `args` (`id`/`parent`) because the
///   Chrome format has no native span-parent field.
///
/// `meta` pairs are appended to `otherData` verbatim.
pub fn trace_json(session: &Session, meta: &[(&str, String)]) -> Option<String> {
    let buf = session.trace_buf()?;
    let opens = absolute_opens(&buf.events);
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (event, abs) in buf.events.iter().zip(opens.iter()) {
        if !first {
            out.push(',');
        }
        first = false;
        trace_event_json(event, *abs, event.dur_steps, 0, &mut out);
    }
    for event in &buf.sched {
        if !first {
            out.push(',');
        }
        first = false;
        // Scheduler events store their absolute open wall time in
        // `rel_steps` (nanoseconds); render both ts and dur as µs.
        trace_event_json(
            event,
            event.rel_steps / 1_000,
            event.dur_nanos / 1_000,
            1,
            &mut out,
        );
    }
    out.push_str("],\"otherData\":{");
    out.push_str(&format!(
        "\"schema_version\":\"{}\",\"clock\":\"{}\"",
        crate::SCHEMA_VERSION,
        if session.clock_is_manual() {
            "manual"
        } else {
            "wall"
        }
    ));
    for (key, value) in meta {
        out.push(',');
        escape_json(key, &mut out);
        out.push(':');
        escape_json(value, &mut out);
    }
    out.push_str("}}");
    Some(out)
}

fn fmt_duration(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

/// Renders the human-readable end-of-campaign report: headline counters,
/// top spans by total time, top mutators by yield, waste accounting.
pub fn human_report(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("== telemetry report ==\n");
    out.push_str(&format!(
        "elapsed {}  |  {:.2} rounds/s\n",
        fmt_duration(snap.elapsed_nanos),
        snap.rounds_per_sec()
    ));
    out.push_str(&format!(
        "rounds: {} done / {} total ({} ok, {} errored, {} skipped, {} retried attempts)\n",
        snap.gauge("rounds_done"),
        snap.gauge("rounds_total"),
        snap.counter("rounds_ok"),
        snap.counter("rounds_errored"),
        snap.counter("rounds_skipped"),
        snap.counter("retried_attempts"),
    ));
    out.push_str(&format!(
        "work: {} productive steps, {} wasted steps ({} productive execs, {} wasted execs)\n",
        snap.gauge("productive_steps"),
        snap.gauge("wasted_steps"),
        snap.gauge("productive_execs"),
        snap.gauge("wasted_execs"),
    ));
    out.push_str(&format!(
        "vm: {} executions ({} crashes, {} build failures, {} miscompiles)  interp: {} runs / {} steps\n",
        snap.counter("vm_executions"),
        snap.counter("vm_crashes"),
        snap.counter("vm_build_failures"),
        snap.counter("vm_miscompiles"),
        snap.counter("interp_runs"),
        snap.counter("interp_steps"),
    ));
    out.push_str(&format!(
        "oracle: {} pass, {} crash, {} miscompile, {} inconclusive  |  bugs found: {}\n",
        snap.counter("oracle_pass"),
        snap.counter("oracle_crash"),
        snap.counter("oracle_miscompile"),
        snap.counter("oracle_inconclusive"),
        snap.gauge("bugs_found"),
    ));

    let mut spans = snap.spans.clone();
    spans.sort_by(|a, b| b.total_nanos.cmp(&a.total_nanos).then(a.name.cmp(&b.name)));
    out.push_str("top phases by time:\n");
    if spans.is_empty() {
        out.push_str("  (no spans recorded)\n");
    }
    for span in spans.iter().take(8) {
        let mean = span.total_nanos.checked_div(span.count).unwrap_or(0);
        out.push_str(&format!(
            "  {:<20} {:>10} x{:<8} mean {:>9}  max {:>9}\n",
            span.name,
            fmt_duration(span.total_nanos),
            span.count,
            fmt_duration(mean),
            fmt_duration(span.max_nanos),
        ));
    }

    let mut mutators = snap.mutators.clone();
    mutators.sort_by(|a, b| {
        b.yield_sum
            .partial_cmp(&a.yield_sum)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.name.cmp(&b.name))
    });
    out.push_str("top mutators by yield:\n");
    if mutators.is_empty() {
        out.push_str("  (no mutator activity recorded)\n");
    }
    for m in mutators.iter().take(8) {
        out.push_str(&format!(
            "  {:<20} yield {:>8.2}  accepted {}/{} (rejected {})\n",
            m.name, m.yield_sum, m.accepted, m.applies, m.rejected
        ));
    }

    if !snap.opcodes.is_empty() {
        let mut opcodes = snap.opcodes.clone();
        opcodes.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(b.hits.cmp(&a.hits)));
        let total_hits: u64 = opcodes.iter().map(|o| o.hits).sum();
        out.push_str("top opcodes by sampled time:\n");
        for o in opcodes.iter().take(10) {
            let share = if total_hits > 0 {
                o.hits as f64 * 100.0 / total_hits as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:<16} {:>10} sampled  {:>12} hits ({share:.1}% of instructions)\n",
                o.name,
                fmt_duration(o.nanos),
                o.hits,
            ));
        }
    }
    out
}

/// Renders the single-line live status shown on a TTY (carriage-return
/// overwritten, no trailing newline).
pub fn status_line(snap: &MetricsSnapshot) -> String {
    format!(
        "[mop] round {}/{} | {:.1} r/s | corpus {} | bugs {} | quarantine {} | retries {}",
        snap.gauge("rounds_done") as u64,
        snap.gauge("rounds_total") as u64,
        snap.rounds_per_sec(),
        snap.gauge("corpus_size") as u64,
        snap.gauge("bugs_found") as u64,
        snap.gauge("quarantine_count") as u64,
        snap.counter("retried_attempts"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, FlightKind, Gauge, ManualClock, Session};

    fn sample_snapshot() -> MetricsSnapshot {
        let clock = ManualClock::new();
        crate::install(Session::with_clock(Box::new(clock.clone())));
        crate::count(Counter::VmExecutions, 40);
        crate::count(Counter::OraclePass, 19);
        crate::gauge(Gauge::RoundsDone, 20.0);
        crate::gauge(Gauge::RoundsTotal, 20.0);
        crate::gauge(Gauge::CorpusSize, 7.0);
        crate::mutator_outcome("Inlining", true, 3.5);
        crate::mutator_outcome("LoopPeel\"q\"", false, 0.0);
        {
            let _g = crate::span(FlightKind::Phase, "inline", "T::main");
            clock.advance(2_000);
        }
        clock.advance(1_000_000_000);
        crate::take().expect("session installed").snapshot()
    }

    #[test]
    fn jsonl_line_is_single_line_and_validates() {
        let line = jsonl_line(&sample_snapshot());
        assert!(!line.contains('\n'));
        crate::schema::validate_snapshot_line(&line).expect("line validates");
    }

    #[test]
    fn prometheus_page_validates_and_contains_families() {
        let page = prometheus(&sample_snapshot());
        crate::schema::validate_prometheus(&page).expect("page validates");
        assert!(page.contains("# TYPE mop_vm_executions counter"));
        assert!(page.contains("mop_vm_executions 40"));
        assert!(page.contains("# TYPE mop_span_duration_nanos histogram"));
        // 2000ns has 11 significant bits → first non-empty cumulative
        // bucket is le = 2^11 - 1.
        assert!(page.contains("mop_span_duration_nanos_bucket{span=\"inline\",le=\"1023\"} 0"));
        assert!(page.contains("mop_span_duration_nanos_bucket{span=\"inline\",le=\"2047\"} 1"));
        assert!(page.contains("mop_span_duration_nanos_bucket{span=\"inline\",le=\"+Inf\"} 1"));
        assert!(page.contains("mop_span_duration_nanos_sum{span=\"inline\"} 2000"));
        assert!(page.contains("mop_span_duration_nanos_count{span=\"inline\"} 1"));
        assert!(!page.contains("mop_span_total_nanos"));
        assert!(page.contains("mop_span_max_nanos{span=\"inline\"} 2000"));
        assert!(page.contains("mop_mutator_applies{mutator=\"LoopPeel\\\"q\\\"\"} 1"));
    }

    #[test]
    fn fleet_page_validates_and_labels_each_campaign() {
        let a = sample_snapshot();
        let b = sample_snapshot();
        let page = prometheus_fleet(&[("c0001".to_string(), a), ("c0002".to_string(), b)]);
        crate::schema::validate_prometheus(&page).expect("fleet page validates");
        // Aggregate samples sum across tenants...
        assert!(page.contains("\nmop_vm_executions 80\n"), "{page}");
        // ...and each tenant keeps its own labelled series.
        assert!(page.contains("mop_vm_executions{campaign=\"c0001\"} 40"));
        assert!(page.contains("mop_vm_executions{campaign=\"c0002\"} 40"));
        assert!(page.contains("mop_rounds_done{campaign=\"c0002\"} 20"));
        assert!(page.contains("mop_elapsed_nanos{campaign=\"c0001\"}"));
    }

    #[test]
    fn fleet_page_with_no_tenants_still_validates() {
        let page = prometheus_fleet(&[]);
        crate::schema::validate_prometheus(&page).expect("empty fleet page validates");
        assert!(page.contains("\nmop_vm_executions 0\n"));
        assert!(!page.contains("campaign="));
    }

    #[test]
    fn human_report_names_top_phase_and_mutator() {
        let report = human_report(&sample_snapshot());
        assert!(report.contains("inline"));
        assert!(report.contains("Inlining"));
        assert!(report.contains("rounds: 20 done / 20 total"));
    }

    #[test]
    fn status_line_is_single_line() {
        let line = status_line(&sample_snapshot());
        assert!(!line.contains('\n'));
        assert!(line.contains("round 20/20"));
        assert!(line.contains("corpus 7"));
    }

    #[test]
    fn json_f64_handles_non_finite() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(2.5), "2.5");
    }

    #[test]
    fn profiled_snapshot_exports_opcodes_in_both_formats() {
        crate::install(Session::new().with_profile());
        crate::profile_opcode("Arith", 12, 3400);
        crate::profile_opcode("Load\"x\"", 7, 100);
        let snap = crate::take().unwrap().snapshot();
        let line = jsonl_line(&snap);
        crate::schema::validate_snapshot_line(&line).expect("line validates");
        assert!(line.contains("\"opcodes\":[{\"name\":\"Arith\",\"hits\":12,\"nanos\":3400}"));
        let page = prometheus(&snap);
        crate::schema::validate_prometheus(&page).expect("page validates");
        assert!(page.contains("mop_opcode_hits{opcode=\"Arith\"} 12"));
        assert!(page.contains("mop_opcode_nanos{opcode=\"Load\\\"x\\\"\"} 100"));
        let report = human_report(&snap);
        assert!(report.contains("top opcodes by sampled time:"));
        assert!(report.contains("Arith"));
    }

    #[test]
    fn trace_json_reconstructs_absolute_timestamps() {
        let clock = ManualClock::new();
        crate::install(Session::with_clock(Box::new(clock.clone())).with_trace());
        {
            let _round = crate::trace_span("round", || vec![("round", "0".to_string())]);
            crate::work::add(100, 1);
            {
                let _a = crate::trace_span("attempt", Vec::new);
                crate::work::add(50, 1);
            }
        }
        {
            let _round = crate::trace_span("round", || vec![("round", "1".to_string())]);
            crate::work::add(30, 1);
        }
        let session = crate::take().unwrap();
        let json = trace_json(&session, &[("jobs", "1".to_string())]).unwrap();
        crate::schema::validate_trace(&json).expect("trace validates");
        // Round 0 opens at ts 0 for 150 steps with the attempt at +100;
        // round 1 is laid after it (one-step gap).
        assert!(
            json.contains("\"ph\":\"X\",\"ts\":100,\"dur\":50"),
            "{json}"
        );
        assert!(json.contains("\"ts\":151,\"dur\":30"), "{json}");
        assert!(json.contains("\"clock\":\"manual\""));
        assert!(json.contains("\"jobs\":\"1\""));
    }

    #[test]
    fn trace_json_is_none_without_tracing() {
        crate::install(Session::new());
        let session = crate::take().unwrap();
        assert!(trace_json(&session, &[]).is_none());
    }

    #[test]
    fn trace_json_renders_sched_lane_on_its_own_pid() {
        crate::install(Session::new().with_trace());
        crate::trace_sched_instant("dispatch", || vec![("round", "0".to_string())]);
        let session = crate::take().unwrap();
        let json = trace_json(&session, &[]).unwrap();
        crate::schema::validate_trace(&json).expect("trace validates");
        assert!(json.contains("\"pid\":1"), "{json}");
        assert!(json.contains("\"clock\":\"wall\""));
    }
}
