//! `jtelemetry-check` — CI schema gate for telemetry exports.
//!
//! Usage:
//!
//! ```text
//! jtelemetry-check --jsonl metrics.jsonl --prom metrics.prom --trace trace.json
//! ```
//!
//! Validates every line of the JSONL snapshot stream, the Prometheus
//! text page, and the Chrome trace-event JSON against the current
//! schema, exiting non-zero (with the first offending line) on any
//! drift. Any flag may be given alone.

use std::process::ExitCode;

const USAGE: &str = "usage: jtelemetry-check [--jsonl FILE] [--prom FILE] [--trace FILE]";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut jsonl: Option<String> = None;
    let mut prom: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jsonl" => match args.next() {
                Some(path) => jsonl = Some(path),
                None => return usage(),
            },
            "--prom" => match args.next() {
                Some(path) => prom = Some(path),
                None => return usage(),
            },
            "--trace" => match args.next() {
                Some(path) => trace = Some(path),
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("jtelemetry-check: unknown argument '{other}'");
                return usage();
            }
        }
    }
    if jsonl.is_none() && prom.is_none() && trace.is_none() {
        return usage();
    }

    if let Some(path) = jsonl {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("jtelemetry-check: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut lines = 0usize;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            if let Err(e) = jtelemetry::schema::validate_snapshot_line(line) {
                eprintln!("jtelemetry-check: {path}:{}: {e}", i + 1);
                return ExitCode::FAILURE;
            }
            lines += 1;
        }
        if lines == 0 {
            eprintln!("jtelemetry-check: {path}: no snapshot lines found");
            return ExitCode::FAILURE;
        }
        println!("jtelemetry-check: {path}: {lines} snapshot line(s) OK");
    }

    if let Some(path) = prom {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("jtelemetry-check: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = jtelemetry::schema::validate_prometheus(&text) {
            eprintln!("jtelemetry-check: {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("jtelemetry-check: {path}: prometheus page OK");
    }

    if let Some(path) = trace {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("jtelemetry-check: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = jtelemetry::schema::validate_trace(&text) {
            eprintln!("jtelemetry-check: {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("jtelemetry-check: {path}: trace OK");
    }

    ExitCode::SUCCESS
}
