//! `jtelemetry-trace` — offline analysis of a `--trace-out` capture.
//!
//! Usage:
//!
//! ```text
//! jtelemetry-trace trace.json [--metrics metrics.jsonl] [--top N]
//! ```
//!
//! Reads the Chrome trace-event JSON written by `mopfuzzer --trace-out`
//! (validating it first) and prints:
//!
//! * the per-round critical path — how much of each round went to
//!   fuzzing vs the differential oracle vs supervisor overhead, in both
//!   simulated steps and wall nanoseconds;
//! * worker idle and speculation-waste attribution from the
//!   scheduler lane (wall-clock runs only — the lane is empty under a
//!   manual clock);
//! * the top-N hot opcodes, when a `--profile` metrics JSONL stream is
//!   supplied alongside.

use jtelemetry::schema::{parse_json, validate_trace, Json};
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "usage: jtelemetry-trace TRACE.json [--metrics FILE.jsonl] [--top N]";

struct Event {
    name: String,
    pid: u64,
    id: u64,
    parent: u64,
    dur_steps: u64,
    wall_ns: u64,
    instant: bool,
}

fn num(event: &Json, key: &str) -> u64 {
    match event.get(key) {
        Some(Json::Num(n)) => *n as u64,
        _ => 0,
    }
}

fn arg_u64(event: &Json, key: &str) -> u64 {
    match event.get("args").and_then(|a| a.get(key)) {
        Some(Json::Str(s)) => s.parse().unwrap_or(0),
        _ => 0,
    }
}

fn meta_str<'a>(other: &'a Json, key: &str) -> Option<&'a str> {
    match other.get(key) {
        Some(Json::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn fmt_wall(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

/// Sums `dur_steps`/`wall_ns` of the *direct* children of `id` grouped
/// by span name.
fn child_sums(events: &[Event], id: u64) -> BTreeMap<String, (u64, u64, u64)> {
    let mut out: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    for e in events {
        if e.pid == 0 && e.parent == id && !e.instant {
            let entry = out.entry(e.name.clone()).or_default();
            entry.0 += e.dur_steps;
            entry.1 += e.wall_ns;
            entry.2 += 1;
        }
    }
    out
}

fn report(trace_text: &str, metrics_text: Option<&str>, top: usize) -> Result<String, String> {
    validate_trace(trace_text)?;
    let root = parse_json(trace_text)?;
    let raw = match root.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        _ => return Err("no traceEvents".to_string()),
    };
    let other = root.get("otherData").cloned().unwrap_or(Json::Null);
    let events: Vec<Event> = raw
        .iter()
        .map(|e| Event {
            name: match e.get("name") {
                Some(Json::Str(s)) => s.clone(),
                _ => String::new(),
            },
            pid: num(e, "pid"),
            id: arg_u64(e, "id"),
            parent: arg_u64(e, "parent"),
            dur_steps: arg_u64(e, "dur_steps"),
            wall_ns: arg_u64(e, "wall_ns"),
            instant: matches!(e.get("ph"), Some(Json::Str(s)) if s == "i"),
        })
        .collect();

    let mut out = String::new();
    let clock = meta_str(&other, "clock").unwrap_or("?");
    let jobs: u64 = meta_str(&other, "jobs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    out.push_str(&format!(
        "== trace report ==\nevents: {} (clock: {clock}, jobs: {jobs}",
        events.len()
    ));
    if let Some(oj) = meta_str(&other, "oracle_jobs") {
        out.push_str(&format!(", oracle-jobs: {oj}"));
    }
    out.push_str(")\n");

    // --- Per-round critical path -------------------------------------
    let rounds: Vec<&Event> = events
        .iter()
        .filter(|e| e.pid == 0 && e.name == "round" && !e.instant)
        .collect();
    let mut total = (0u64, 0u64); // (steps, wall)
    let mut attempts = (0u64, 0u64, 0u64);
    let mut fuzz = (0u64, 0u64);
    let mut diff = (0u64, 0u64);
    for round in &rounds {
        total.0 += round.dur_steps;
        total.1 += round.wall_ns;
        for (name, (steps, wall, count)) in child_sums(&events, round.id) {
            if name == "attempt" {
                attempts = (attempts.0 + steps, attempts.1 + wall, attempts.2 + count);
                // Recurse one level: fuzz/differential live inside attempts.
                for e in &events {
                    if e.pid == 0 && e.parent == round.id && e.name == "attempt" {
                        for (n2, (s2, w2, _)) in child_sums(&events, e.id) {
                            match n2.as_str() {
                                "fuzz" => {
                                    fuzz.0 += s2;
                                    fuzz.1 += w2;
                                }
                                "differential" => {
                                    diff.0 += s2;
                                    diff.1 += w2;
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
    }
    out.push_str(&format!(
        "rounds: {} ({} attempts)\n",
        rounds.len(),
        attempts.2
    ));
    out.push_str("critical path (totals across rounds):\n");
    let overhead_steps = total.0.saturating_sub(attempts.0);
    let overhead_wall = total.1.saturating_sub(attempts.1);
    let other_steps = attempts.0.saturating_sub(fuzz.0 + diff.0);
    let other_wall = attempts.1.saturating_sub(fuzz.1 + diff.1);
    for (label, (steps, wall)) in [
        ("fuzz", fuzz),
        ("differential", diff),
        ("attempt other", (other_steps, other_wall)),
        ("round overhead", (overhead_steps, overhead_wall)),
    ] {
        out.push_str(&format!(
            "  {label:<16} {steps:>12} steps ({:>5.1}%)  {:>10} wall ({:>5.1}%)\n",
            pct(steps, total.0),
            fmt_wall(wall),
            pct(wall, total.1),
        ));
    }
    out.push_str(&format!(
        "  {:<16} {:>12} steps           {:>10} wall\n",
        "round total",
        total.0,
        fmt_wall(total.1)
    ));
    let vm_runs = events
        .iter()
        .filter(|e| e.pid == 0 && e.name == "vm_execution" && !e.instant)
        .count();
    let interp_wall: u64 = events
        .iter()
        .filter(|e| e.pid == 0 && e.name == "interp_run" && !e.instant)
        .map(|e| e.wall_ns)
        .sum();
    out.push_str(&format!(
        "vm executions: {vm_runs}  |  interpreter wall: {}\n",
        fmt_wall(interp_wall)
    ));

    // --- Scheduler lane: idle / speculation waste ---------------------
    let sched: Vec<&Event> = events.iter().filter(|e| e.pid == 1).collect();
    if sched.is_empty() {
        out.push_str(
            "scheduler lane: empty (manual clock or --jobs 1 — \
             no idle/speculation attribution)\n",
        );
    } else {
        let merge_wait: u64 = sched
            .iter()
            .filter(|e| e.name == "merge_wait")
            .map(|e| e.wall_ns)
            .sum();
        let dispatches = sched.iter().filter(|e| e.name == "dispatch").count();
        let wasted = sched
            .iter()
            .filter(|e| e.name == "speculation_wasted")
            .count();
        let campaign_wall: u64 = meta_str(&other, "campaign_wall_ns")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        out.push_str(&format!(
            "scheduler: {dispatches} dispatches, {wasted} speculative rounds wasted \
             ({:.1}% of dispatches)\n",
            pct(wasted as u64, dispatches as u64)
        ));
        out.push_str(&format!(
            "coordinator merge wait: {} ({:.1}% of campaign wall)\n",
            fmt_wall(merge_wait),
            pct(merge_wait, campaign_wall)
        ));
        if campaign_wall > 0 && jobs > 0 {
            let busy: u64 = rounds.iter().map(|r| r.wall_ns).sum();
            let capacity = campaign_wall.saturating_mul(jobs);
            let idle = 100.0 - pct(busy, capacity);
            out.push_str(&format!(
                "worker idle: {idle:.1}% (round work {} over {} x {jobs} workers)\n",
                fmt_wall(busy),
                fmt_wall(campaign_wall),
            ));
        }
    }

    // --- Hot opcodes (needs a --profile metrics stream) ---------------
    if let Some(text) = metrics_text {
        let last = text
            .lines()
            .rfind(|l| !l.trim().is_empty())
            .ok_or_else(|| "metrics stream has no snapshot lines".to_string())?;
        let snap = parse_json(last)?;
        let mut opcodes: Vec<(String, u64, u64)> = match snap.get("opcodes") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|o| {
                    (
                        match o.get("name") {
                            Some(Json::Str(s)) => s.clone(),
                            _ => String::new(),
                        },
                        num(o, "hits"),
                        num(o, "nanos"),
                    )
                })
                .collect(),
            _ => Vec::new(),
        };
        if opcodes.is_empty() {
            out.push_str("opcodes: none recorded (run with --profile)\n");
        } else {
            opcodes.sort_by(|a, b| b.2.cmp(&a.2).then(b.1.cmp(&a.1)));
            let total_hits: u64 = opcodes.iter().map(|o| o.1).sum();
            let total_nanos: u64 = opcodes.iter().map(|o| o.2).sum();
            out.push_str(&format!("top {top} opcodes by sampled time:\n"));
            for (name, hits, nanos) in opcodes.iter().take(top) {
                out.push_str(&format!(
                    "  {name:<16} {:>10} ({:>5.1}%)  {hits:>12} hits ({:>5.1}%)\n",
                    fmt_wall(*nanos),
                    pct(*nanos, total_nanos),
                    pct(*hits, total_hits),
                ));
            }
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut top = 10usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics" => match args.next() {
                Some(path) => metrics_path = Some(path),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--top" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => top = n,
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if trace_path.is_none() && !other.starts_with('-') => {
                trace_path = Some(other.to_string())
            }
            other => {
                eprintln!("jtelemetry-trace: unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(trace_path) = trace_path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let trace_text = match std::fs::read_to_string(&trace_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("jtelemetry-trace: cannot read {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let metrics_text = match &metrics_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => Some(text),
            Err(e) => {
                eprintln!("jtelemetry-trace: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    match report(&trace_text, metrics_text.as_deref(), top) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jtelemetry-trace: {trace_path}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtelemetry::Session;

    #[test]
    fn report_summarizes_a_real_trace() {
        jtelemetry::install(Session::new().with_trace().with_profile());
        {
            let _round = jtelemetry::trace_span("round", || vec![("round", "0".to_string())]);
            let _attempt = jtelemetry::trace_span("attempt", Vec::new);
            {
                let _fuzz = jtelemetry::trace_span("fuzz", Vec::new);
                jtelemetry::work::add(600, 6);
            }
            let _diff = jtelemetry::trace_span("differential", Vec::new);
            jtelemetry::work::add(400, 8);
        }
        jtelemetry::profile_opcode("Arith", 500, 900);
        jtelemetry::profile_opcode("Load", 100, 100);
        let session = jtelemetry::take().unwrap();
        let trace = jtelemetry::export::trace_json(&session, &[("jobs", "1".to_string())]).unwrap();
        let metrics = jtelemetry::export::jsonl_line(&session.snapshot());

        let text = report(&trace, Some(&metrics), 10).expect("report builds");
        assert!(text.contains("rounds: 1 (1 attempts)"), "{text}");
        assert!(text.contains("fuzz"), "{text}");
        assert!(text.contains("600"), "{text}");
        assert!(text.contains("differential"), "{text}");
        assert!(text.contains("top 10 opcodes"), "{text}");
        assert!(text.contains("Arith"), "{text}");
        assert!(text.contains("scheduler lane: empty"), "{text}");
    }

    #[test]
    fn report_rejects_invalid_trace() {
        assert!(report("{}", None, 10).is_err());
    }
}
