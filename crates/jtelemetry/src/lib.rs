//! # jtelemetry — observability for the whole fuzzing stack
//!
//! A hand-rolled (dependency-free) span/counter library threaded through
//! every layer of the reproduction:
//!
//! * [`Counter`]s and [`Gauge`]s — interpreter/compile counters from
//!   `jexec`, execution/verdict counters from `jvmsim` and the oracles,
//!   campaign-level gauges;
//! * [`span`]s — per-phase timing histograms for `jopt`'s optimizer
//!   phases (and VM executions), timed by a [`Clock`] that tests replace
//!   with a [`ManualClock`] for deterministic histograms;
//! * a [`FlightRecorder`] — a bounded ring buffer of the most recent
//!   events, dumped by the campaign supervisor into the journal when a
//!   round faults, so a quarantined round is diagnosable after the fact;
//! * exporters — JSONL snapshots, a Prometheus-style text format, a
//!   human-readable end-of-campaign report, and a one-line TTY status
//!   (see [`export`] and [`MetricsSnapshot`]).
//!
//! ## Sessions and overhead
//!
//! All state lives in a **thread-local [`Session`]**. Instrumentation
//! call sites first read a thread-local `Cell<bool>`; with no session
//! installed (the default) every hook is a branch on that cell and
//! nothing else — campaigns without telemetry pay effectively nothing.
//! Per-thread state also keeps concurrent campaigns (tests run many in
//! parallel) perfectly isolated and deterministic.
//!
//! The one exception is the [`work`] meter: two plain `Cell<u64>`
//! counters of simulated work (interpreter steps, JVM executions) that
//! are *always* on, because the campaign supervisor uses their deltas to
//! split productive from wasted (retried) work even when an attempt dies
//! by panic. One `Cell` add per completed VM execution is noise.
//!
//! ```
//! use jtelemetry::{Counter, ManualClock, Session};
//!
//! let clock = ManualClock::new();
//! jtelemetry::install(Session::with_clock(Box::new(clock.clone())));
//! jtelemetry::count(Counter::VmExecutions, 2);
//! {
//!     let _span = jtelemetry::span(jtelemetry::FlightKind::Phase, "inline", "T::main");
//!     clock.advance(1_000);
//! }
//! let snap = jtelemetry::take().unwrap().snapshot();
//! assert_eq!(snap.counter("vm_executions"), 2);
//! assert_eq!(snap.spans[0].total_nanos, 1_000);
//! ```

pub mod cancel;
pub mod clock;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod schema;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use metrics::{
    Counter, Gauge, MetricsSnapshot, MutatorStat, SpanStat, HIST_BUCKETS, SCHEMA_VERSION,
};
pub use recorder::{FlightEvent, FlightKind, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};

use std::cell::{Cell, RefCell};

/// One thread's telemetry accumulator. Install with [`install`], retrieve
/// (for final export) with [`take`].
pub struct Session {
    clock: Box<dyn Clock>,
    started_nanos: u64,
    counters: [u64; Counter::ALL.len()],
    gauges: [f64; Gauge::ALL.len()],
    spans: Vec<SpanStat>,
    mutators: Vec<MutatorStat>,
    recorder: FlightRecorder,
}

impl Session {
    /// A session timed by the host monotonic clock.
    pub fn new() -> Session {
        Session::with_clock(Box::new(MonotonicClock::new()))
    }

    /// A session with an explicit clock (tests pass a [`ManualClock`]).
    pub fn with_clock(clock: Box<dyn Clock>) -> Session {
        let started_nanos = clock.now_nanos();
        Session {
            clock,
            started_nanos,
            counters: [0; Counter::ALL.len()],
            gauges: [0.0; Gauge::ALL.len()],
            spans: Vec::new(),
            mutators: Vec::new(),
            recorder: FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY),
        }
    }

    /// Overrides the flight-recorder capacity.
    pub fn with_flight_capacity(mut self, capacity: usize) -> Session {
        self.recorder = FlightRecorder::new(capacity);
        self
    }

    fn span_stat(&mut self, name: &str) -> &mut SpanStat {
        if let Some(i) = self.spans.iter().position(|s| s.name == name) {
            return &mut self.spans[i];
        }
        self.spans.push(SpanStat::new(name));
        self.spans.last_mut().expect("just pushed")
    }

    fn mutator_stat(&mut self, name: &str) -> &mut MutatorStat {
        if let Some(i) = self.mutators.iter().position(|m| m.name == name) {
            return &mut self.mutators[i];
        }
        self.mutators.push(MutatorStat::new(name));
        self.mutators.last_mut().expect("just pushed")
    }

    /// Folds another session's snapshot into this one: counters and
    /// per-mutator stats are summed, span histograms merged element-wise
    /// (counts/totals/buckets summed, max maximized). Gauges and the
    /// flight recorder are untouched — both are point-in-time state owned
    /// by whoever drives the surrounding context. The parallel campaign
    /// engine uses this to aggregate per-round worker sessions into the
    /// coordinator session before `--metrics-out` flushes.
    pub fn absorb(&mut self, snap: &MetricsSnapshot) {
        for (key, value) in &snap.counters {
            if let Some(i) = Counter::ALL.iter().position(|c| c.key() == *key) {
                self.counters[i] += value;
            }
        }
        for span in &snap.spans {
            let stat = self.span_stat(&span.name);
            stat.count += span.count;
            stat.total_nanos = stat.total_nanos.saturating_add(span.total_nanos);
            stat.max_nanos = stat.max_nanos.max(span.max_nanos);
            for (bucket, n) in stat.buckets.iter_mut().zip(span.buckets.iter()) {
                *bucket += n;
            }
        }
        for m in &snap.mutators {
            let stat = self.mutator_stat(&m.name);
            stat.applies += m.applies;
            stat.accepted += m.accepted;
            stat.rejected += m.rejected;
            stat.yield_sum += m.yield_sum;
        }
    }

    /// Freezes the session into an exportable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            elapsed_nanos: self.clock.now_nanos().saturating_sub(self.started_nanos),
            counters: Counter::ALL
                .iter()
                .enumerate()
                .map(|(i, c)| (c.key(), self.counters[i]))
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .enumerate()
                .map(|(i, g)| (g.key(), self.gauges[i]))
                .collect(),
            spans: self.spans.clone(),
            mutators: self.mutators.clone(),
        }
    }
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static SESSION: RefCell<Option<Session>> = const { RefCell::new(None) };
}

/// Installs a session on this thread, enabling all instrumentation hooks.
/// Replaces (and drops) any previously installed session.
pub fn install(session: Session) {
    SESSION.with(|s| *s.borrow_mut() = Some(session));
    ENABLED.with(|e| e.set(true));
}

/// Removes and returns this thread's session, disabling instrumentation.
pub fn take() -> Option<Session> {
    ENABLED.with(|e| e.set(false));
    SESSION.with(|s| s.borrow_mut().take())
}

/// True when a session is installed on this thread.
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

fn with_session(f: impl FnOnce(&mut Session)) {
    if !enabled() {
        return;
    }
    SESSION.with(|s| {
        if let Some(session) = s.borrow_mut().as_mut() {
            f(session);
        }
    });
}

/// Adds `n` to a counter.
pub fn count(counter: Counter, n: u64) {
    with_session(|s| {
        let i = Counter::ALL
            .iter()
            .position(|c| *c == counter)
            .expect("counter listed in ALL");
        s.counters[i] += n;
    });
}

/// Sets a gauge.
pub fn gauge(gauge: Gauge, value: f64) {
    with_session(|s| {
        let i = Gauge::ALL
            .iter()
            .position(|g| *g == gauge)
            .expect("gauge listed in ALL");
        s.gauges[i] = value;
    });
}

/// Records one accept/reject outcome for a mutator. `delta` is the
/// behaviour increment of accepted children (ignored for rejects).
pub fn mutator_outcome(name: &str, accepted: bool, delta: f64) {
    with_session(|s| {
        let stat = s.mutator_stat(name);
        stat.applies += 1;
        if accepted {
            stat.accepted += 1;
            stat.yield_sum += delta;
        } else {
            stat.rejected += 1;
        }
    });
}

/// Appends one flight-recorder event (timestamped in simulated steps).
pub fn flight(kind: FlightKind, label: impl Into<String>, detail: impl Into<String>) {
    if !enabled() {
        return;
    }
    let now = work::totals().0;
    with_session(|s| s.recorder.push(now, kind, label.into(), detail.into()));
}

/// Clears the flight recorder and re-bases its timestamps — the campaign
/// supervisor calls this at the start of every round attempt.
pub fn flight_reset() {
    if !enabled() {
        return;
    }
    let now = work::totals().0;
    with_session(|s| s.recorder.reset(now));
}

/// The current flight-recorder contents (empty when disabled).
pub fn flight_snapshot() -> Vec<FlightEvent> {
    let mut out = Vec::new();
    with_session(|s| out = s.recorder.snapshot());
    out
}

/// Folds `snap` into this thread's session (no-op when none is
/// installed). See [`Session::absorb`].
pub fn absorb(snap: &MetricsSnapshot) {
    with_session(|s| s.absorb(snap));
}

/// A snapshot of this thread's session, if one is installed.
pub fn snapshot() -> Option<MetricsSnapshot> {
    let mut out = None;
    with_session(|s| out = Some(s.snapshot()));
    out
}

/// An RAII span: records a flight event on entry and a duration into the
/// named timing histogram on drop (including drops during panic unwind).
pub struct SpanGuard {
    name: &'static str,
    start_nanos: u64,
    live: bool,
}

/// Opens a span. Inert (a single branch) when telemetry is disabled.
pub fn span(kind: FlightKind, name: &'static str, detail: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            start_nanos: 0,
            live: false,
        };
    }
    let now_steps = work::totals().0;
    let mut start_nanos = 0;
    with_session(|s| {
        s.recorder
            .push(now_steps, kind, name.to_string(), detail.to_string());
        start_nanos = s.clock.now_nanos();
    });
    SpanGuard {
        name,
        start_nanos,
        live: true,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        with_session(|s| {
            let elapsed = s.clock.now_nanos().saturating_sub(self.start_nanos);
            s.span_stat(self.name).record(elapsed);
        });
    }
}

/// The always-on simulated-work meter: cumulative interpreter steps and
/// JVM executions completed on this thread. Monotonic, never reset —
/// consumers take deltas. Deterministic because it advances only on
/// completed executions (a function of the campaign configuration), never
/// on wall-clock time.
pub mod work {
    use std::cell::Cell;

    thread_local! {
        static STEPS: Cell<u64> = const { Cell::new(0) };
        static EXECS: Cell<u64> = const { Cell::new(0) };
    }

    /// Credits one completed execution's work.
    pub fn add(steps: u64, execs: u64) {
        STEPS.with(|s| s.set(s.get() + steps));
        EXECS.with(|e| e.set(e.get() + execs));
    }

    /// Cumulative `(steps, execs)` for this thread.
    pub fn totals() -> (u64, u64) {
        (STEPS.with(Cell::get), EXECS.with(Cell::get))
    }

    /// Runs `f` with this thread's meter isolated: whatever work `f`
    /// credits is rolled back when `f` returns (or unwinds). The parallel
    /// differential oracle executes pool runs under this guard and then
    /// *replays* each run's work on the merging thread in canonical pool
    /// order, so meter-derived values (wasted-work deltas, flight-event
    /// timestamps) are bit-identical to the serial loop no matter which
    /// thread physically ran which JVM.
    pub fn isolated<T>(f: impl FnOnce() -> T) -> T {
        struct Restore {
            steps: u64,
            execs: u64,
        }
        impl Drop for Restore {
            fn drop(&mut self) {
                STEPS.with(|s| s.set(self.steps));
                EXECS.with(|e| e.set(self.execs));
            }
        }
        let _restore = Restore {
            steps: STEPS.with(Cell::get),
            execs: EXECS.with(Cell::get),
        };
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hooks_are_inert() {
        assert!(take().is_none());
        count(Counter::VmExecutions, 5);
        gauge(Gauge::BugsFound, 1.0);
        mutator_outcome("Inlining", true, 1.0);
        flight(FlightKind::Vm, "vm", "x");
        drop(span(FlightKind::Phase, "inline", "T::main"));
        assert!(snapshot().is_none());
        assert!(flight_snapshot().is_empty());
    }

    #[test]
    fn session_accumulates_and_take_disables() {
        let clock = ManualClock::new();
        install(Session::with_clock(Box::new(clock.clone())));
        assert!(enabled());
        count(Counter::MutationsApplied, 3);
        count(Counter::MutationsApplied, 2);
        gauge(Gauge::CorpusSize, 10.0);
        mutator_outcome("Inlining", true, 2.5);
        mutator_outcome("Inlining", false, 0.0);
        {
            let _g = span(FlightKind::Phase, "inline", "T::main");
            clock.advance(500);
        }
        {
            let _g = span(FlightKind::Phase, "inline", "T::other");
            clock.advance(300);
        }
        let session = take().expect("installed above");
        assert!(!enabled());
        let snap = session.snapshot();
        assert_eq!(snap.counter("mutations_applied"), 5);
        assert_eq!(snap.gauge("corpus_size"), 10.0);
        let inline = snap.spans.iter().find(|s| s.name == "inline").unwrap();
        assert_eq!(inline.count, 2);
        assert_eq!(inline.total_nanos, 800);
        assert_eq!(inline.max_nanos, 500);
        let m = &snap.mutators[0];
        assert_eq!((m.applies, m.accepted, m.rejected), (2, 1, 1));
        assert!((m.yield_sum - 2.5).abs() < 1e-12);
    }

    #[test]
    fn absorb_merges_counters_spans_and_mutators_but_not_gauges() {
        let clock = ManualClock::new();
        install(Session::with_clock(Box::new(clock.clone())));
        count(Counter::VmExecutions, 7);
        mutator_outcome("Inlining", true, 1.5);
        {
            let _g = span(FlightKind::Phase, "inline", "T::main");
            clock.advance(400);
        }
        let worker_snap = take().unwrap().snapshot();

        let clock2 = ManualClock::new();
        install(Session::with_clock(Box::new(clock2.clone())));
        count(Counter::VmExecutions, 3);
        gauge(Gauge::BugsFound, 2.0);
        mutator_outcome("Inlining", false, 0.0);
        {
            let _g = span(FlightKind::Phase, "inline", "T::other");
            clock2.advance(100);
        }
        absorb(&worker_snap);
        let merged = take().unwrap().snapshot();
        assert_eq!(merged.counter("vm_executions"), 10);
        assert_eq!(merged.gauge("bugs_found"), 2.0, "gauges stay local");
        let inline = merged.spans.iter().find(|s| s.name == "inline").unwrap();
        assert_eq!(inline.count, 2);
        assert_eq!(inline.total_nanos, 500);
        assert_eq!(inline.max_nanos, 400);
        assert_eq!(inline.buckets.iter().sum::<u64>(), 2);
        let m = merged
            .mutators
            .iter()
            .find(|m| m.name == "Inlining")
            .unwrap();
        assert_eq!((m.applies, m.accepted, m.rejected), (2, 1, 1));
        assert!((m.yield_sum - 1.5).abs() < 1e-12);
        // Absorbing into a disabled thread is a no-op.
        absorb(&worker_snap);
        assert!(snapshot().is_none());
    }

    #[test]
    fn span_guard_records_on_panic_unwind() {
        let clock = ManualClock::new();
        install(Session::with_clock(Box::new(clock.clone())));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = span(FlightKind::Phase, "ideal_loop", "T::main");
            clock.advance(250);
            panic!("boom");
        }));
        assert!(caught.is_err());
        let snap = take().unwrap().snapshot();
        let s = snap.spans.iter().find(|s| s.name == "ideal_loop").unwrap();
        assert_eq!((s.count, s.total_nanos), (1, 250));
    }

    #[test]
    fn flight_reset_and_snapshot_track_the_recorder() {
        install(Session::new());
        flight(FlightKind::Round, "attempt", "round 0");
        flight(FlightKind::Mutator, "Inlining", "iteration 1");
        assert_eq!(flight_snapshot().len(), 2);
        flight_reset();
        assert!(flight_snapshot().is_empty());
        flight(FlightKind::Vm, "HotSpur-17", "");
        let snap = flight_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].label, "HotSpur-17");
        take();
    }

    #[test]
    fn work_meter_is_cumulative() {
        let (s0, e0) = work::totals();
        work::add(100, 1);
        work::add(50, 2);
        let (s1, e1) = work::totals();
        assert_eq!(s1 - s0, 150);
        assert_eq!(e1 - e0, 3);
    }

    #[test]
    fn isolated_work_is_rolled_back() {
        let before = work::totals();
        let inner = work::isolated(|| {
            work::add(500, 3);
            work::totals()
        });
        assert_eq!(inner, (before.0 + 500, before.1 + 3));
        assert_eq!(work::totals(), before);
        // Rollback also happens on unwind.
        let caught = std::panic::catch_unwind(|| {
            work::isolated(|| {
                work::add(999, 9);
                panic!("boom");
            })
        });
        assert!(caught.is_err());
        assert_eq!(work::totals(), before);
    }
}
