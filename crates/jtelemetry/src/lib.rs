//! # jtelemetry — observability for the whole fuzzing stack
//!
//! A hand-rolled (dependency-free) span/counter library threaded through
//! every layer of the reproduction:
//!
//! * [`Counter`]s and [`Gauge`]s — interpreter/compile counters from
//!   `jexec`, execution/verdict counters from `jvmsim` and the oracles,
//!   campaign-level gauges;
//! * [`span`]s — per-phase timing histograms for `jopt`'s optimizer
//!   phases (and VM executions), timed by a [`Clock`] that tests replace
//!   with a [`ManualClock`] for deterministic histograms;
//! * a [`FlightRecorder`] — a bounded ring buffer of the most recent
//!   events, dumped by the campaign supervisor into the journal when a
//!   round faults, so a quarantined round is diagnosable after the fact;
//! * exporters — JSONL snapshots, a Prometheus-style text format, a
//!   human-readable end-of-campaign report, and a one-line TTY status
//!   (see [`export`] and [`MetricsSnapshot`]).
//!
//! ## Sessions and overhead
//!
//! All state lives in a **thread-local [`Session`]**. Instrumentation
//! call sites first read a thread-local `Cell<bool>`; with no session
//! installed (the default) every hook is a branch on that cell and
//! nothing else — campaigns without telemetry pay effectively nothing.
//! Per-thread state also keeps concurrent campaigns (tests run many in
//! parallel) perfectly isolated and deterministic.
//!
//! The one exception is the [`work`] meter: two plain `Cell<u64>`
//! counters of simulated work (interpreter steps, JVM executions) that
//! are *always* on, because the campaign supervisor uses their deltas to
//! split productive from wasted (retried) work even when an attempt dies
//! by panic. One `Cell` add per completed VM execution is noise.
//!
//! ```
//! use jtelemetry::{Counter, ManualClock, Session};
//!
//! let clock = ManualClock::new();
//! jtelemetry::install(Session::with_clock(Box::new(clock.clone())));
//! jtelemetry::count(Counter::VmExecutions, 2);
//! {
//!     let _span = jtelemetry::span(jtelemetry::FlightKind::Phase, "inline", "T::main");
//!     clock.advance(1_000);
//! }
//! let snap = jtelemetry::take().unwrap().snapshot();
//! assert_eq!(snap.counter("vm_executions"), 2);
//! assert_eq!(snap.spans[0].total_nanos, 1_000);
//! ```

pub mod cancel;
pub mod clock;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod schema;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use metrics::{
    Counter, Gauge, MetricsSnapshot, MutatorStat, OpcodeStat, SpanStat, HIST_BUCKETS,
    SCHEMA_VERSION,
};
pub use recorder::{FlightEvent, FlightKind, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use trace::TraceEvent;

use std::cell::{Cell, RefCell};
use trace::{OpenSpan, TraceBuf};

/// One thread's telemetry accumulator. Install with [`install`], retrieve
/// (for final export) with [`take`].
pub struct Session {
    clock: Box<dyn Clock>,
    started_nanos: u64,
    counters: [u64; Counter::ALL.len()],
    gauges: [f64; Gauge::ALL.len()],
    spans: Vec<SpanStat>,
    mutators: Vec<MutatorStat>,
    recorder: FlightRecorder,
    /// Causal trace buffer; `None` unless built [`Session::with_trace`].
    trace: Option<TraceBuf>,
    /// Per-opcode profiling requested ([`Session::with_profile`]).
    profile: bool,
    opcodes: Vec<OpcodeStat>,
    /// Nanoseconds accumulated by completed *child* spans of each open
    /// [`span`], innermost last — subtracted from a span's elapsed time
    /// on drop to yield its self-time.
    span_children: Vec<u64>,
}

/// The shape of a session, shipped to worker threads so they install a
/// session equivalent to the coordinator's: same clock kind (a fresh
/// [`ManualClock`] on workers keeps every worker-side duration zero,
/// hence deterministic), same trace/profile gating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSpec {
    /// The coordinator clock is hand-advanced.
    pub manual: bool,
    /// The coordinator session buffers trace events.
    pub trace: bool,
    /// The coordinator session profiles opcodes.
    pub profile: bool,
}

impl Session {
    /// A session timed by the host monotonic clock.
    pub fn new() -> Session {
        Session::with_clock(Box::new(MonotonicClock::new()))
    }

    /// A session with an explicit clock (tests pass a [`ManualClock`]).
    pub fn with_clock(clock: Box<dyn Clock>) -> Session {
        let started_nanos = clock.now_nanos();
        Session {
            clock,
            started_nanos,
            counters: [0; Counter::ALL.len()],
            gauges: [0.0; Gauge::ALL.len()],
            spans: Vec::new(),
            mutators: Vec::new(),
            recorder: FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY),
            trace: None,
            profile: false,
            opcodes: Vec::new(),
            span_children: Vec::new(),
        }
    }

    /// A worker-side session mirroring a coordinator's [`SessionSpec`].
    pub fn from_spec(spec: SessionSpec) -> Session {
        let clock: Box<dyn Clock> = if spec.manual {
            Box::new(ManualClock::new())
        } else {
            Box::new(MonotonicClock::new())
        };
        let mut session = Session::with_clock(clock);
        if spec.trace {
            session = session.with_trace();
        }
        if spec.profile {
            session = session.with_profile();
        }
        session
    }

    /// Overrides the flight-recorder capacity.
    pub fn with_flight_capacity(mut self, capacity: usize) -> Session {
        self.recorder = FlightRecorder::new(capacity);
        self
    }

    /// Enables the causal trace buffer ([`trace_span`] and friends).
    pub fn with_trace(mut self) -> Session {
        self.trace = Some(TraceBuf::new());
        self
    }

    /// Enables per-opcode interpreter profiling ([`profile_opcode`]).
    pub fn with_profile(mut self) -> Session {
        self.profile = true;
        self
    }

    /// True when this session buffers trace events.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// True when this session's clock is hand-advanced.
    pub fn clock_is_manual(&self) -> bool {
        self.clock.is_manual()
    }

    pub(crate) fn trace_buf(&self) -> Option<&TraceBuf> {
        self.trace.as_ref()
    }

    /// Drains and returns the round-lane trace events accumulated so far
    /// (empty when tracing is off). Workers ship these to the
    /// coordinator, which folds them in with [`absorb_trace`].
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace
            .as_mut()
            .map(|buf| std::mem::take(&mut buf.events))
            .unwrap_or_default()
    }

    fn span_stat(&mut self, name: &str) -> &mut SpanStat {
        if let Some(i) = self.spans.iter().position(|s| s.name == name) {
            return &mut self.spans[i];
        }
        self.spans.push(SpanStat::new(name));
        self.spans.last_mut().expect("just pushed")
    }

    fn mutator_stat(&mut self, name: &str) -> &mut MutatorStat {
        if let Some(i) = self.mutators.iter().position(|m| m.name == name) {
            return &mut self.mutators[i];
        }
        self.mutators.push(MutatorStat::new(name));
        self.mutators.last_mut().expect("just pushed")
    }

    fn opcode_stat(&mut self, name: &str) -> &mut OpcodeStat {
        if let Some(i) = self.opcodes.iter().position(|o| o.name == name) {
            return &mut self.opcodes[i];
        }
        self.opcodes.push(OpcodeStat {
            name: name.to_string(),
            hits: 0,
            nanos: 0,
        });
        self.opcodes.last_mut().expect("just pushed")
    }

    /// Folds another session's snapshot into this one: counters and
    /// per-mutator stats are summed, span histograms merged element-wise
    /// (counts/totals/buckets summed, max maximized). Gauges and the
    /// flight recorder are untouched — both are point-in-time state owned
    /// by whoever drives the surrounding context. The parallel campaign
    /// engine uses this to aggregate per-round worker sessions into the
    /// coordinator session before `--metrics-out` flushes.
    pub fn absorb(&mut self, snap: &MetricsSnapshot) {
        for (key, value) in &snap.counters {
            if let Some(i) = Counter::ALL.iter().position(|c| c.key() == *key) {
                self.counters[i] += value;
            }
        }
        for span in &snap.spans {
            let stat = self.span_stat(&span.name);
            stat.count += span.count;
            stat.total_nanos = stat.total_nanos.saturating_add(span.total_nanos);
            stat.self_nanos = stat.self_nanos.saturating_add(span.self_nanos);
            stat.max_nanos = stat.max_nanos.max(span.max_nanos);
            for (bucket, n) in stat.buckets.iter_mut().zip(span.buckets.iter()) {
                *bucket += n;
            }
        }
        for m in &snap.mutators {
            let stat = self.mutator_stat(&m.name);
            stat.applies += m.applies;
            stat.accepted += m.accepted;
            stat.rejected += m.rejected;
            stat.yield_sum += m.yield_sum;
        }
        for o in &snap.opcodes {
            let stat = self.opcode_stat(&o.name);
            stat.hits += o.hits;
            stat.nanos = stat.nanos.saturating_add(o.nanos);
        }
    }

    /// Freezes the session into an exportable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            elapsed_nanos: self.clock.now_nanos().saturating_sub(self.started_nanos),
            counters: Counter::ALL
                .iter()
                .enumerate()
                .map(|(i, c)| (c.key(), self.counters[i]))
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .enumerate()
                .map(|(i, g)| (g.key(), self.gauges[i]))
                .collect(),
            spans: self.spans.clone(),
            mutators: self.mutators.clone(),
            opcodes: self.opcodes.clone(),
        }
    }

    fn trace_open(&mut self, name: &'static str, args: Vec<(&'static str, String)>, steps: u64) {
        let open_nanos = self.clock.now_nanos();
        let Some(buf) = self.trace.as_mut() else {
            return;
        };
        let id = buf.next_id;
        buf.next_id += 1;
        buf.open.push(OpenSpan {
            id,
            name,
            args,
            open_steps: steps,
            open_nanos,
        });
    }

    fn trace_close(&mut self, steps: u64) {
        let now_nanos = self.clock.now_nanos();
        let Some(buf) = self.trace.as_mut() else {
            return;
        };
        let Some(span) = buf.open.pop() else {
            return;
        };
        let (parent, rel_steps) = match buf.open.last() {
            Some(p) => (p.id, span.open_steps.saturating_sub(p.open_steps)),
            None => (0, 0),
        };
        buf.events.push(TraceEvent {
            id: span.id,
            parent,
            name: span.name,
            args: span.args,
            rel_steps,
            dur_steps: steps.saturating_sub(span.open_steps),
            dur_nanos: now_nanos.saturating_sub(span.open_nanos),
            instant: false,
        });
    }

    fn trace_mark(&mut self, name: &'static str, args: Vec<(&'static str, String)>, steps: u64) {
        let Some(buf) = self.trace.as_mut() else {
            return;
        };
        let id = buf.next_id;
        buf.next_id += 1;
        let (parent, rel_steps) = match buf.open.last() {
            Some(p) => (p.id, steps.saturating_sub(p.open_steps)),
            None => (0, 0),
        };
        buf.events.push(TraceEvent {
            id,
            parent,
            name,
            args,
            rel_steps,
            dur_steps: 0,
            dur_nanos: 0,
            instant: true,
        });
    }

    /// Scheduler-lane events carry wall-clock content, which a manual
    /// clock defines away — suppressing them keeps manual-clock traces
    /// bit-identical at any worker count.
    fn sched_suppressed(&self) -> bool {
        self.trace.is_none() || self.clock.is_manual()
    }

    fn sched_open(&mut self, name: &'static str, args: Vec<(&'static str, String)>) {
        let open_nanos = self.clock.now_nanos();
        let Some(buf) = self.trace.as_mut() else {
            return;
        };
        let id = buf.sched_next_id;
        buf.sched_next_id += 1;
        buf.sched_open.push(OpenSpan {
            id,
            name,
            args,
            open_steps: 0,
            open_nanos,
        });
    }

    fn sched_close(&mut self) {
        let now_nanos = self.clock.now_nanos();
        let Some(buf) = self.trace.as_mut() else {
            return;
        };
        let Some(span) = buf.sched_open.pop() else {
            return;
        };
        let parent = buf.sched_open.last().map_or(0, |p| p.id);
        buf.sched.push(TraceEvent {
            id: span.id,
            parent,
            name: span.name,
            args: span.args,
            // Scheduler-lane `rel_steps` is the absolute session-clock
            // open time (the lane is wall-clock by definition).
            rel_steps: span.open_nanos,
            dur_steps: 0,
            dur_nanos: now_nanos.saturating_sub(span.open_nanos),
            instant: false,
        });
    }

    fn sched_mark(&mut self, name: &'static str, args: Vec<(&'static str, String)>) {
        let now_nanos = self.clock.now_nanos();
        let Some(buf) = self.trace.as_mut() else {
            return;
        };
        let id = buf.sched_next_id;
        buf.sched_next_id += 1;
        let parent = buf.sched_open.last().map_or(0, |p| p.id);
        buf.sched.push(TraceEvent {
            id,
            parent,
            name,
            args,
            rel_steps: now_nanos,
            dur_steps: 0,
            dur_nanos: 0,
            instant: true,
        });
    }
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static SESSION: RefCell<Option<Session>> = const { RefCell::new(None) };
}

/// Installs a session on this thread, enabling all instrumentation hooks.
/// Replaces (and drops) any previously installed session.
pub fn install(session: Session) {
    SESSION.with(|s| *s.borrow_mut() = Some(session));
    ENABLED.with(|e| e.set(true));
}

/// Removes and returns this thread's session, disabling instrumentation.
pub fn take() -> Option<Session> {
    ENABLED.with(|e| e.set(false));
    SESSION.with(|s| s.borrow_mut().take())
}

/// True when a session is installed on this thread.
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

fn with_session(f: impl FnOnce(&mut Session)) {
    if !enabled() {
        return;
    }
    SESSION.with(|s| {
        if let Some(session) = s.borrow_mut().as_mut() {
            f(session);
        }
    });
}

/// Adds `n` to a counter.
pub fn count(counter: Counter, n: u64) {
    with_session(|s| {
        let i = Counter::ALL
            .iter()
            .position(|c| *c == counter)
            .expect("counter listed in ALL");
        s.counters[i] += n;
    });
}

/// Sets a gauge.
pub fn gauge(gauge: Gauge, value: f64) {
    with_session(|s| {
        let i = Gauge::ALL
            .iter()
            .position(|g| *g == gauge)
            .expect("gauge listed in ALL");
        s.gauges[i] = value;
    });
}

/// Records one accept/reject outcome for a mutator. `delta` is the
/// behaviour increment of accepted children (ignored for rejects).
pub fn mutator_outcome(name: &str, accepted: bool, delta: f64) {
    with_session(|s| {
        let stat = s.mutator_stat(name);
        stat.applies += 1;
        if accepted {
            stat.accepted += 1;
            stat.yield_sum += delta;
        } else {
            stat.rejected += 1;
        }
    });
}

/// Appends one flight-recorder event (timestamped in simulated steps).
pub fn flight(kind: FlightKind, label: impl Into<String>, detail: impl Into<String>) {
    if !enabled() {
        return;
    }
    let now = work::totals().0;
    with_session(|s| s.recorder.push(now, kind, label.into(), detail.into()));
}

/// Clears the flight recorder and re-bases its timestamps — the campaign
/// supervisor calls this at the start of every round attempt.
pub fn flight_reset() {
    if !enabled() {
        return;
    }
    let now = work::totals().0;
    with_session(|s| s.recorder.reset(now));
}

/// The current flight-recorder contents (empty when disabled).
pub fn flight_snapshot() -> Vec<FlightEvent> {
    let mut out = Vec::new();
    with_session(|s| out = s.recorder.snapshot());
    out
}

/// Folds `snap` into this thread's session (no-op when none is
/// installed). See [`Session::absorb`].
pub fn absorb(snap: &MetricsSnapshot) {
    with_session(|s| s.absorb(snap));
}

/// A snapshot of this thread's session, if one is installed.
pub fn snapshot() -> Option<MetricsSnapshot> {
    let mut out = None;
    with_session(|s| out = Some(s.snapshot()));
    out
}

/// An RAII span: records a flight event on entry and a duration into the
/// named timing histogram on drop (including drops during panic unwind).
/// When the session traces, the same interval is also recorded as a
/// trace event.
pub struct SpanGuard {
    name: &'static str,
    start_nanos: u64,
    live: bool,
    traced: bool,
}

/// Opens a span. Inert (a single branch) when telemetry is disabled.
pub fn span(kind: FlightKind, name: &'static str, detail: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            start_nanos: 0,
            live: false,
            traced: false,
        };
    }
    let now_steps = work::totals().0;
    let mut start_nanos = 0;
    let mut traced = false;
    with_session(|s| {
        s.recorder
            .push(now_steps, kind, name.to_string(), detail.to_string());
        start_nanos = s.clock.now_nanos();
        s.span_children.push(0);
        if s.trace.is_some() {
            let args = if detail.is_empty() {
                Vec::new()
            } else {
                vec![("detail", detail.to_string())]
            };
            s.trace_open(name, args, now_steps);
            traced = true;
        }
    });
    SpanGuard {
        name,
        start_nanos,
        live: true,
        traced,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let now_steps = work::totals().0;
        with_session(|s| {
            let elapsed = s.clock.now_nanos().saturating_sub(self.start_nanos);
            let child_nanos = s.span_children.pop().unwrap_or(0);
            s.span_stat(self.name)
                .record(elapsed, elapsed.saturating_sub(child_nanos));
            if let Some(top) = s.span_children.last_mut() {
                *top = top.saturating_add(elapsed);
            }
            if self.traced {
                s.trace_close(now_steps);
            }
        });
    }
}

/// True when the installed session buffers trace events — callers use
/// this to skip building argument strings for [`trace_span`].
pub fn tracing() -> bool {
    let mut on = false;
    with_session(|s| on = s.trace.is_some());
    on
}

/// An RAII guard for a trace-only span (see [`trace_span`]).
pub struct TraceGuard {
    live: bool,
}

/// Opens a trace-only span: a round-lane trace event with no flight or
/// histogram side effects (journaled flight dumps stay byte-identical
/// with tracing on). Inert unless the session traces. `args` is built
/// lazily, only when tracing is active.
pub fn trace_span(
    name: &'static str,
    args: impl FnOnce() -> Vec<(&'static str, String)>,
) -> TraceGuard {
    if !enabled() {
        return TraceGuard { live: false };
    }
    let now_steps = work::totals().0;
    let mut live = false;
    with_session(|s| {
        if s.trace.is_some() {
            s.trace_open(name, args(), now_steps);
            live = true;
        }
    });
    TraceGuard { live }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let now_steps = work::totals().0;
        with_session(|s| s.trace_close(now_steps));
    }
}

/// Emits a zero-duration round-lane marker attached to the enclosing
/// open trace span (oracle verdicts, ...). Inert unless tracing.
pub fn trace_instant(name: &'static str, args: impl FnOnce() -> Vec<(&'static str, String)>) {
    if !enabled() {
        return;
    }
    let now_steps = work::totals().0;
    with_session(|s| {
        if s.trace.is_some() {
            s.trace_mark(name, args(), now_steps);
        }
    });
}

/// Folds worker-produced round-lane trace events into this thread's
/// session in merge order. See [`trace::TraceBuf::absorb`] for the
/// renumbering/re-parenting rules.
pub fn absorb_trace(events: &[TraceEvent]) {
    if events.is_empty() {
        return;
    }
    let now_steps = work::totals().0;
    with_session(|s| {
        if let Some(buf) = s.trace.as_mut() {
            buf.absorb(events, now_steps);
        }
    });
}

/// An RAII guard for a scheduler-lane span (see [`trace_sched_span`]).
pub struct SchedGuard {
    live: bool,
}

/// Opens a scheduler-lane (wall-clock) span: coordinator-side merge
/// waits and the like. Suppressed under a manual clock — the lane's
/// content is thread timing, which a manual clock defines away.
pub fn trace_sched_span(
    name: &'static str,
    args: impl FnOnce() -> Vec<(&'static str, String)>,
) -> SchedGuard {
    if !enabled() {
        return SchedGuard { live: false };
    }
    let mut live = false;
    with_session(|s| {
        if !s.sched_suppressed() {
            s.sched_open(name, args());
            live = true;
        }
    });
    SchedGuard { live }
}

impl Drop for SchedGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        with_session(|s| s.sched_close());
    }
}

/// Emits a zero-duration scheduler-lane marker (dispatches, speculation
/// waste). Suppressed under a manual clock, like [`trace_sched_span`].
pub fn trace_sched_instant(name: &'static str, args: impl FnOnce() -> Vec<(&'static str, String)>) {
    if !enabled() {
        return;
    }
    with_session(|s| {
        if !s.sched_suppressed() {
            s.sched_mark(name, args());
        }
    });
}

/// The installed session's [`SessionSpec`], for shipping to workers
/// (`None` when telemetry is disabled on this thread).
pub fn session_spec() -> Option<SessionSpec> {
    let mut out = None;
    with_session(|s| {
        out = Some(SessionSpec {
            manual: s.clock.is_manual(),
            trace: s.trace.is_some(),
            profile: s.profile,
        })
    });
    out
}

/// True when the installed session profiles opcodes.
pub fn profiling() -> bool {
    let mut on = false;
    with_session(|s| on = s.profile);
    on
}

/// The session clock's current reading (0 when telemetry is disabled).
/// The interpreter's sampling profiler reads time through this so a
/// manual clock yields deterministic (all-zero) attribution.
pub fn now_nanos() -> u64 {
    let mut now = 0;
    with_session(|s| now = s.clock.now_nanos());
    now
}

/// Adds one opcode's profiled cost (exact hit count, sampled
/// nanoseconds). No-op unless the session profiles.
pub fn profile_opcode(name: &str, hits: u64, nanos: u64) {
    with_session(|s| {
        if s.profile {
            let stat = s.opcode_stat(name);
            stat.hits += hits;
            stat.nanos = stat.nanos.saturating_add(nanos);
        }
    });
}

/// The always-on simulated-work meter: cumulative interpreter steps and
/// JVM executions completed on this thread. Monotonic, never reset —
/// consumers take deltas. Deterministic because it advances only on
/// completed executions (a function of the campaign configuration), never
/// on wall-clock time.
pub mod work {
    use std::cell::Cell;

    thread_local! {
        static STEPS: Cell<u64> = const { Cell::new(0) };
        static EXECS: Cell<u64> = const { Cell::new(0) };
    }

    /// Credits one completed execution's work.
    pub fn add(steps: u64, execs: u64) {
        STEPS.with(|s| s.set(s.get() + steps));
        EXECS.with(|e| e.set(e.get() + execs));
    }

    /// Cumulative `(steps, execs)` for this thread.
    pub fn totals() -> (u64, u64) {
        (STEPS.with(Cell::get), EXECS.with(Cell::get))
    }

    /// Runs `f` with this thread's meter isolated: whatever work `f`
    /// credits is rolled back when `f` returns (or unwinds). The parallel
    /// differential oracle executes pool runs under this guard and then
    /// *replays* each run's work on the merging thread in canonical pool
    /// order, so meter-derived values (wasted-work deltas, flight-event
    /// timestamps) are bit-identical to the serial loop no matter which
    /// thread physically ran which JVM.
    pub fn isolated<T>(f: impl FnOnce() -> T) -> T {
        struct Restore {
            steps: u64,
            execs: u64,
        }
        impl Drop for Restore {
            fn drop(&mut self) {
                STEPS.with(|s| s.set(self.steps));
                EXECS.with(|e| e.set(self.execs));
            }
        }
        let _restore = Restore {
            steps: STEPS.with(Cell::get),
            execs: EXECS.with(Cell::get),
        };
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hooks_are_inert() {
        assert!(take().is_none());
        count(Counter::VmExecutions, 5);
        gauge(Gauge::BugsFound, 1.0);
        mutator_outcome("Inlining", true, 1.0);
        flight(FlightKind::Vm, "vm", "x");
        drop(span(FlightKind::Phase, "inline", "T::main"));
        assert!(snapshot().is_none());
        assert!(flight_snapshot().is_empty());
    }

    #[test]
    fn session_accumulates_and_take_disables() {
        let clock = ManualClock::new();
        install(Session::with_clock(Box::new(clock.clone())));
        assert!(enabled());
        count(Counter::MutationsApplied, 3);
        count(Counter::MutationsApplied, 2);
        gauge(Gauge::CorpusSize, 10.0);
        mutator_outcome("Inlining", true, 2.5);
        mutator_outcome("Inlining", false, 0.0);
        {
            let _g = span(FlightKind::Phase, "inline", "T::main");
            clock.advance(500);
        }
        {
            let _g = span(FlightKind::Phase, "inline", "T::other");
            clock.advance(300);
        }
        let session = take().expect("installed above");
        assert!(!enabled());
        let snap = session.snapshot();
        assert_eq!(snap.counter("mutations_applied"), 5);
        assert_eq!(snap.gauge("corpus_size"), 10.0);
        let inline = snap.spans.iter().find(|s| s.name == "inline").unwrap();
        assert_eq!(inline.count, 2);
        assert_eq!(inline.total_nanos, 800);
        assert_eq!(inline.max_nanos, 500);
        let m = &snap.mutators[0];
        assert_eq!((m.applies, m.accepted, m.rejected), (2, 1, 1));
        assert!((m.yield_sum - 2.5).abs() < 1e-12);
    }

    #[test]
    fn absorb_merges_counters_spans_and_mutators_but_not_gauges() {
        let clock = ManualClock::new();
        install(Session::with_clock(Box::new(clock.clone())));
        count(Counter::VmExecutions, 7);
        mutator_outcome("Inlining", true, 1.5);
        {
            let _g = span(FlightKind::Phase, "inline", "T::main");
            clock.advance(400);
        }
        let worker_snap = take().unwrap().snapshot();

        let clock2 = ManualClock::new();
        install(Session::with_clock(Box::new(clock2.clone())));
        count(Counter::VmExecutions, 3);
        gauge(Gauge::BugsFound, 2.0);
        mutator_outcome("Inlining", false, 0.0);
        {
            let _g = span(FlightKind::Phase, "inline", "T::other");
            clock2.advance(100);
        }
        absorb(&worker_snap);
        let merged = take().unwrap().snapshot();
        assert_eq!(merged.counter("vm_executions"), 10);
        assert_eq!(merged.gauge("bugs_found"), 2.0, "gauges stay local");
        let inline = merged.spans.iter().find(|s| s.name == "inline").unwrap();
        assert_eq!(inline.count, 2);
        assert_eq!(inline.total_nanos, 500);
        assert_eq!(inline.max_nanos, 400);
        assert_eq!(inline.buckets.iter().sum::<u64>(), 2);
        let m = merged
            .mutators
            .iter()
            .find(|m| m.name == "Inlining")
            .unwrap();
        assert_eq!((m.applies, m.accepted, m.rejected), (2, 1, 1));
        assert!((m.yield_sum - 1.5).abs() < 1e-12);
        // Absorbing into a disabled thread is a no-op.
        absorb(&worker_snap);
        assert!(snapshot().is_none());
    }

    #[test]
    fn span_guard_records_on_panic_unwind() {
        let clock = ManualClock::new();
        install(Session::with_clock(Box::new(clock.clone())));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = span(FlightKind::Phase, "ideal_loop", "T::main");
            clock.advance(250);
            panic!("boom");
        }));
        assert!(caught.is_err());
        let snap = take().unwrap().snapshot();
        let s = snap.spans.iter().find(|s| s.name == "ideal_loop").unwrap();
        assert_eq!((s.count, s.total_nanos), (1, 250));
    }

    #[test]
    fn flight_reset_and_snapshot_track_the_recorder() {
        install(Session::new());
        flight(FlightKind::Round, "attempt", "round 0");
        flight(FlightKind::Mutator, "Inlining", "iteration 1");
        assert_eq!(flight_snapshot().len(), 2);
        flight_reset();
        assert!(flight_snapshot().is_empty());
        flight(FlightKind::Vm, "HotSpur-17", "");
        let snap = flight_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].label, "HotSpur-17");
        take();
    }

    #[test]
    fn work_meter_is_cumulative() {
        let (s0, e0) = work::totals();
        work::add(100, 1);
        work::add(50, 2);
        let (s1, e1) = work::totals();
        assert_eq!(s1 - s0, 150);
        assert_eq!(e1 - e0, 3);
    }

    #[test]
    fn isolated_work_is_rolled_back() {
        let before = work::totals();
        let inner = work::isolated(|| {
            work::add(500, 3);
            work::totals()
        });
        assert_eq!(inner, (before.0 + 500, before.1 + 3));
        assert_eq!(work::totals(), before);
        // Rollback also happens on unwind.
        let caught = std::panic::catch_unwind(|| {
            work::isolated(|| {
                work::add(999, 9);
                panic!("boom");
            })
        });
        assert!(caught.is_err());
        assert_eq!(work::totals(), before);
    }

    #[test]
    fn trace_spans_nest_with_relative_step_timestamps() {
        let clock = ManualClock::new();
        install(Session::with_clock(Box::new(clock.clone())).with_trace());
        assert!(tracing());
        let (base, _) = work::totals();
        {
            let _round = trace_span("round", || vec![("round", "0".to_string())]);
            work::add(100, 1);
            {
                let _attempt = trace_span("attempt", Vec::new);
                clock.advance(50);
                work::add(20, 1);
                trace_instant("verdict", || vec![("kind", "pass".to_string())]);
            }
        }
        let session = take().unwrap();
        let buf = session.trace_buf().unwrap();
        assert_eq!(buf.events.len(), 3);
        // Close order: instant first (inside attempt), attempt, round.
        let verdict = &buf.events[0];
        let attempt = &buf.events[1];
        let round = &buf.events[2];
        assert_eq!((round.id, round.parent, round.rel_steps), (1, 0, 0));
        assert_eq!(round.dur_steps, 120);
        assert_eq!(attempt.name, "attempt");
        assert_eq!((attempt.id, attempt.parent), (2, 1));
        assert_eq!(attempt.rel_steps, 100, "attempt opened 100 steps in");
        assert_eq!(attempt.dur_steps, 20);
        assert_eq!(attempt.dur_nanos, 50);
        assert_eq!((verdict.id, verdict.parent), (3, 2));
        assert_eq!(verdict.rel_steps, 20);
        assert!(verdict.instant);
        let _ = base;
    }

    #[test]
    fn absorb_trace_renumbers_and_reparents_in_merge_order() {
        // A "worker" buffer with a root span and a nested child.
        let clock = ManualClock::new();
        install(Session::with_clock(Box::new(clock.clone())).with_trace());
        {
            let _root = trace_span("round", Vec::new);
            work::add(10, 1);
            let _child = trace_span("fuzz", Vec::new);
        }
        let mut worker = take().unwrap();
        let worker_events = worker.take_trace();
        assert_eq!(worker_events.len(), 2);

        // Coordinator with an open span absorbs: orphan roots attach
        // under it at the coordinator's current meter offset; ids
        // continue from the coordinator watermark.
        install(Session::with_clock(Box::new(ManualClock::new())).with_trace());
        {
            let _outer = trace_span("differential", Vec::new);
            work::add(7, 1);
            absorb_trace(&worker_events);
        }
        let session = take().unwrap();
        let events = &session.trace_buf().unwrap().events;
        // fuzz (child, renumbered), round (root, re-parented), differential.
        assert_eq!(events.len(), 3);
        let fuzz = &events[0];
        let round = &events[1];
        let outer = &events[2];
        assert_eq!(outer.id, 1);
        assert_eq!(fuzz.name, "fuzz");
        assert_eq!(round.name, "round");
        assert_eq!(round.id, 2, "worker root renumbered past watermark");
        assert_eq!(fuzz.id, 3);
        assert_eq!(fuzz.parent, round.id, "internal links preserved");
        assert_eq!(round.parent, outer.id, "orphan root attaches");
        assert_eq!(round.rel_steps, 7, "re-expressed against merge meter");
        assert_eq!(fuzz.rel_steps, 10, "internal offsets untouched");
    }

    #[test]
    fn absorb_trace_without_open_span_keeps_roots() {
        install(Session::new().with_trace());
        {
            let _r = trace_span("round", Vec::new);
        }
        let mut worker = take().unwrap();
        let events = worker.take_trace();
        install(Session::new().with_trace());
        absorb_trace(&events);
        absorb_trace(&events);
        let session = take().unwrap();
        let merged = &session.trace_buf().unwrap().events;
        assert_eq!(merged.len(), 2);
        assert_eq!((merged[0].id, merged[0].parent), (1, 0));
        assert_eq!((merged[1].id, merged[1].parent), (2, 0), "ids keep rising");
    }

    #[test]
    fn sched_lane_is_suppressed_under_manual_clock() {
        install(Session::with_clock(Box::new(ManualClock::new())).with_trace());
        trace_sched_instant("dispatch", Vec::new);
        {
            let _g = trace_sched_span("merge_wait", Vec::new);
        }
        let session = take().unwrap();
        assert!(session.trace_buf().unwrap().sched.is_empty());

        install(Session::new().with_trace());
        trace_sched_instant("dispatch", || vec![("round", "3".to_string())]);
        {
            let _g = trace_sched_span("merge_wait", Vec::new);
        }
        let session = take().unwrap();
        let sched = &session.trace_buf().unwrap().sched;
        assert_eq!(sched.len(), 2);
        assert_eq!(sched[0].name, "dispatch");
        assert!(sched[0].instant);
        assert_eq!(sched[1].name, "merge_wait");
    }

    #[test]
    fn span_self_time_excludes_children() {
        let clock = ManualClock::new();
        install(Session::with_clock(Box::new(clock.clone())));
        {
            let _outer = span(FlightKind::Phase, "optimize", "T::main");
            clock.advance(100);
            {
                let _inner = span(FlightKind::Phase, "inline", "T::main");
                clock.advance(40);
            }
            clock.advance(10);
        }
        let snap = take().unwrap().snapshot();
        let outer = snap.spans.iter().find(|s| s.name == "optimize").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "inline").unwrap();
        assert_eq!(outer.total_nanos, 150);
        assert_eq!(outer.self_nanos, 110, "child's 40ns excluded");
        assert_eq!(inner.total_nanos, 40);
        assert_eq!(inner.self_nanos, 40);
    }

    #[test]
    fn profile_opcode_accumulates_and_absorbs() {
        install(Session::new()); // profiling off
        profile_opcode("Arith", 10, 100);
        assert!(take().unwrap().snapshot().opcodes.is_empty());

        install(Session::new().with_profile());
        assert!(profiling());
        profile_opcode("Arith", 10, 100);
        profile_opcode("Load", 5, 0);
        profile_opcode("Arith", 3, 20);
        let worker_snap = take().unwrap().snapshot();
        assert_eq!(worker_snap.opcodes.len(), 2);

        install(Session::new().with_profile());
        profile_opcode("Arith", 1, 1);
        absorb(&worker_snap);
        let snap = take().unwrap().snapshot();
        let arith = snap.opcodes.iter().find(|o| o.name == "Arith").unwrap();
        assert_eq!((arith.hits, arith.nanos), (14, 121));
        let load = snap.opcodes.iter().find(|o| o.name == "Load").unwrap();
        assert_eq!((load.hits, load.nanos), (5, 0));
    }

    #[test]
    fn session_spec_round_trips_through_from_spec() {
        let clock = ManualClock::new();
        install(
            Session::with_clock(Box::new(clock.clone()))
                .with_trace()
                .with_profile(),
        );
        let spec = session_spec().unwrap();
        take();
        assert_eq!(
            spec,
            SessionSpec {
                manual: true,
                trace: true,
                profile: true
            }
        );
        let mirrored = Session::from_spec(spec);
        assert!(mirrored.tracing());
        assert!(mirrored.clock_is_manual());

        install(Session::new());
        let spec = session_spec().unwrap();
        take();
        assert_eq!(
            spec,
            SessionSpec {
                manual: false,
                trace: false,
                profile: false
            }
        );
        assert!(session_spec().is_none(), "disabled thread has no spec");
    }
}
