//! Schema validation for the two machine-readable export formats.
//!
//! CI runs a short campaign with `--metrics-out`, then feeds the outputs
//! to `jtelemetry-check`, which calls [`validate_snapshot_line`] and
//! [`validate_prometheus`]. Validation is strict — unknown counter/gauge
//! keys, missing families, or a version bump without a schema update all
//! fail — so writer/reader drift is caught the moment it is introduced.
//!
//! The JSON parser below is a deliberately small hand-rolled subset
//! (objects, arrays, strings, numbers, bools, null): the workspace is
//! dependency-free by construction.

use crate::export::PROM_PREFIX;
use crate::metrics::{Counter, Gauge, HIST_BUCKETS, SCHEMA_VERSION};
use std::collections::BTreeMap;

/// A parsed JSON value (numbers kept as `f64`; all inputs we emit are in
/// exact-integer range or explicitly floating point).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("json parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after value"));
    }
    Ok(value)
}

fn want<'a>(obj: &'a Json, key: &str, typ: &str) -> Result<&'a Json, String> {
    let v = obj.get(key).ok_or_else(|| format!("missing key '{key}'"))?;
    if v.type_name() != typ {
        return Err(format!(
            "key '{key}': expected {typ}, got {}",
            v.type_name()
        ));
    }
    Ok(v)
}

fn want_num(obj: &Json, key: &str) -> Result<f64, String> {
    match want(obj, key, "number")? {
        Json::Num(n) => Ok(*n),
        _ => unreachable!(),
    }
}

fn check_key_set(obj: &Json, what: &str, expected: &[&str]) -> Result<(), String> {
    let map = match obj {
        Json::Obj(map) => map,
        _ => return Err(format!("{what}: expected object")),
    };
    for key in expected {
        if !map.contains_key(*key) {
            return Err(format!("{what}: missing key '{key}'"));
        }
    }
    for key in map.keys() {
        if !expected.contains(&key.as_str()) {
            return Err(format!("{what}: unknown key '{key}' (schema drift?)"));
        }
    }
    Ok(())
}

/// Validates one JSONL telemetry snapshot line against the current
/// schema. Strict: unknown counters/gauges or missing fields fail.
pub fn validate_snapshot_line(line: &str) -> Result<(), String> {
    let root = parse_json(line)?;
    match want(&root, "type", "string")? {
        Json::Str(s) if s == "telemetry" => {}
        other => return Err(format!("type: expected \"telemetry\", got {other:?}")),
    }
    let version = want_num(&root, "version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "version: expected {SCHEMA_VERSION}, got {version} (schema drift?)"
        ));
    }
    want_num(&root, "elapsed_nanos")?;

    let counter_keys: Vec<&str> = Counter::ALL.iter().map(Counter::key).collect();
    check_key_set(
        want(&root, "counters", "object")?,
        "counters",
        &counter_keys,
    )?;
    for key in &counter_keys {
        want_num(root.get("counters").expect("checked"), key)?;
    }
    let gauge_keys: Vec<&str> = Gauge::ALL.iter().map(Gauge::key).collect();
    check_key_set(want(&root, "gauges", "object")?, "gauges", &gauge_keys)?;
    for key in &gauge_keys {
        want_num(root.get("gauges").expect("checked"), key)?;
    }

    let spans = match want(&root, "spans", "array")? {
        Json::Arr(items) => items,
        _ => unreachable!(),
    };
    for (i, span) in spans.iter().enumerate() {
        check_key_set(
            span,
            &format!("spans[{i}]"),
            &[
                "name",
                "count",
                "total_nanos",
                "self_nanos",
                "max_nanos",
                "buckets",
            ],
        )?;
        want(span, "name", "string")?;
        want_num(span, "count")?;
        want_num(span, "total_nanos")?;
        want_num(span, "self_nanos")?;
        want_num(span, "max_nanos")?;
        match want(span, "buckets", "array")? {
            Json::Arr(buckets) if buckets.len() == HIST_BUCKETS => {
                for b in buckets {
                    if !matches!(b, Json::Num(_)) {
                        return Err(format!("spans[{i}]: non-numeric bucket"));
                    }
                }
            }
            Json::Arr(buckets) => {
                return Err(format!(
                    "spans[{i}]: expected {HIST_BUCKETS} buckets, got {}",
                    buckets.len()
                ))
            }
            _ => unreachable!(),
        }
    }

    let mutators = match want(&root, "mutators", "array")? {
        Json::Arr(items) => items,
        _ => unreachable!(),
    };
    for (i, m) in mutators.iter().enumerate() {
        check_key_set(
            m,
            &format!("mutators[{i}]"),
            &["name", "applies", "accepted", "rejected", "yield_sum"],
        )?;
        want(m, "name", "string")?;
        for key in ["applies", "accepted", "rejected", "yield_sum"] {
            want_num(m, key)?;
        }
    }

    let opcodes = match want(&root, "opcodes", "array")? {
        Json::Arr(items) => items,
        _ => unreachable!(),
    };
    for (i, o) in opcodes.iter().enumerate() {
        check_key_set(o, &format!("opcodes[{i}]"), &["name", "hits", "nanos"])?;
        want(o, "name", "string")?;
        want_num(o, "hits")?;
        want_num(o, "nanos")?;
    }

    check_key_set(
        &root,
        "snapshot",
        &[
            "type",
            "version",
            "elapsed_nanos",
            "counters",
            "gauges",
            "spans",
            "mutators",
            "opcodes",
        ],
    )
}

/// Validates a Chrome trace-event JSON document produced by
/// [`crate::export::trace_json`]: the two top-level keys, per-event key
/// sets and types, `ph` limited to complete spans (`X`) and instants
/// (`i`), lane-unique ids, and — the property Perfetto cannot check for
/// us — that every non-zero `parent` id resolves to an event on the
/// same lane (no dangling parent links).
pub fn validate_trace(text: &str) -> Result<(), String> {
    let root = parse_json(text)?;
    check_key_set(&root, "trace", &["traceEvents", "otherData"])?;
    let events = match want(&root, "traceEvents", "array")? {
        Json::Arr(items) => items,
        _ => unreachable!(),
    };
    let other = want(&root, "otherData", "object")?;
    match other.get("schema_version") {
        Some(Json::Str(v)) if *v == SCHEMA_VERSION.to_string() => {}
        Some(Json::Str(v)) => {
            return Err(format!(
                "otherData.schema_version {v} != {SCHEMA_VERSION} (schema drift?)"
            ))
        }
        _ => return Err("otherData: missing string 'schema_version'".to_string()),
    }
    match other.get("clock") {
        Some(Json::Str(v)) if v == "manual" || v == "wall" => {}
        other => {
            return Err(format!(
                "otherData.clock: expected manual|wall, got {other:?}"
            ))
        }
    }

    let mut ids: std::collections::BTreeMap<(u64, u64), ()> = std::collections::BTreeMap::new();
    let mut links: Vec<(usize, u64, u64)> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let at = |msg: String| format!("traceEvents[{i}]: {msg}");
        let ph = match want(event, "ph", "string").map_err(at)? {
            Json::Str(s) => s.clone(),
            _ => unreachable!(),
        };
        let keys: &[&str] = match ph.as_str() {
            "X" => &["name", "ph", "ts", "dur", "pid", "tid", "args"],
            "i" => &["name", "ph", "s", "ts", "pid", "tid", "args"],
            other => return Err(at(format!("bad ph '{other}' (want X or i)"))),
        };
        check_key_set(event, &format!("traceEvents[{i}]"), keys)?;
        want(event, "name", "string").map_err(at)?;
        want_num(event, "ts").map_err(at)?;
        let pid = want_num(event, "pid").map_err(at)? as u64;
        want_num(event, "tid").map_err(at)?;
        if ph == "X" {
            want_num(event, "dur").map_err(at)?;
        }
        let args = want(event, "args", "object").map_err(at)?;
        let id_of = |key: &str| -> Result<u64, String> {
            match args.get(key) {
                Some(Json::Str(s)) => s
                    .parse::<u64>()
                    .map_err(|_| at(format!("args.{key} '{s}' is not a u64"))),
                _ => Err(at(format!("args: missing string '{key}'"))),
            }
        };
        let id = id_of("id")?;
        let parent = id_of("parent")?;
        if id == 0 {
            return Err(at("args.id must be non-zero".to_string()));
        }
        if ids.insert((pid, id), ()).is_some() {
            return Err(at(format!("duplicate id {id} on lane {pid}")));
        }
        links.push((i, pid, parent));
    }
    for (i, pid, parent) in links {
        if parent != 0 && !ids.contains_key(&(pid, parent)) {
            return Err(format!(
                "traceEvents[{i}]: dangling parent id {parent} on lane {pid}"
            ));
        }
    }
    Ok(())
}

/// Parses the inner text of a `{...}` label set into `(key, value)` pairs,
/// undoing the exposition format's `\\`, `\"`, and `\n` escapes.
fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let start = pos;
        while pos < bytes.len() && bytes[pos] != b'=' {
            pos += 1;
        }
        if pos >= bytes.len() {
            return Err("label missing '='".to_string());
        }
        let key = s[start..pos].to_string();
        pos += 1;
        if bytes.get(pos) != Some(&b'"') {
            return Err(format!("label '{key}' value not quoted"));
        }
        pos += 1;
        let mut value = String::new();
        loop {
            match bytes.get(pos) {
                None => return Err(format!("label '{key}' value unterminated")),
                Some(b'\\') => {
                    match bytes.get(pos + 1) {
                        Some(b'"') => value.push('"'),
                        Some(b'\\') => value.push('\\'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err(format!("label '{key}' has a bad escape")),
                    }
                    pos += 2;
                }
                Some(b'"') => {
                    pos += 1;
                    break;
                }
                Some(_) => {
                    let c = s[pos..].chars().next().expect("non-empty");
                    value.push(c);
                    pos += c.len_utf8();
                }
            }
        }
        out.push((key, value));
        match bytes.get(pos) {
            None => break,
            Some(b',') => pos += 1,
            _ => return Err("expected ',' between labels".to_string()),
        }
    }
    Ok(out)
}

/// Splits one exposition sample line into `(family, labels, value)`,
/// scanning the optional label set with quote/escape awareness: inside
/// a quoted label value, spaces and `}` are data and `\"`/`\\`/`\n` are
/// escapes. Unterminated quotes or label sets are rejected — which is
/// exactly what un-escaped quotes in a label value degenerate into.
fn split_sample_line(line: &str) -> Result<(&str, Option<&str>, &str), String> {
    let bytes = line.as_bytes();
    let mut pos = 0;
    while pos < bytes.len() && bytes[pos] != b' ' && bytes[pos] != b'{' {
        pos += 1;
    }
    if pos == 0 {
        return Err("sample line has no metric name".to_string());
    }
    let family = &line[..pos];
    let labels = if bytes.get(pos) == Some(&b'{') {
        let start = pos + 1;
        pos += 1;
        let mut in_quotes = false;
        loop {
            match bytes.get(pos) {
                None => {
                    return Err(if in_quotes {
                        "unterminated quote in label value (unescaped '\"'?)".to_string()
                    } else {
                        "unterminated label set".to_string()
                    })
                }
                Some(b'"') => {
                    in_quotes = !in_quotes;
                    pos += 1;
                }
                Some(b'\\') if in_quotes => {
                    pos += 1;
                    // Only an escaped quote/backslash alters scanning;
                    // other escape bytes are judged by `parse_labels`.
                    if matches!(bytes.get(pos), Some(b'"' | b'\\')) {
                        pos += 1;
                    }
                }
                Some(b'}') if !in_quotes => break,
                Some(_) => pos += 1,
            }
        }
        let text = &line[start..pos];
        pos += 1;
        Some(text)
    } else {
        None
    };
    let rest = &line[pos..];
    let Some(value) = rest.strip_prefix(' ') else {
        return Err("sample line has no value".to_string());
    };
    let value = value.trim();
    if value.is_empty() {
        return Err("sample line has no value".to_string());
    }
    Ok((family, labels, value))
}

/// Accumulated samples of one histogram series (one base family + one
/// non-`le` label combination).
#[derive(Default)]
struct HistSeries {
    /// `(le, cumulative count)` in emission order.
    buckets: Vec<(String, f64)>,
    sum: Option<f64>,
    count: Option<f64>,
}

/// Validates a Prometheus-style text page: every sample belongs to a
/// declared `# TYPE` family, every name carries the `mop_` prefix, all
/// expected families are present, histogram series are cumulative and
/// consistent (`_bucket` monotone, `+Inf` == `_count`), and
/// `mop_schema_version` matches.
pub fn validate_prometheus(page: &str) -> Result<(), String> {
    let mut declared: Vec<(String, String)> = Vec::new();
    let mut sampled: Vec<String> = Vec::new();
    let mut schema_version: Option<f64> = None;
    let mut histograms: BTreeMap<(String, String), HistSeries> = BTreeMap::new();

    for (lineno, line) in page.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| format!("prometheus line {}: {msg}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| at("missing family name".to_string()))?;
            let typ = parts
                .next()
                .ok_or_else(|| at("missing family type".to_string()))?;
            if !matches!(typ, "counter" | "gauge" | "histogram") {
                return Err(at(format!("bad family type '{typ}'")));
            }
            if !name.starts_with(PROM_PREFIX) {
                return Err(at(format!("family '{name}' lacks {PROM_PREFIX} prefix")));
            }
            declared.push((name.to_string(), typ.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are fine
        }
        // Sample line: name[{labels}] value. The split must be
        // label-set aware: label *values* legally contain spaces and
        // '}' inside their quotes, so naive first-space / ends-with-'}'
        // parsing either rejects valid exposition or mis-splits it.
        let (family, labels_text, value_part) = split_sample_line(line).map_err(at)?;
        if !family.starts_with(PROM_PREFIX) {
            return Err(at(format!("sample '{family}' lacks {PROM_PREFIX} prefix")));
        }
        let value: f64 = value_part
            .parse()
            .map_err(|_| at(format!("bad sample value '{value_part}'")))?;
        // An exact declaration wins (so a gauge legitimately named
        // `*_count` is not mistaken for a histogram series); otherwise a
        // `_bucket`/`_sum`/`_count` suffix resolves to its histogram base.
        if declared.iter().any(|(d, _)| d == family) {
            // Labels still have to escape cleanly even when the family
            // needs no further interpretation.
            if let Some(text) = labels_text {
                parse_labels(text).map_err(at)?;
            }
            if family == format!("{PROM_PREFIX}schema_version") {
                schema_version = Some(value);
            }
            sampled.push(family.to_string());
            continue;
        }
        let hist = ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
            let base = family.strip_suffix(suffix)?;
            declared
                .iter()
                .any(|(d, t)| d == base && t == "histogram")
                .then(|| (base.to_string(), *suffix))
        });
        let Some((base, suffix)) = hist else {
            return Err(at(format!("sample '{family}' has no # TYPE declaration")));
        };
        let mut labels = match labels_text {
            Some(text) => parse_labels(text).map_err(at)?,
            None => Vec::new(),
        };
        let le = match suffix {
            "_bucket" => {
                let pos = labels
                    .iter()
                    .position(|(k, _)| k == "le")
                    .ok_or_else(|| at(format!("'{family}' bucket sample has no 'le' label")))?;
                let (_, le) = labels.remove(pos);
                if le != "+Inf" && le.parse::<f64>().is_err() {
                    return Err(at(format!("'{family}' has bad le value '{le}'")));
                }
                Some(le)
            }
            _ => None,
        };
        labels.sort();
        let series_key = labels
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect::<Vec<_>>()
            .join(",");
        let series = histograms.entry((base.clone(), series_key)).or_default();
        match suffix {
            "_bucket" => series.buckets.push((le.expect("bucket has le"), value)),
            "_sum" => series.sum = Some(value),
            _ => series.count = Some(value),
        }
        sampled.push(base);
    }

    for ((family, series), hist) in &histograms {
        let fail = |msg: String| format!("prometheus histogram {family}{{{series}}}: {msg}");
        if hist.buckets.is_empty() {
            return Err(fail("no _bucket samples".to_string()));
        }
        for pair in hist.buckets.windows(2) {
            if pair[1].1 < pair[0].1 {
                return Err(fail(format!(
                    "buckets not cumulative: le={} count {} < le={} count {}",
                    pair[1].0, pair[1].1, pair[0].0, pair[0].1
                )));
            }
        }
        let (last_le, last_count) = hist.buckets.last().expect("non-empty");
        if last_le != "+Inf" {
            return Err(fail(format!("last bucket le is '{last_le}', not '+Inf'")));
        }
        let count = hist
            .count
            .ok_or_else(|| fail("missing _count sample".to_string()))?;
        if hist.sum.is_none() {
            return Err(fail("missing _sum sample".to_string()));
        }
        if *last_count != count {
            return Err(fail(format!(
                "+Inf bucket ({last_count}) != _count ({count})"
            )));
        }
    }

    let mut expected: Vec<String> = vec![
        format!("{PROM_PREFIX}schema_version"),
        format!("{PROM_PREFIX}elapsed_nanos"),
    ];
    expected.extend(
        Counter::ALL
            .iter()
            .map(|c| format!("{PROM_PREFIX}{}", c.key())),
    );
    expected.extend(
        Gauge::ALL
            .iter()
            .map(|g| format!("{PROM_PREFIX}{}", g.key())),
    );
    for family in &expected {
        if !sampled.iter().any(|s| s == family) {
            return Err(format!(
                "prometheus page: missing expected family '{family}' (schema drift?)"
            ));
        }
    }
    match schema_version {
        Some(v) if v == SCHEMA_VERSION as f64 => Ok(()),
        Some(v) => Err(format!(
            "prometheus page: schema_version {v} != {SCHEMA_VERSION}"
        )),
        None => Err("prometheus page: no mop_schema_version sample".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_roundtrips_basic_values() {
        let v = parse_json(r#"{"a":[1,2.5,-3],"b":"x\"y","c":true,"d":null}"#).unwrap();
        assert_eq!(v.get("b"), Some(&Json::Str("x\"y".to_string())));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
        match v.get("a") {
            Some(Json::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{}extra").is_err());
        assert!(parse_json("tru").is_err());
    }

    #[test]
    fn validator_rejects_wrong_version() {
        let snap = crate::metrics::MetricsSnapshot {
            schema_version: SCHEMA_VERSION + 1,
            elapsed_nanos: 0,
            counters: Counter::ALL.iter().map(|c| (c.key(), 0)).collect(),
            gauges: Gauge::ALL.iter().map(|g| (g.key(), 0.0)).collect(),
            spans: Vec::new(),
            mutators: Vec::new(),
            opcodes: Vec::new(),
        };
        let line = crate::export::jsonl_line(&snap);
        let err = validate_snapshot_line(&line).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_counter() {
        let snap = crate::metrics::MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            elapsed_nanos: 0,
            counters: Counter::ALL.iter().skip(1).map(|c| (c.key(), 0)).collect(),
            gauges: Gauge::ALL.iter().map(|g| (g.key(), 0.0)).collect(),
            spans: Vec::new(),
            mutators: Vec::new(),
            opcodes: Vec::new(),
        };
        let line = crate::export::jsonl_line(&snap);
        let err = validate_snapshot_line(&line).unwrap_err();
        assert!(err.contains("missing key"), "{err}");
    }

    #[test]
    fn prometheus_validator_rejects_undeclared_sample() {
        let page = "mop_rogue 1\n";
        let err = validate_prometheus(page).unwrap_err();
        assert!(err.contains("no # TYPE"), "{err}");
    }

    fn minimal_page_with(extra: &str) -> String {
        let mut page = format!(
            "# TYPE {p}schema_version gauge\n{p}schema_version {v}\n\
             # TYPE {p}elapsed_nanos gauge\n{p}elapsed_nanos 0\n",
            p = PROM_PREFIX,
            v = SCHEMA_VERSION
        );
        for c in Counter::ALL {
            page.push_str(&format!(
                "# TYPE {p}{k} counter\n{p}{k} 0\n",
                p = PROM_PREFIX,
                k = c.key()
            ));
        }
        for g in Gauge::ALL {
            page.push_str(&format!(
                "# TYPE {p}{k} gauge\n{p}{k} 0\n",
                p = PROM_PREFIX,
                k = g.key()
            ));
        }
        page.push_str(extra);
        page
    }

    #[test]
    fn prometheus_validator_accepts_well_formed_histogram() {
        let page = minimal_page_with(
            "# TYPE mop_h histogram\n\
             mop_h_bucket{span=\"x\",le=\"1\"} 1\n\
             mop_h_bucket{span=\"x\",le=\"+Inf\"} 2\n\
             mop_h_sum{span=\"x\"} 40\n\
             mop_h_count{span=\"x\"} 2\n",
        );
        validate_prometheus(&page).expect("histogram validates");
    }

    #[test]
    fn prometheus_validator_rejects_non_cumulative_histogram() {
        let page = minimal_page_with(
            "# TYPE mop_h histogram\n\
             mop_h_bucket{le=\"1\"} 3\n\
             mop_h_bucket{le=\"+Inf\"} 2\n\
             mop_h_sum 40\n\
             mop_h_count 2\n",
        );
        let err = validate_prometheus(&page).unwrap_err();
        assert!(err.contains("not cumulative"), "{err}");
    }

    #[test]
    fn prometheus_validator_rejects_inf_count_mismatch() {
        let page = minimal_page_with(
            "# TYPE mop_h histogram\n\
             mop_h_bucket{le=\"+Inf\"} 2\n\
             mop_h_sum 40\n\
             mop_h_count 3\n",
        );
        let err = validate_prometheus(&page).unwrap_err();
        assert!(err.contains("!= _count"), "{err}");
    }

    #[test]
    fn prometheus_validator_requires_all_families() {
        let page = format!(
            "# TYPE {p}schema_version gauge\n{p}schema_version {v}\n",
            p = PROM_PREFIX,
            v = SCHEMA_VERSION
        );
        let err = validate_prometheus(&page).unwrap_err();
        assert!(err.contains("missing expected family"), "{err}");
    }

    #[test]
    fn prometheus_validator_accepts_spaces_and_braces_in_label_values() {
        // Escaped quotes/backslashes plus raw spaces and '}' — all legal
        // exposition — used to trip the first-space/ends-with-'}' split.
        let page = minimal_page_with(
            "# TYPE mop_x counter\n\
             mop_x{name=\"a b} c\"} 1\n\
             mop_x{name=\"q\\\"uo\\\\te\"} 2\n\
             mop_x{name=\"line\\nbreak\"} 3\n",
        );
        validate_prometheus(&page).expect("quoted label values validate");
    }

    #[test]
    fn prometheus_validator_rejects_unescaped_quote() {
        // An unescaped quote inside a value desynchronizes the quoting:
        // the scanner runs off the end of the line.
        let page = minimal_page_with("# TYPE mop_x counter\nmop_x{name=\"a\"b\"} 1\n");
        let err = validate_prometheus(&page).unwrap_err();
        assert!(
            err.contains("unterminated") || err.contains("expected ','"),
            "{err}"
        );
    }

    #[test]
    fn prometheus_validator_rejects_bad_escape_in_declared_family() {
        let page = minimal_page_with("# TYPE mop_x counter\nmop_x{name=\"a\\qb\"} 1\n");
        let err = validate_prometheus(&page).unwrap_err();
        assert!(err.contains("bad escape"), "{err}");
    }

    #[test]
    fn prometheus_validator_rejects_unterminated_label_set() {
        let page = minimal_page_with("# TYPE mop_x counter\nmop_x{name=\"a\" 1\n");
        let err = validate_prometheus(&page).unwrap_err();
        assert!(err.contains("unterminated label set"), "{err}");
    }

    fn trace_doc(events: &str) -> String {
        format!(
            "{{\"traceEvents\":[{events}],\"otherData\":{{\
             \"schema_version\":\"{SCHEMA_VERSION}\",\"clock\":\"manual\"}}}}"
        )
    }

    fn trace_event(id: u64, parent: u64) -> String {
        format!(
            "{{\"name\":\"round\",\"ph\":\"X\",\"ts\":0,\"dur\":1,\"pid\":0,\"tid\":0,\
             \"args\":{{\"id\":\"{id}\",\"parent\":\"{parent}\",\
             \"dur_steps\":\"1\",\"wall_ns\":\"0\"}}}}"
        )
    }

    #[test]
    fn trace_validator_accepts_linked_events() {
        let doc = trace_doc(&format!("{},{}", trace_event(1, 0), trace_event(2, 1)));
        validate_trace(&doc).expect("linked events validate");
    }

    #[test]
    fn trace_validator_rejects_dangling_parent() {
        let doc = trace_doc(&trace_event(2, 7));
        let err = validate_trace(&doc).unwrap_err();
        assert!(err.contains("dangling parent id 7"), "{err}");
    }

    #[test]
    fn trace_validator_rejects_duplicate_ids_and_bad_ph() {
        let doc = trace_doc(&format!("{},{}", trace_event(1, 0), trace_event(1, 0)));
        let err = validate_trace(&doc).unwrap_err();
        assert!(err.contains("duplicate id 1"), "{err}");

        let bad_ph = trace_doc(
            "{\"name\":\"x\",\"ph\":\"B\",\"ts\":0,\"dur\":0,\"pid\":0,\"tid\":0,\
             \"args\":{\"id\":\"1\",\"parent\":\"0\"}}",
        );
        let err = validate_trace(&bad_ph).unwrap_err();
        assert!(err.contains("bad ph"), "{err}");
    }

    #[test]
    fn trace_validator_rejects_schema_drift() {
        let doc = format!(
            "{{\"traceEvents\":[],\"otherData\":{{\
             \"schema_version\":\"{}\",\"clock\":\"manual\"}}}}",
            SCHEMA_VERSION + 1
        );
        let err = validate_trace(&doc).unwrap_err();
        assert!(err.contains("schema drift"), "{err}");
    }
}
