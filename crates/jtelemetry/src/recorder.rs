//! The flight recorder: a bounded ring buffer of the most recent
//! spans/events, reset at each round attempt and dumped when the attempt
//! faults — the "moments before the crash" for post-mortem diagnosis.
//!
//! Timestamps are *simulated* time — interpreter steps from
//! [`crate::work`], relative to the last reset — so dumps are
//! deterministic and a journaled campaign stays bit-identical on resume.

use std::collections::VecDeque;

/// Which layer emitted a flight event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// Supervisor round lifecycle (attempt start, quarantine).
    Round,
    /// A mutator application in the fuzzing loop.
    Mutator,
    /// An optimizer phase inside one method compilation.
    Phase,
    /// One simulated JVM execution.
    Vm,
    /// A differential-oracle verdict.
    Oracle,
}

impl FlightKind {
    /// Stable export/journal key.
    pub fn key(&self) -> &'static str {
        match self {
            FlightKind::Round => "round",
            FlightKind::Mutator => "mutator",
            FlightKind::Phase => "phase",
            FlightKind::Vm => "vm",
            FlightKind::Oracle => "oracle",
        }
    }

    /// Inverse of [`FlightKind::key`].
    pub fn from_key(key: &str) -> Option<FlightKind> {
        [
            FlightKind::Round,
            FlightKind::Mutator,
            FlightKind::Phase,
            FlightKind::Vm,
            FlightKind::Oracle,
        ]
        .into_iter()
        .find(|k| k.key() == key)
    }
}

/// One recorded moment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Simulated time (interpreter steps since the last recorder reset).
    pub at_steps: u64,
    /// Emitting layer.
    pub kind: FlightKind,
    /// Short label (phase name, mutator name, JVM name, ...).
    pub label: String,
    /// Free-form context (method label, iteration, seed name, ...).
    pub detail: String,
}

/// The bounded ring buffer itself.
#[derive(Debug)]
pub struct FlightRecorder {
    events: VecDeque<FlightEvent>,
    capacity: usize,
    base_steps: u64,
}

/// Default number of retained events per round attempt.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            events: VecDeque::with_capacity(capacity.min(DEFAULT_FLIGHT_CAPACITY)),
            capacity: capacity.max(1),
            base_steps: 0,
        }
    }

    /// Drops all events and re-bases timestamps at `now_steps`.
    pub fn reset(&mut self, now_steps: u64) {
        self.events.clear();
        self.base_steps = now_steps;
    }

    /// Appends one event, evicting the oldest when full.
    pub fn push(&mut self, now_steps: u64, kind: FlightKind, label: String, detail: String) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(FlightEvent {
            at_steps: now_steps.saturating_sub(self.base_steps),
            kind,
            label,
            detail,
        });
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.events.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(r: &mut FlightRecorder, steps: u64, label: &str) {
        r.push(steps, FlightKind::Phase, label.to_string(), String::new());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5 {
            ev(&mut r, i, &format!("e{i}"));
        }
        let snap = r.snapshot();
        let labels: Vec<&str> = snap.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn reset_rebases_timestamps() {
        let mut r = FlightRecorder::new(8);
        ev(&mut r, 100, "before");
        r.reset(1000);
        ev(&mut r, 1064, "after");
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].at_steps, 64, "relative to the reset base");
    }

    #[test]
    fn kind_keys_roundtrip() {
        for kind in [
            FlightKind::Round,
            FlightKind::Mutator,
            FlightKind::Phase,
            FlightKind::Vm,
            FlightKind::Oracle,
        ] {
            assert_eq!(FlightKind::from_key(kind.key()), Some(kind));
        }
        assert_eq!(FlightKind::from_key("nope"), None);
    }
}
