//! Time sources for span timing.
//!
//! All span durations flow through the [`Clock`] trait so tests can swap
//! the host monotonic clock for a [`ManualClock`] and obtain bit-identical
//! histograms. The flight recorder deliberately does *not* use this clock:
//! its event timestamps are simulated time (interpreter steps from
//! [`crate::work`]), which is deterministic by construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond source.
pub trait Clock {
    /// Nanoseconds since an arbitrary (fixed) origin.
    fn now_nanos(&self) -> u64;

    /// True for hand-advanced (deterministic) clocks. Worker sessions
    /// mirror the coordinator clock's kind, and wall-clock-only trace
    /// lanes are suppressed under a manual clock so traces are
    /// bit-identical at any worker count.
    fn is_manual(&self) -> bool {
        false
    }
}

/// The host's monotonic clock, origin at construction.
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock starting at zero now.
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> MonotonicClock {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A hand-advanced clock for deterministic tests. Cloning yields a handle
/// to the same underlying time, so a test can keep one handle to advance
/// while the telemetry session owns the other.
#[derive(Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock stuck at zero until advanced.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Moves time forward.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    fn is_manual(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_does_not_go_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_shared_between_handles() {
        let c = ManualClock::new();
        let handle = c.clone();
        assert_eq!(c.now_nanos(), 0);
        handle.advance(250);
        assert_eq!(c.now_nanos(), 250);
    }
}
