//! Causal trace layer: parent-linked spans and instants buffered per
//! session and exported as Chrome trace-event JSON (Perfetto-loadable).
//!
//! ## Two lanes
//!
//! Events live in one of two lanes with independent id spaces:
//!
//! * the **round lane** — spans/instants emitted from round execution
//!   (supervisor attempts, fuzz, the differential oracle, optimizer
//!   phases, VM/interpreter runs). Timestamps are *simulated work*
//!   (interpreter steps from [`crate::work`]), expressed relative to the
//!   parent span's open point, so the lane is bit-identical at any
//!   `--jobs`×`--oracle-jobs`: worker-side buffers are folded into the
//!   coordinator in strict merge order by [`crate::absorb_trace`], which
//!   renumbers ids from the coordinator's watermark and re-parents orphan
//!   roots under the coordinator's currently open span — the same
//!   discipline the metrics `absorb`/flight-replay path uses.
//! * the **scheduler lane** — coordinator-only wall-clock events
//!   (dispatch, merge waits, speculation waste). Their content *is*
//!   thread timing, which a [`crate::ManualClock`] defines away, so the
//!   lane is suppressed entirely when the session clock is manual; under
//!   a manual clock a trace contains only the deterministic round lane.
//!
//! Span durations carry both simulated steps (`dur_steps`, deterministic)
//! and session-clock nanoseconds (`dur_nanos`, zero under a manual
//! clock). The exporter ([`crate::export::trace_json`]) lays round-lane
//! roots end to end and reconstructs absolute timestamps from the
//! relative ones.

/// One closed trace event. Spans record their open point relative to
/// their parent (`rel_steps`) plus a duration; instants are
/// zero-duration markers attached to the enclosing open span.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Lane-unique id, assigned at span open (or instant emission) in
    /// deterministic program order, starting at 1.
    pub id: u64,
    /// Id of the enclosing span, 0 for roots.
    pub parent: u64,
    /// Event name (span kind: `round`, `attempt`, `differential`, ...).
    pub name: &'static str,
    /// Identity/context pairs (round, attempt, seed, detail, ...).
    pub args: Vec<(&'static str, String)>,
    /// Round lane: work-meter steps between the parent's open point and
    /// this event's open point (0 for roots). Scheduler lane: absolute
    /// session-clock nanoseconds at open.
    pub rel_steps: u64,
    /// Work-meter steps elapsed inside the span (0 for instants and for
    /// scheduler-lane events).
    pub dur_steps: u64,
    /// Session-clock nanoseconds elapsed inside the span (0 under a
    /// manual clock).
    pub dur_nanos: u64,
    /// True for zero-duration instant markers.
    pub instant: bool,
}

/// A span still open on the session's trace stack.
pub(crate) struct OpenSpan {
    pub(crate) id: u64,
    pub(crate) name: &'static str,
    pub(crate) args: Vec<(&'static str, String)>,
    /// Work meter at open.
    pub(crate) open_steps: u64,
    /// Session clock at open.
    pub(crate) open_nanos: u64,
}

/// Per-session trace storage: closed events in close order plus the
/// stack of open spans, for each lane.
#[derive(Default)]
pub(crate) struct TraceBuf {
    /// Next round-lane id to assign (ids start at 1).
    pub(crate) next_id: u64,
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) open: Vec<OpenSpan>,
    /// Next scheduler-lane id to assign.
    pub(crate) sched_next_id: u64,
    pub(crate) sched: Vec<TraceEvent>,
    pub(crate) sched_open: Vec<OpenSpan>,
}

impl TraceBuf {
    pub(crate) fn new() -> TraceBuf {
        TraceBuf {
            next_id: 1,
            events: Vec::new(),
            open: Vec::new(),
            sched_next_id: 1,
            sched: Vec::new(),
            sched_open: Vec::new(),
        }
    }

    /// Folds a worker-session round-lane buffer into this one in merge
    /// order: ids are renumbered from this buffer's watermark (so the
    /// merged sequence is exactly what a serial run would have
    /// assigned), non-root parents follow their span, and orphan roots
    /// are attached under the currently open span with their open point
    /// re-expressed against the *merging* thread's meter (`now_steps`) —
    /// mirroring how the oracle replays flight events at the pre-run
    /// meter value before crediting work.
    pub(crate) fn absorb(&mut self, events: &[TraceEvent], now_steps: u64) {
        if events.is_empty() {
            return;
        }
        let offset = self.next_id - 1;
        let (attach_parent, attach_rel) = match self.open.last() {
            Some(open) => (open.id, now_steps.saturating_sub(open.open_steps)),
            None => (0, 0),
        };
        let mut max_id = self.next_id - 1;
        for event in events {
            let mut merged = event.clone();
            merged.id = event.id + offset;
            max_id = max_id.max(merged.id);
            if event.parent != 0 {
                merged.parent = event.parent + offset;
            } else {
                merged.parent = attach_parent;
                if attach_parent != 0 {
                    merged.rel_steps = attach_rel;
                }
            }
            self.events.push(merged);
        }
        self.next_id = max_id + 1;
    }
}
