//! Cooperative cancellation for hang containment.
//!
//! The campaign supervisor arms a wall-clock watchdog around every round
//! attempt. When the deadline passes, the watchdog flips the attempt's
//! [`CancelToken`]; deep execution loops (the `jexec` interpreter, the
//! injected-hang fault in `jvmsim`) poll the **thread-local current
//! token** every few thousand steps via [`cancelled`] and abort by
//! panicking with [`TIMEOUT_PANIC_MARKER`]. The supervisor's existing
//! panic boundary catches that unwind and classifies it as a round
//! timeout, feeding the normal retry/quarantine taxonomy.
//!
//! This module lives in `jtelemetry` (the bottom of the crate graph) so
//! both the execution substrate and the supervisor can see it without a
//! new dependency edge. The poll is polled at a coarse stride (the
//! interpreter checks every 4096 steps), so its cost — one thread-local
//! borrow and, with a token installed, one atomic load — is noise.
//!
//! Determinism: cancellation only fires on wall-clock timeouts, which
//! are inherently nondeterministic for borderline workloads — but the
//! *outcome* recorded by the supervisor (a timeout failure naming the
//! configured limit, never the elapsed time) is stable, and the injected
//! `Hang` fault used by tests blocks forever, so it times out at every
//! jobs setting and journals identically.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Marker prefix carried by the panic a cancelled execution raises. The
/// campaign supervisor classifies panic payloads by this prefix.
pub const TIMEOUT_PANIC_MARKER: &str = "mop-timeout";

/// A shared cancellation flag: cloned into a watchdog, installed on the
/// executing thread.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flips the token; every installer observes it on the next poll.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

thread_local! {
    /// Stack of installed tokens; the top is the thread's current one.
    static CURRENT: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// Uninstalls the token it guards (restoring any outer token) on drop.
pub struct Guard(());

/// Installs `token` on this thread. Execution loops on this thread poll
/// it via [`cancelled`] until the returned [`Guard`] drops. Guards nest:
/// dropping the inner one re-exposes the outer token.
pub fn install(token: &CancelToken) -> Guard {
    CURRENT.with(|c| c.borrow_mut().push(token.clone()));
    Guard(())
}

impl Drop for Guard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// The token currently installed on this thread, if any — the oracle's
/// scatter tasks re-install it on whichever pool thread runs them.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// True when this thread's current token has been cancelled.
pub fn cancelled() -> bool {
    CURRENT.with(|c| c.borrow().last().is_some_and(CancelToken::is_cancelled))
}

/// Polls the current token and panics with [`TIMEOUT_PANIC_MARKER`] when
/// it is cancelled. `what` names the aborted activity in the payload.
pub fn check(what: &str) {
    if cancelled() {
        panic!("{TIMEOUT_PANIC_MARKER}: {what} cancelled by watchdog");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_token_means_never_cancelled() {
        assert!(!cancelled());
        assert!(current().is_none());
        check("idle"); // must not panic
    }

    #[test]
    fn install_poll_and_restore() {
        let token = CancelToken::new();
        {
            let _guard = install(&token);
            assert!(!cancelled());
            token.cancel();
            assert!(cancelled());
            assert!(current().unwrap().is_cancelled());
        }
        assert!(!cancelled(), "guard drop restores the previous state");
    }

    #[test]
    fn nested_guards_restore_outer_token() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        let _g1 = install(&outer);
        outer.cancel();
        {
            let _g2 = install(&inner);
            assert!(!cancelled(), "inner token masks the outer");
        }
        assert!(cancelled(), "outer token visible again");
    }

    #[test]
    fn check_panics_with_the_marker() {
        let token = CancelToken::new();
        let _guard = install(&token);
        token.cancel();
        let caught = std::panic::catch_unwind(|| check("unit test"));
        let payload = caught.unwrap_err();
        let text = payload.downcast_ref::<String>().unwrap();
        assert!(text.starts_with(TIMEOUT_PANIC_MARKER), "{text}");
    }

    #[test]
    fn token_crosses_threads() {
        let token = CancelToken::new();
        let clone = token.clone();
        let handle = std::thread::spawn(move || {
            let _guard = install(&clone);
            while !cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(handle.join().unwrap());
    }
}
