//! `mopfuzzerd` — the MopFuzzer fleet daemon.
//!
//! One process runs many campaigns for many tenants and exposes a small
//! dependency-free HTTP/1.1 control and metrics API:
//!
//! | Route | Effect |
//! |---|---|
//! | `POST /campaigns` | submit a campaign (JSON spec; see [`CampaignSpec`]) |
//! | `GET /campaigns` | every campaign's status, id-ordered |
//! | `GET /campaigns/{id}` | one campaign's status |
//! | `POST /campaigns/{id}/cancel` | stop one campaign at its next round boundary |
//! | `GET /metrics` | live Prometheus page aggregated across tenants, plus per-tenant `{campaign="id"}` samples |
//! | `GET /healthz` | liveness probe (`ok`) |
//!
//! Campaigns run on per-tenant driver threads multiplexed onto the one
//! process-wide work pool (capacity = the max of the tenants' `jobs`,
//! never the sum), gated by a FIFO admission semaphore of `max_active`
//! slots. Each campaign journals under its own tenant directory using
//! the same library calls and defaults as the CLI, so its journal is
//! byte-identical to a standalone `mopfuzzer` run at the same seed and
//! worker counts. A drain (SIGTERM, or [`Server::drain`]) stops every
//! running campaign at its next round boundary with journals flushed;
//! `mopfuzzer serve --resume` re-adopts and finishes them
//! bit-identically. See `DESIGN.md` ("Fleet service") for the full
//! lifecycle.

mod http;
mod registry;

pub use http::{esc, read_request, respond, Request};
pub use registry::{
    CampaignSpec, CampaignStatus, Registry, State, CAMPAIGNS_DIR, JOURNAL_FILE, SPEC_FILE,
    STATUS_FILE,
};

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration (the parsed form of `mopfuzzerd --listen ..
/// --data-dir .. [--max-active N] [--resume]`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Bind address, e.g. `127.0.0.1:7077` (port 0 picks a free port).
    pub listen: String,
    /// Root of all campaign state (`<data-dir>/campaigns/<id>/..`).
    pub data_dir: PathBuf,
    /// Campaigns allowed to run concurrently; others queue FIFO.
    pub max_active: usize,
    /// Re-adopt incomplete campaigns left by a previous daemon: resume
    /// their journals, start the still-queued ones.
    pub resume: bool,
}

impl Config {
    pub fn new(listen: impl Into<String>, data_dir: impl Into<PathBuf>) -> Config {
        Config {
            listen: listen.into(),
            data_dir: data_dir.into(),
            max_active: 4,
            resume: false,
        }
    }
}

/// A running daemon: the bound listener, its accept thread, and the
/// campaign registry. Also usable in-process (tests bind port 0).
pub struct Server {
    addr: SocketAddr,
    registry: Arc<Registry>,
    stop_accept: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, adopts existing campaign state, and starts serving.
    pub fn start(config: Config) -> Result<Server, String> {
        let registry = Registry::open(&config.data_dir, config.max_active, config.resume)?;
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| format!("cannot bind {}: {e}", config.listen))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot configure listener: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;
        let stop_accept = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let registry = registry.clone();
            let stop = stop_accept.clone();
            std::thread::Builder::new()
                .name("mopfuzzerd-accept".to_string())
                .spawn(move || accept_loop(listener, registry, stop))
                .map_err(|e| format!("cannot spawn accept thread: {e}"))?
        };
        Ok(Server {
            addr,
            registry,
            stop_accept,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct registry access for in-process callers (tests, the CLI).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Stops accepting and waits for every campaign to end *naturally* —
    /// running and queued tenants all run to completion.
    pub fn shutdown(mut self) {
        self.stop_accepting();
        self.registry.join();
    }

    /// Graceful drain: stops accepting, stops every running campaign at
    /// its next round boundary (journals flushed, state `interrupted`),
    /// leaves queued tenants queued, and waits for the driver threads.
    /// A later `--resume` daemon picks all of them back up.
    pub fn drain(mut self) {
        self.stop_accepting();
        self.registry.drain();
        self.registry.join();
    }

    fn stop_accepting(&mut self) {
        self.stop_accept.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accept.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, registry: Arc<Registry>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let registry = registry.clone();
                // One short-lived thread per request: the control plane
                // sees a handful of requests per campaign, not traffic.
                let _ = std::thread::Builder::new()
                    .name("mopfuzzerd-conn".to_string())
                    .spawn(move || handle_connection(stream, &registry));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, registry: &Arc<Registry>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    match read_request(&mut stream) {
        Ok(request) => {
            let (status, content_type, body) = route(registry, &request);
            respond(&mut stream, status, content_type, &body);
        }
        Err(e) => respond(
            &mut stream,
            400,
            "application/json",
            &format!("{{\"error\":\"{}\"}}\n", esc(&e)),
        ),
    }
}

/// Maps one request to a response. Pure with respect to the connection,
/// so unit tests can exercise the whole API without sockets.
pub fn route(registry: &Arc<Registry>, request: &Request) -> (u16, &'static str, String) {
    const JSON: &str = "application/json";
    const TEXT: &str = "text/plain; charset=utf-8";
    let method = request.method.as_str();
    match (method, request.path.as_str()) {
        ("GET", "/healthz") => (200, TEXT, "ok\n".to_string()),
        ("GET", "/metrics") => {
            let page = jtelemetry::export::prometheus_fleet(&registry.metrics());
            (200, TEXT, page)
        }
        ("GET", "/campaigns") => {
            let statuses: Vec<String> = registry
                .statuses()
                .iter()
                .map(CampaignStatus::to_json)
                .collect();
            (200, JSON, format!("[{}]\n", statuses.join(",")))
        }
        ("POST", "/campaigns") => {
            match CampaignSpec::from_json(&request.body).and_then(|spec| registry.submit(spec)) {
                Ok(status) => (201, JSON, status.to_json() + "\n"),
                Err(e) => (400, JSON, format!("{{\"error\":\"{}\"}}\n", esc(&e))),
            }
        }
        (_, path) => {
            let Some(rest) = path.strip_prefix("/campaigns/") else {
                return (404, JSON, "{\"error\":\"no such route\"}\n".to_string());
            };
            match (method, rest.strip_suffix("/cancel")) {
                ("POST", Some(id)) => match registry.cancel(id) {
                    Some(status) => (200, JSON, status.to_json() + "\n"),
                    None => (404, JSON, unknown_campaign(id)),
                },
                ("GET", None) => match registry.status(rest) {
                    Some(status) => (200, JSON, status.to_json() + "\n"),
                    None => (404, JSON, unknown_campaign(rest)),
                },
                _ => (
                    405,
                    JSON,
                    "{\"error\":\"method not allowed\"}\n".to_string(),
                ),
            }
        }
    }
}

fn unknown_campaign(id: &str) -> String {
    format!("{{\"error\":\"no campaign {}\"}}\n", esc(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicU64;
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mopfuzzerd-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn get(registry: &Arc<Registry>, path: &str) -> (u16, String) {
        let (status, _, body) = route(
            registry,
            &Request {
                method: "GET".to_string(),
                path: path.to_string(),
                body: String::new(),
            },
        );
        (status, body)
    }

    fn post(registry: &Arc<Registry>, path: &str, body: &str) -> (u16, String) {
        let (status, _, body) = route(
            registry,
            &Request {
                method: "POST".to_string(),
                path: path.to_string(),
                body: body.to_string(),
            },
        );
        (status, body)
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let dir = temp_dir("routes");
        let registry = Registry::open(&dir, 1, false).unwrap();
        assert_eq!(get(&registry, "/healthz"), (200, "ok\n".to_string()));
        assert_eq!(get(&registry, "/nope").0, 404);
        assert_eq!(get(&registry, "/campaigns/c9999").0, 404);
        assert_eq!(post(&registry, "/campaigns/c9999/cancel", "").0, 404);
        registry.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_fleet_metrics_page_validates() {
        let dir = temp_dir("metrics");
        let registry = Registry::open(&dir, 1, false).unwrap();
        let (status, page) = get(&registry, "/metrics");
        assert_eq!(status, 200);
        jtelemetry::schema::validate_prometheus(&page).unwrap();
        registry.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn submit_runs_to_done_and_rejects_bad_specs() {
        let dir = temp_dir("submit");
        let registry = Registry::open(&dir, 2, false).unwrap();
        let (status, body) = post(
            &registry,
            "/campaigns",
            "{\"rounds\": 2, \"iterations\": 4, \"jobs\": 1, \"oracle_jobs\": 1}",
        );
        assert_eq!(status, 201, "{body}");
        assert!(body.contains("\"id\":\"c0001\""), "{body}");
        assert_eq!(post(&registry, "/campaigns", "{\"iterations\":1}").0, 400);
        registry.join();
        let (_, body) = get(&registry, "/campaigns/c0001");
        assert!(body.contains("\"state\":\"done\""), "{body}");
        assert!(body.contains("\"completed_rounds\":2"), "{body}");
        // The journal landed in the tenant directory and parses.
        let journal = dir.join(CAMPAIGNS_DIR).join("c0001").join(JOURNAL_FILE);
        let contents = mopfuzzer::read_journal(&journal).unwrap();
        assert_eq!(contents.records.len(), 2);
        // /metrics now carries the tenant label and still validates.
        let (_, page) = get(&registry, "/metrics");
        jtelemetry::schema::validate_prometheus(&page).unwrap();
        assert!(page.contains("{campaign=\"c0001\"}"), "{page}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_stops_a_queued_campaign() {
        let dir = temp_dir("cancel");
        let registry = Registry::open(&dir, 1, false).unwrap();
        // Slot 1 is taken by a short campaign; the second queues.
        post(
            &registry,
            "/campaigns",
            "{\"rounds\": 1, \"iterations\": 2, \"jobs\": 1, \"oracle_jobs\": 1}",
        );
        let (status, body) = post(
            &registry,
            "/campaigns",
            "{\"rounds\": 30, \"iterations\": 2, \"jobs\": 1, \"oracle_jobs\": 1}",
        );
        assert_eq!(status, 201, "{body}");
        let (status, body) = post(&registry, "/campaigns/c0002/cancel", "");
        assert_eq!(status, 200, "{body}");
        registry.join();
        let (_, body) = get(&registry, "/campaigns/c0002");
        assert!(body.contains("\"state\":\"cancelled\""), "{body}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn server_binds_and_answers_over_tcp() {
        use std::io::{Read, Write};
        let dir = temp_dir("tcp");
        let server = Server::start(Config::new("127.0.0.1:0", &dir)).unwrap();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: d\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.ends_with("ok\n"), "{response}");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
