//! The fleet daemon binary (normally started as `mopfuzzer serve`).
//!
//! ```text
//! mopfuzzerd --data-dir DIR [--listen ADDR] [--max-active N] [--resume]
//! ```
//!
//! Runs until SIGTERM/SIGINT, then drains: every running campaign stops
//! at its next round boundary with its journal flushed, queued ones stay
//! queued, and a later `--resume` daemon picks all of them back up
//! bit-identically.

use mopfuzzerd::{Config, Server};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static STOP: AtomicBool = AtomicBool::new(false);

/// The handler only sets a flag (async-signal-safe); the main loop does
/// the actual drain outside signal context.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }
    // `signal(2)` declared directly: the build is offline and carries no
    // libc crate.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn print_usage() {
    eprintln!(
        "mopfuzzerd — the MopFuzzer fleet daemon\n\
         \n\
         USAGE:\n\
           mopfuzzerd --data-dir DIR [--listen ADDR] [--max-active N] [--resume]\n\
         \n\
         OPTIONS:\n\
           --data-dir DIR    root for campaign state (specs, statuses, journals)\n\
           --listen ADDR     bind address (default 127.0.0.1:7077; port 0 = any free port)\n\
           --max-active N    campaigns running concurrently; others queue FIFO (default 4)\n\
           --resume          re-adopt incomplete campaigns from a previous daemon:\n\
                             resume their journals bit-identically, start queued ones\n\
         \n\
         API:\n\
           POST /campaigns               submit {{\"rounds\":R[,\"seed\":S,\"iterations\":I,\n\
                                         \"corpus\":DIR,\"jobs\":J,\"oracle_jobs\":K,\n\
                                         \"round_timeout_ms\":MS]}}\n\
           GET  /campaigns[/{{id}}]        status (state, round progress, bugs, journal)\n\
           POST /campaigns/{{id}}/cancel   stop one campaign at its next round boundary\n\
           GET  /metrics                 Prometheus page: aggregate + per-campaign labels\n\
           GET  /healthz                 liveness probe\n\
         \n\
         SIGNALS:\n\
           SIGINT/SIGTERM    drain — running campaigns stop at their round\n\
                             boundaries, journals flush, then the daemon exits 0"
    );
}

fn parse_config(args: &[String]) -> Result<Config, String> {
    let mut listen = "127.0.0.1:7077".to_string();
    let mut data_dir = None;
    let mut max_active = 4usize;
    let mut resume = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--resume" => resume = true,
            "--listen" => {
                listen = it
                    .next()
                    .ok_or_else(|| "--listen needs a value".to_string())?
                    .clone();
            }
            "--data-dir" => {
                data_dir = Some(
                    it.next()
                        .ok_or_else(|| "--data-dir needs a value".to_string())?
                        .clone(),
                );
            }
            "--max-active" => {
                max_active = it
                    .next()
                    .ok_or_else(|| "--max-active needs a value".to_string())?
                    .parse()
                    .map_err(|_| "bad --max-active".to_string())?;
                if max_active == 0 {
                    return Err("bad --max-active (must be >= 1)".to_string());
                }
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    let data_dir = data_dir.ok_or_else(|| "--data-dir is required".to_string())?;
    Ok(Config {
        listen,
        data_dir: data_dir.into(),
        max_active,
        resume,
    })
}

fn main() -> ExitCode {
    mopfuzzer::interrupt::reset();
    install_signal_handlers();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let config = match parse_config(&args) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: {e}\n");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    let data_dir = config.data_dir.clone();
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The address line goes to stdout so scripts can scrape the bound
    // port (important with --listen 127.0.0.1:0).
    println!(
        "mopfuzzerd listening on {} (data dir {})",
        server.addr(),
        data_dir.display()
    );
    while !STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("mopfuzzerd: drain requested; stopping campaigns at round boundaries");
    server.drain();
    eprintln!("mopfuzzerd: drained; resume incomplete campaigns with --resume");
    ExitCode::SUCCESS
}
