//! A deliberately small HTTP/1.1 server-side codec.
//!
//! The fleet API needs exactly what a scraper or a `curl` script sends:
//! one request per connection, a request line, a handful of headers, an
//! optional `Content-Length` body. The build is offline (no hyper, no
//! tokio), and the control plane is low-traffic by construction — one
//! request per campaign submission plus periodic metric scrapes — so a
//! blocking thread-per-connection codec over `std::net` is the whole
//! implementation. Responses always close the connection, which keeps
//! the state machine one-shot and lets clients rely on EOF.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Longest accepted head (request line + headers), and longest body.
/// Campaign specs are a few hundred bytes; both caps are generous.
const MAX_HEAD: usize = 64 * 1024;
const MAX_BODY: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    /// Path without query string.
    pub path: String,
    pub body: String,
}

/// Reads one request from `stream`, answering `100 Continue` when the
/// client asks for it (curl does for larger bodies).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err("request head too large".to_string());
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default();
    if method.is_empty() || target.is_empty() {
        return Err(format!("malformed request line {request_line:?}"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    let mut content_length = 0usize;
    let mut expects_continue = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| format!("bad content-length {value:?}"))?;
        } else if name.eq_ignore_ascii_case("expect") && value.eq_ignore_ascii_case("100-continue")
        {
            expects_continue = true;
        }
    }
    if content_length > MAX_BODY {
        return Err("request body too large".to_string());
    }
    if expects_continue {
        let _ = stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one response and leaves the connection for the caller to drop.
pub fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Escapes a string for embedding in a JSON document (the daemon writes
/// all of its JSON by hand, like every other crate in the workspace).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &[u8]) -> Result<Request, String> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Keep the socket open until the server is done parsing.
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream);
        respond(&mut stream, 200, "text/plain", "ok");
        drop(stream);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_request_with_body() {
        let req = round_trip(
            b"POST /campaigns?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 12\r\n\r\n{\"rounds\":2}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/campaigns");
        assert_eq!(req.body, "{\"rounds\":2}");
    }

    #[test]
    fn parses_bodyless_get() {
        let req = round_trip(b"GET /healthz HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.body, "");
    }

    #[test]
    fn rejects_garbage() {
        assert!(round_trip(b"\r\n\r\n").is_err());
    }

    #[test]
    fn escapes_json_strings() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
