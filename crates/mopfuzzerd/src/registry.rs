//! The campaign registry: specs, statuses, persistence, and the
//! scheduler that multiplexes tenants onto one process.
//!
//! Each submitted campaign becomes a **tenant**: a directory under
//! `DATA_DIR/campaigns/<id>/` holding its immutable `spec.json`, an
//! atomically-rewritten `status.json`, and the campaign's JSONL journal.
//! A tenant runs on its own driver thread, so the per-thread machinery
//! the CLI relies on — the `jtelemetry` session workers attribute their
//! metrics to, and the thread-local cancel flag
//! ([`mopfuzzer::interrupt::set_local`]) — isolates tenants from each
//! other for free. All tenants share the one process-wide work pool;
//! each campaign asks it for `jobs` capacity exactly as a standalone run
//! would, so pool capacity is the **max** of the tenants' worker counts,
//! never the sum.
//!
//! The scheduler itself is a counting semaphore: at most `max_active`
//! campaigns run concurrently, the rest queue FIFO on their driver
//! threads. Journals are written by the exact same library calls the
//! CLI makes with the same defaults, which is what keeps a daemon
//! campaign's journal byte-identical to `mopfuzzer --rounds .. --rng ..
//! --journal ..` at the same seed and worker counts (test-enforced).
//!
//! Lifecycle: `queued → running → done`, with three other exits —
//! `cancelled` (the tenant's cancel endpoint fired), `interrupted` (a
//! daemon-wide drain stopped it at a round boundary; `serve --resume`
//! re-adopts it and continues the journal bit-identically), and
//! `failed` (the campaign returned an error).

use crate::http::esc;
use jtelemetry::schema::{parse_json, Json};
use jtelemetry::MetricsSnapshot;
use jvmsim::JvmSpec;
use mopfuzzer::{
    resume_campaign_extended, run_campaign_with_journal_observed, run_corpus_campaign,
    CampaignConfig, CampaignObserver, CampaignResult, CorpusOptions, SupervisorConfig, Variant,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// File names inside a tenant directory.
pub const SPEC_FILE: &str = "spec.json";
pub const STATUS_FILE: &str = "status.json";
pub const JOURNAL_FILE: &str = "journal.jsonl";
/// Subdirectory of the data dir holding one directory per tenant.
pub const CAMPAIGNS_DIR: &str = "campaigns";

/// `--jobs` default, mirroring the CLI: every hardware thread.
fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// `--oracle-jobs` default, mirroring the CLI: leftover threads, min 1.
fn default_oracle_jobs(jobs: usize) -> usize {
    default_jobs().saturating_sub(jobs).max(1)
}

/// One tenant's campaign parameters, resolved to the same defaults the
/// CLI resolves (that resolution is what the journal-equivalence
/// guarantee leans on). Serialized fully resolved into `spec.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Supervised rounds to run (required, >= 1).
    pub rounds: usize,
    /// Campaign RNG seed (`"seed"`; default 0).
    pub rng_seed: u64,
    /// Mutation iterations per seed (default 50, the paper's setting).
    pub iterations: usize,
    /// Corpus store directory; `None` fuzzes the built-in corpus.
    pub corpus: Option<PathBuf>,
    /// Round-level worker threads (default: all hardware threads).
    pub jobs: usize,
    /// Oracle worker threads (default: leftover hardware threads, min 1).
    pub oracle_jobs: usize,
    /// Wall-clock round timeout in milliseconds, if any.
    pub round_timeout_ms: Option<u64>,
}

fn field_u64(json: &Json, key: &str) -> Result<Option<u64>, String> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) if n.fract() == 0.0 && *n >= 0.0 => Ok(Some(*n as u64)),
        Some(_) => Err(format!("\"{key}\" must be a non-negative integer")),
    }
}

impl CampaignSpec {
    /// Parses a submission body, rejecting unknown keys so a typo'd
    /// option fails loudly instead of silently running with defaults.
    pub fn from_json(text: &str) -> Result<CampaignSpec, String> {
        let json = parse_json(text)?;
        let Json::Obj(map) = &json else {
            return Err("campaign spec must be a JSON object".to_string());
        };
        const KNOWN: [&str; 7] = [
            "rounds",
            "seed",
            "iterations",
            "corpus",
            "jobs",
            "oracle_jobs",
            "round_timeout_ms",
        ];
        for key in map.keys() {
            if !KNOWN.contains(&key.as_str()) {
                return Err(format!("unknown spec field \"{key}\""));
            }
        }
        let rounds = field_u64(&json, "rounds")?
            .ok_or_else(|| "\"rounds\" is required".to_string())? as usize;
        if rounds == 0 {
            return Err("\"rounds\" must be >= 1".to_string());
        }
        let corpus = match json.get("corpus") {
            None | Some(Json::Null) => None,
            Some(Json::Str(dir)) => Some(PathBuf::from(dir)),
            Some(_) => return Err("\"corpus\" must be a string".to_string()),
        };
        let jobs = match field_u64(&json, "jobs")? {
            Some(0) => return Err("\"jobs\" must be >= 1".to_string()),
            Some(jobs) => jobs as usize,
            None => default_jobs(),
        };
        let oracle_jobs = match field_u64(&json, "oracle_jobs")? {
            Some(0) => return Err("\"oracle_jobs\" must be >= 1".to_string()),
            Some(jobs) => jobs as usize,
            None => default_oracle_jobs(jobs),
        };
        Ok(CampaignSpec {
            rounds,
            rng_seed: field_u64(&json, "seed")?.unwrap_or(0),
            iterations: field_u64(&json, "iterations")?.unwrap_or(50) as usize,
            corpus,
            jobs,
            oracle_jobs,
            round_timeout_ms: field_u64(&json, "round_timeout_ms")?,
        })
    }

    /// The resolved spec, in the same shape `from_json` accepts.
    pub fn to_json(&self) -> String {
        let corpus = match &self.corpus {
            Some(dir) => format!("\"{}\"", esc(&dir.display().to_string())),
            None => "null".to_string(),
        };
        let timeout = match self.round_timeout_ms {
            Some(ms) => ms.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"rounds\":{},\"seed\":{},\"iterations\":{},\"corpus\":{corpus},\
             \"jobs\":{},\"oracle_jobs\":{},\"round_timeout_ms\":{timeout}}}",
            self.rounds, self.rng_seed, self.iterations, self.jobs, self.oracle_jobs,
        )
    }
}

/// Where a tenant is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    Queued,
    Running,
    Done,
    Cancelled,
    /// Stopped at a round boundary by a daemon drain; the journal
    /// resumes bit-identically under `serve --resume`.
    Interrupted,
    Failed,
}

impl State {
    pub fn as_str(&self) -> &'static str {
        match self {
            State::Queued => "queued",
            State::Running => "running",
            State::Done => "done",
            State::Cancelled => "cancelled",
            State::Interrupted => "interrupted",
            State::Failed => "failed",
        }
    }

    fn from_str(s: &str) -> Result<State, String> {
        Ok(match s {
            "queued" => State::Queued,
            "running" => State::Running,
            "done" => State::Done,
            "cancelled" => State::Cancelled,
            "interrupted" => State::Interrupted,
            "failed" => State::Failed,
            other => return Err(format!("unknown campaign state {other:?}")),
        })
    }

    /// Whether the campaign can never run again.
    pub fn terminal(&self) -> bool {
        matches!(self, State::Done | State::Cancelled | State::Failed)
    }
}

/// A tenant's live status — what `GET /campaigns/{id}` reports and what
/// `status.json` persists (atomically, once per round and per state
/// transition, so a crashed daemon's successor sees current truth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignStatus {
    pub id: String,
    pub state: State,
    pub rounds: usize,
    pub completed_rounds: usize,
    pub bugs: usize,
    pub executions: u64,
    pub error: Option<String>,
    pub journal: PathBuf,
}

impl CampaignStatus {
    pub fn to_json(&self) -> String {
        let error = match &self.error {
            Some(e) => format!("\"{}\"", esc(e)),
            None => "null".to_string(),
        };
        format!(
            "{{\"id\":\"{}\",\"state\":\"{}\",\"rounds\":{},\"completed_rounds\":{},\
             \"bugs\":{},\"executions\":{},\"error\":{error},\"journal\":\"{}\"}}",
            esc(&self.id),
            self.state.as_str(),
            self.rounds,
            self.completed_rounds,
            self.bugs,
            self.executions,
            esc(&self.journal.display().to_string()),
        )
    }

    fn from_json(text: &str) -> Result<CampaignStatus, String> {
        let json = parse_json(text)?;
        let str_field = |key: &str| -> Result<String, String> {
            match json.get(key) {
                Some(Json::Str(s)) => Ok(s.clone()),
                _ => Err(format!("status is missing \"{key}\"")),
            }
        };
        let state = State::from_str(&str_field("state")?)?;
        Ok(CampaignStatus {
            id: str_field("id")?,
            state,
            rounds: field_u64(&json, "rounds")?.unwrap_or(0) as usize,
            completed_rounds: field_u64(&json, "completed_rounds")?.unwrap_or(0) as usize,
            bugs: field_u64(&json, "bugs")?.unwrap_or(0) as usize,
            executions: field_u64(&json, "executions")?.unwrap_or(0),
            error: match json.get("error") {
                Some(Json::Str(e)) => Some(e.clone()),
                _ => None,
            },
            journal: PathBuf::from(str_field("journal")?),
        })
    }
}

/// One campaign: spec, live status, cancel wiring, and its latest
/// telemetry snapshot (refreshed at every round boundary, so `/metrics`
/// is live without touching the driver thread).
struct Tenant {
    id: String,
    dir: PathBuf,
    spec: CampaignSpec,
    /// The driver thread's stop flag (installed as the thread-local
    /// interrupt); set by cancel and by drain.
    stop: Arc<AtomicBool>,
    /// Distinguishes a cancel (terminal) from a drain (resumable).
    cancelled: AtomicBool,
    status: Mutex<CampaignStatus>,
    metrics: Mutex<Option<MetricsSnapshot>>,
}

impl Tenant {
    fn persist_status(&self) {
        let (text, path) = {
            let status = self.status.lock().unwrap_or_else(|e| e.into_inner());
            (status.to_json(), self.dir.join(STATUS_FILE))
        };
        // tmp + rename: a crash leaves either the old or the new status,
        // never a torn one.
        let tmp = self.dir.join("status.json.tmp");
        let write =
            std::fs::write(&tmp, text.as_bytes()).and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = write {
            eprintln!("warning: cannot persist {}: {e}", path.display());
        }
    }

    fn set_state(&self, state: State) {
        self.status.lock().unwrap_or_else(|e| e.into_inner()).state = state;
        self.persist_status();
    }
}

/// The registry: all tenants, the admission semaphore, and the driver
/// threads.
pub struct Registry {
    campaigns_dir: PathBuf,
    max_active: usize,
    draining: AtomicBool,
    active: Mutex<usize>,
    admitted: Condvar,
    tenants: Mutex<Vec<Arc<Tenant>>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Registry {
    /// Opens (creating if needed) the registry under `data_dir`. Existing
    /// tenant directories are loaded so ids never collide and finished
    /// campaigns stay listed; incomplete ones are re-adopted (their
    /// journals resumed, queued ones started) only when `resume` is set.
    pub fn open(data_dir: &Path, max_active: usize, resume: bool) -> Result<Arc<Registry>, String> {
        let campaigns_dir = data_dir.join(CAMPAIGNS_DIR);
        std::fs::create_dir_all(&campaigns_dir)
            .map_err(|e| format!("cannot create {}: {e}", campaigns_dir.display()))?;
        let registry = Arc::new(Registry {
            campaigns_dir,
            max_active: max_active.max(1),
            draining: AtomicBool::new(false),
            active: Mutex::new(0),
            admitted: Condvar::new(),
            tenants: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
        });
        registry.adopt_existing(resume)?;
        Ok(registry)
    }

    fn adopt_existing(self: &Arc<Registry>, resume: bool) -> Result<(), String> {
        let Ok(entries) = std::fs::read_dir(&self.campaigns_dir) else {
            return Ok(());
        };
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.join(SPEC_FILE).exists())
            .collect();
        dirs.sort();
        for dir in dirs {
            let spec_text = std::fs::read_to_string(dir.join(SPEC_FILE))
                .map_err(|e| format!("read {}: {e}", dir.join(SPEC_FILE).display()))?;
            let spec = CampaignSpec::from_json(&spec_text)
                .map_err(|e| format!("{}: {e}", dir.join(SPEC_FILE).display()))?;
            let id = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let status = match std::fs::read_to_string(dir.join(STATUS_FILE)) {
                Ok(text) => CampaignStatus::from_json(&text)
                    .map_err(|e| format!("{}: {e}", dir.join(STATUS_FILE).display()))?,
                Err(_) => CampaignStatus {
                    id: id.clone(),
                    state: State::Queued,
                    rounds: spec.rounds,
                    completed_rounds: 0,
                    bugs: 0,
                    executions: 0,
                    error: None,
                    journal: dir.join(JOURNAL_FILE),
                },
            };
            let incomplete = !status.state.terminal();
            let tenant = Arc::new(Tenant {
                id,
                dir,
                spec,
                stop: Arc::new(AtomicBool::new(false)),
                cancelled: AtomicBool::new(false),
                status: Mutex::new(status),
                metrics: Mutex::new(None),
            });
            self.tenants
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(tenant.clone());
            if incomplete && resume {
                self.spawn_driver(tenant);
            }
        }
        Ok(())
    }

    /// Submits a new campaign: persists its spec and queued status, then
    /// hands it to a driver thread gated by the admission semaphore.
    pub fn submit(self: &Arc<Registry>, spec: CampaignSpec) -> Result<CampaignStatus, String> {
        let tenant = {
            let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
            let next = tenants
                .iter()
                .filter_map(|t| t.id.strip_prefix('c').and_then(|n| n.parse::<u64>().ok()))
                .max()
                .unwrap_or(0)
                + 1;
            let id = format!("c{next:04}");
            let dir = self.campaigns_dir.join(&id);
            std::fs::create_dir_all(&dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            std::fs::write(dir.join(SPEC_FILE), spec.to_json() + "\n")
                .map_err(|e| format!("cannot write {}: {e}", dir.join(SPEC_FILE).display()))?;
            let status = CampaignStatus {
                id: id.clone(),
                state: State::Queued,
                rounds: spec.rounds,
                completed_rounds: 0,
                bugs: 0,
                executions: 0,
                error: None,
                journal: dir.join(JOURNAL_FILE),
            };
            let tenant = Arc::new(Tenant {
                id,
                dir,
                spec,
                stop: Arc::new(AtomicBool::new(false)),
                cancelled: AtomicBool::new(false),
                status: Mutex::new(status),
                metrics: Mutex::new(None),
            });
            tenants.push(tenant.clone());
            tenant
        };
        tenant.persist_status();
        let status = tenant
            .status
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        self.spawn_driver(tenant);
        Ok(status)
    }

    fn spawn_driver(self: &Arc<Registry>, tenant: Arc<Tenant>) {
        let registry = self.clone();
        let handle = std::thread::Builder::new()
            .name(format!("campaign-{}", tenant.id))
            .spawn(move || drive(registry, tenant))
            .expect("spawn campaign driver thread");
        self.threads
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }

    /// Every tenant's status, in id order.
    pub fn statuses(&self) -> Vec<CampaignStatus> {
        let mut all: Vec<CampaignStatus> = self
            .tenants
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|t| t.status.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        all.sort_by(|a, b| a.id.cmp(&b.id));
        all
    }

    fn tenant(&self, id: &str) -> Option<Arc<Tenant>> {
        self.tenants
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .find(|t| t.id == id)
            .cloned()
    }

    /// One tenant's status.
    pub fn status(&self, id: &str) -> Option<CampaignStatus> {
        self.tenant(id)
            .map(|t| t.status.lock().unwrap_or_else(|e| e.into_inner()).clone())
    }

    /// Requests a graceful cancel: the campaign stops at its next round
    /// boundary and lands in `cancelled`. Returns the status as of the
    /// request (the transition is asynchronous); `None` for unknown ids.
    pub fn cancel(&self, id: &str) -> Option<CampaignStatus> {
        let tenant = self.tenant(id)?;
        let queued = {
            let status = tenant.status.lock().unwrap_or_else(|e| e.into_inner());
            if status.state.terminal() {
                return Some(status.clone());
            }
            status.state == State::Queued
        };
        tenant.cancelled.store(true, Ordering::SeqCst);
        tenant.stop.store(true, Ordering::SeqCst);
        if queued {
            // Not running yet: the driver thread will observe the flag
            // before its first round, but report the outcome eagerly.
            tenant.set_state(State::Cancelled);
        }
        self.admitted.notify_all();
        let status = tenant
            .status
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        Some(status)
    }

    /// The latest telemetry snapshot of every tenant that has produced
    /// one, for the aggregated `/metrics` page.
    pub fn metrics(&self) -> Vec<(String, MetricsSnapshot)> {
        self.tenants
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter_map(|t| {
                t.metrics
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone()
                    .map(|snap| (t.id.clone(), snap))
            })
            .collect()
    }

    /// Begins a drain: running campaigns stop at their next round
    /// boundary (state `interrupted`, journal flushed, resumable),
    /// queued ones stay `queued`. Does not wait; follow with [`join`].
    ///
    /// [`join`]: Registry::join
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        for tenant in self
            .tenants
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            tenant.stop.store(true, Ordering::SeqCst);
        }
        self.admitted.notify_all();
    }

    /// Waits for every driver thread to finish (with [`drain`] first,
    /// that is one round per running tenant; without it, the natural end
    /// of every campaign).
    ///
    /// [`drain`]: Registry::drain
    pub fn join(&self) {
        let threads: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.threads.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in threads {
            let _ = handle.join();
        }
    }

    /// Waits for an admission slot. Returns `false` when the registry
    /// started draining (or the tenant was stopped) before a slot opened.
    fn admit(&self, tenant: &Tenant) -> bool {
        let mut active: MutexGuard<usize> = self.active.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.draining.load(Ordering::SeqCst) || tenant.stop.load(Ordering::SeqCst) {
                return false;
            }
            if *active < self.max_active {
                *active += 1;
                return true;
            }
            active = self
                .admitted
                .wait_timeout(active, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    fn release(&self) {
        *self.active.lock().unwrap_or_else(|e| e.into_inner()) -= 1;
        self.admitted.notify_all();
    }
}

/// Folds live round results into the tenant's status and telemetry slot.
/// Observers never touch the journal, so they cannot perturb its bytes.
struct RoundSink<'a> {
    tenant: &'a Tenant,
}

impl CampaignObserver for RoundSink<'_> {
    fn round_finished(&mut self, _round: usize, result: &CampaignResult) {
        {
            let mut status = self.tenant.status.lock().unwrap_or_else(|e| e.into_inner());
            status.completed_rounds = result.completed_rounds();
            status.bugs = result.bugs.len();
            status.executions = result.executions;
        }
        self.tenant.persist_status();
        if let Some(snap) = jtelemetry::snapshot() {
            *self
                .tenant
                .metrics
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(snap);
        }
    }
}

/// The driver thread: admission, telemetry session, cancel flag, the
/// campaign itself, and the terminal state transition.
fn drive(registry: Arc<Registry>, tenant: Arc<Tenant>) {
    if !registry.admit(&tenant) {
        if tenant.cancelled.load(Ordering::SeqCst) {
            tenant.set_state(State::Cancelled);
        }
        // A drain leaves the tenant `queued`: `serve --resume` starts it.
        return;
    }
    tenant.set_state(State::Running);
    jtelemetry::install(jtelemetry::Session::new());
    mopfuzzer::interrupt::set_local(tenant.stop.clone());
    let outcome = run_tenant_campaign(&tenant);
    mopfuzzer::interrupt::clear_local();
    if let Some(session) = jtelemetry::take() {
        *tenant.metrics.lock().unwrap_or_else(|e| e.into_inner()) = Some(session.snapshot());
    }
    {
        let mut status = tenant.status.lock().unwrap_or_else(|e| e.into_inner());
        match &outcome {
            Err(e) => {
                status.state = State::Failed;
                status.error = Some(e.clone());
            }
            Ok(result) => {
                status.completed_rounds = result.completed_rounds();
                status.bugs = result.bugs.len();
                status.executions = result.executions;
                status.state = if !result.interrupted {
                    State::Done
                } else if tenant.cancelled.load(Ordering::SeqCst) {
                    State::Cancelled
                } else {
                    State::Interrupted
                };
            }
        }
    }
    tenant.persist_status();
    registry.release();
}

/// Builds the exact [`CampaignConfig`] the CLI builds for
/// `mopfuzzer --rounds R --rng S --jobs J --oracle-jobs K
/// [--iterations I] [--round-timeout MS]`: full guidance, the standard
/// differential pool, default supervisor policy. Journal equivalence
/// with a standalone CLI run rests on this mapping.
fn campaign_config(spec: &CampaignSpec) -> CampaignConfig {
    CampaignConfig {
        iterations_per_seed: spec.iterations,
        variant: Variant::Full,
        rounds: spec.rounds,
        pool: JvmSpec::differential_pool(),
        rng_seed: spec.rng_seed,
        supervisor: SupervisorConfig {
            round_wall_timeout_ms: spec.round_timeout_ms,
            ..SupervisorConfig::default()
        },
        fault: None,
        jobs: spec.jobs,
        oracle_jobs: spec.oracle_jobs,
    }
}

fn run_tenant_campaign(tenant: &Tenant) -> Result<CampaignResult, String> {
    let journal = tenant.dir.join(JOURNAL_FILE);
    let mut sink = RoundSink { tenant };
    if journal.exists() {
        // Re-adopted after a drain or a daemon crash: continue the
        // journal. Worker counts are not journaled; the spec's resolved
        // values keep the resumed half byte-identical.
        return resume_campaign_extended(
            &journal,
            None,
            Some(tenant.spec.jobs),
            Some(tenant.spec.oracle_jobs),
            Some(&mut sink),
        );
    }
    let config = campaign_config(&tenant.spec);
    match &tenant.spec.corpus {
        None => {
            let seeds = mopfuzzer::corpus::builtin();
            run_campaign_with_journal_observed(&seeds, &config, &journal, Some(&mut sink))
        }
        Some(dir) => {
            let mut store = jcorpus::Store::open(dir)?;
            run_corpus_campaign(
                &mut store,
                &config,
                &CorpusOptions::default(),
                Some(&journal),
                Some(&mut sink),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_defaults_mirror_the_cli() {
        let spec = CampaignSpec::from_json("{\"rounds\": 3}").unwrap();
        assert_eq!(spec.rounds, 3);
        assert_eq!(spec.rng_seed, 0);
        assert_eq!(spec.iterations, 50);
        assert_eq!(spec.corpus, None);
        assert_eq!(spec.jobs, default_jobs());
        assert_eq!(spec.oracle_jobs, default_oracle_jobs(spec.jobs));
        assert_eq!(spec.round_timeout_ms, None);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = CampaignSpec {
            rounds: 4,
            rng_seed: 7,
            iterations: 10,
            corpus: Some(PathBuf::from("/tmp/store")),
            jobs: 2,
            oracle_jobs: 3,
            round_timeout_ms: Some(500),
        };
        assert_eq!(CampaignSpec::from_json(&spec.to_json()).unwrap(), spec);
    }

    #[test]
    fn spec_rejects_bad_input() {
        assert!(CampaignSpec::from_json("{}")
            .unwrap_err()
            .contains("rounds"));
        assert!(CampaignSpec::from_json("{\"rounds\":0}")
            .unwrap_err()
            .contains(">= 1"));
        assert!(CampaignSpec::from_json("{\"rounds\":2,\"jbos\":1}")
            .unwrap_err()
            .contains("unknown spec field"));
        assert!(CampaignSpec::from_json("{\"rounds\":2,\"jobs\":0}")
            .unwrap_err()
            .contains("jobs"));
        assert!(CampaignSpec::from_json("not json").is_err());
    }

    #[test]
    fn status_round_trips_through_json() {
        let status = CampaignStatus {
            id: "c0001".to_string(),
            state: State::Interrupted,
            rounds: 5,
            completed_rounds: 2,
            bugs: 1,
            executions: 321,
            error: None,
            journal: PathBuf::from("/tmp/j.jsonl"),
        };
        assert_eq!(
            CampaignStatus::from_json(&status.to_json()).unwrap(),
            status
        );
        let failed = CampaignStatus {
            state: State::Failed,
            error: Some("boom \"quoted\"".to_string()),
            ..status
        };
        assert_eq!(
            CampaignStatus::from_json(&failed.to_json()).unwrap(),
            failed
        );
    }
}
