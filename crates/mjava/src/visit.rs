//! Expression visitors over single statements.
//!
//! Mutator applicability (paper Table 1, "Cond" column) is decided by what a
//! mutation-point statement *itself* contains — a binary expression, a call,
//! a field access — so these walkers cover the statement's own expressions
//! (condition, initializer, arguments, …) but do not descend into nested
//! statement blocks.

use crate::ast::*;

/// Visits every expression (pre-order) contained directly in `stmt`.
pub fn for_each_expr_in_stmt<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match stmt {
        Stmt::Decl { init, .. } => {
            if let Some(e) = init {
                walk_expr(e, f);
            }
        }
        Stmt::Assign { target, value } => {
            match target {
                LValue::Field(obj, _) => walk_expr(obj, f),
                LValue::Var(_) | LValue::StaticField(..) => {}
            }
            walk_expr(value, f);
        }
        Stmt::Expr(e) | Stmt::Print(e) => walk_expr(e, f),
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => walk_expr(cond, f),
        Stmt::For {
            init, cond, update, ..
        } => {
            if let Some(i) = init {
                for_each_expr_in_stmt(i, f);
            }
            walk_expr(cond, f);
            if let Some(u) = update {
                for_each_expr_in_stmt(u, f);
            }
        }
        Stmt::Sync { lock, .. } => walk_expr(lock, f),
        Stmt::Return(Some(e)) => walk_expr(e, f),
        Stmt::Return(None) | Stmt::Block(_) => {}
    }
}

/// Visits `expr` and all sub-expressions, pre-order.
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(expr);
    match expr {
        Expr::Unary(_, inner) | Expr::BoxInt(inner) | Expr::UnboxInt(inner) => walk_expr(inner, f),
        Expr::Binary(_, lhs, rhs) => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Call(call) => {
            if let CallTarget::Instance(recv) = &call.target {
                walk_expr(recv, f);
            }
            for a in &call.args {
                walk_expr(a, f);
            }
        }
        Expr::Reflect(r) => {
            if let Some(recv) = &r.receiver {
                walk_expr(recv, f);
            }
            for a in &r.args {
                walk_expr(a, f);
            }
        }
        Expr::Field(obj, _) => walk_expr(obj, f),
        _ => {}
    }
}

/// Rewrites expressions inside `stmt` pre-order; `f` returns `true` once it
/// has rewritten an expression, which stops the traversal. Returns whether
/// any rewrite happened.
pub fn rewrite_first_expr_in_stmt(stmt: &mut Stmt, f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
    match stmt {
        Stmt::Decl { init, .. } => init.as_mut().is_some_and(|e| rewrite_expr(e, f)),
        Stmt::Assign { target, value } => {
            let hit = match target {
                LValue::Field(obj, _) => rewrite_expr(obj, f),
                LValue::Var(_) | LValue::StaticField(..) => false,
            };
            hit || rewrite_expr(value, f)
        }
        Stmt::Expr(e) | Stmt::Print(e) => rewrite_expr(e, f),
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => rewrite_expr(cond, f),
        Stmt::For {
            init, cond, update, ..
        } => {
            (init
                .as_mut()
                .is_some_and(|i| rewrite_first_expr_in_stmt(i, f)))
                || rewrite_expr(cond, f)
                || (update
                    .as_mut()
                    .is_some_and(|u| rewrite_first_expr_in_stmt(u, f)))
        }
        Stmt::Sync { lock, .. } => rewrite_expr(lock, f),
        Stmt::Return(Some(e)) => rewrite_expr(e, f),
        Stmt::Return(None) | Stmt::Block(_) => false,
    }
}

fn rewrite_expr(expr: &mut Expr, f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
    if f(expr) {
        return true;
    }
    match expr {
        Expr::Unary(_, inner) | Expr::BoxInt(inner) | Expr::UnboxInt(inner) => {
            rewrite_expr(inner, f)
        }
        Expr::Binary(_, lhs, rhs) => rewrite_expr(lhs, f) || rewrite_expr(rhs, f),
        Expr::Call(call) => {
            let hit = match &mut call.target {
                CallTarget::Instance(recv) => rewrite_expr(recv, f),
                CallTarget::Static(_) => false,
            };
            hit || call.args.iter_mut().any(|a| rewrite_expr(a, f))
        }
        Expr::Reflect(r) => {
            let hit = r
                .receiver
                .as_mut()
                .is_some_and(|recv| rewrite_expr(recv, f));
            hit || r.args.iter_mut().any(|a| rewrite_expr(a, f))
        }
        Expr::Field(obj, _) => rewrite_expr(obj, f),
        _ => false,
    }
}

/// Returns true if the statement directly contains an expression matching
/// the predicate.
pub fn stmt_contains(stmt: &Stmt, mut pred: impl FnMut(&Expr) -> bool) -> bool {
    let mut found = false;
    for_each_expr_in_stmt(stmt, &mut |e| {
        if !found && pred(e) {
            found = true;
        }
    });
    found
}

/// Returns true if `stmt` contains a binary arithmetic expression — the
/// condition of Inlining-evoke.
pub fn contains_binary(stmt: &Stmt) -> bool {
    stmt_contains(
        stmt,
        |e| matches!(e, Expr::Binary(op, _, _) if op.is_arithmetic()),
    )
}

/// Returns true if `stmt` contains a direct method call or instance field
/// access — the condition of DeReflection-evoke.
pub fn contains_call_or_field(stmt: &Stmt) -> bool {
    stmt_contains(stmt, |e| matches!(e, Expr::Call(_) | Expr::Field(..)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn stmt_of(body: &str) -> Stmt {
        let p = parse(&format!(
            "class T {{ int f; int g(int a) {{ return a; }} static void main() {{ T t = new T(); {body} }} }}"
        ))
        .unwrap();
        p.classes[0].methods[1].body.0[1].clone()
    }

    #[test]
    fn finds_binary_in_decl_init() {
        assert!(contains_binary(&stmt_of("int m = 1 + 2;")));
        assert!(!contains_binary(&stmt_of("int m = 5;")));
    }

    #[test]
    fn comparison_does_not_count_as_arithmetic_binary() {
        assert!(!contains_binary(&stmt_of("boolean b = true;")));
        // The `if` condition is a comparison, not arithmetic.
        assert!(!contains_binary(&stmt_of("if (1 < 2) { }")));
        // But an arithmetic subexpression inside the comparison counts.
        assert!(contains_binary(&stmt_of("if (1 + 1 < 2) { }")));
    }

    #[test]
    fn finds_call_and_field() {
        assert!(contains_call_or_field(&stmt_of("int m = t.g(1);")));
        assert!(contains_call_or_field(&stmt_of("int m = t.f;")));
        assert!(!contains_call_or_field(&stmt_of("int m = 1 + 2;")));
    }

    #[test]
    fn visits_for_header_expressions() {
        let stmt = stmt_of("for (int i = t.g(0); i < 3; i++) { }");
        assert!(contains_call_or_field(&stmt));
    }

    #[test]
    fn does_not_descend_into_nested_blocks() {
        let stmt = stmt_of("while (true) { int m = t.g(1); }");
        assert!(!contains_call_or_field(&stmt));
    }

    #[test]
    fn rewrite_first_replaces_only_one() {
        let mut stmt = stmt_of("int m = 1 + 2 + 3;");
        let n = std::cell::Cell::new(0);
        rewrite_first_expr_in_stmt(&mut stmt, &mut |e| {
            if matches!(e, Expr::Binary(BinOp::Add, _, _)) {
                n.set(n.get() + 1);
                *e = Expr::Int(99);
                true
            } else {
                false
            }
        });
        assert_eq!(n.get(), 1);
        match stmt {
            Stmt::Decl {
                init: Some(Expr::Int(99)),
                ..
            } => {}
            other => panic!("outermost binary should be replaced, got {other:?}"),
        }
    }

    #[test]
    fn rewrite_reaches_sync_lock_and_print() {
        let mut stmt = stmt_of("synchronized (t) { }");
        let hit = rewrite_first_expr_in_stmt(&mut stmt, &mut |e| {
            if matches!(e, Expr::Var(_)) {
                *e = Expr::ClassLit("T".into());
                true
            } else {
                false
            }
        });
        assert!(hit);
        assert!(matches!(
            stmt,
            Stmt::Sync {
                lock: Expr::ClassLit(_),
                ..
            }
        ));
    }
}
