//! Hand-written lexer for MiniJava source text.

use crate::error::ParseError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword-like word; keywords are distinguished by the
    /// parser so that mutator-generated names can never collide with tokens.
    Ident(String),
    /// Integer literal (`int`).
    Int(i64),
    /// Integer literal with `L` suffix (`long`).
    Long(i64),
    /// Double-quoted string literal (only used inside reflective calls).
    Str(String),
    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Dot,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Bang,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Shl,
    Shr,
    PlusPlus,
    MinusMinus,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Long(v) => write!(f, "{v}L"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Assign => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Amp => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::Caret => write!(f, "^"),
            Token::Bang => write!(f, "!"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::Shl => write!(f, "<<"),
            Token::Shr => write!(f, ">>"),
            Token::PlusPlus => write!(f, "++"),
            Token::MinusMinus => write!(f, "--"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with the 1-based line it started on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: u32,
}

/// Tokenizes MiniJava source text.
///
/// Line (`//`) and block (`/* */`) comments are skipped. Numeric literals may
/// use `_` separators as in Java (`50_000`).
///
/// # Errors
///
/// Returns [`ParseError`] on unterminated strings or comments, malformed
/// numbers, and characters outside the language.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(ParseError::new(start, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '"' => {
                let start = line;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::new(start, "unterminated string literal"));
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => return Err(ParseError::new(start, "newline in string literal")),
                        b'\\' => {
                            let esc = bytes.get(i + 1).copied().ok_or_else(|| {
                                ParseError::new(start, "dangling escape in string literal")
                            })?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'"' => '"',
                                b'\\' => '\\',
                                other => {
                                    return Err(ParseError::new(
                                        start,
                                        format!("unknown escape \\{}", other as char),
                                    ))
                                }
                            });
                            i += 2;
                        }
                        b => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    token: Token::Str(s),
                    line: start,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
                let text: String = src[start..i].chars().filter(|&c| c != '_').collect();
                let value: i64 = text
                    .parse()
                    .map_err(|_| ParseError::new(line, format!("bad integer literal {text}")))?;
                let token = if i < bytes.len() && (bytes[i] == b'L' || bytes[i] == b'l') {
                    i += 1;
                    Token::Long(value)
                } else {
                    Token::Int(value)
                };
                out.push(Spanned { token, line });
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'$')
                {
                    i += 1;
                }
                out.push(Spanned {
                    token: Token::Ident(src[start..i].to_string()),
                    line,
                });
            }
            _ => {
                let (token, advance) = match (c, bytes.get(i + 1).map(|&b| b as char)) {
                    ('<', Some('=')) => (Token::Le, 2),
                    ('<', Some('<')) => (Token::Shl, 2),
                    ('>', Some('=')) => (Token::Ge, 2),
                    ('>', Some('>')) => (Token::Shr, 2),
                    ('=', Some('=')) => (Token::EqEq, 2),
                    ('!', Some('=')) => (Token::Ne, 2),
                    ('+', Some('+')) => (Token::PlusPlus, 2),
                    ('-', Some('-')) => (Token::MinusMinus, 2),
                    ('(', _) => (Token::LParen, 1),
                    (')', _) => (Token::RParen, 1),
                    ('{', _) => (Token::LBrace, 1),
                    ('}', _) => (Token::RBrace, 1),
                    (';', _) => (Token::Semi, 1),
                    (',', _) => (Token::Comma, 1),
                    ('.', _) => (Token::Dot, 1),
                    ('=', _) => (Token::Assign, 1),
                    ('+', _) => (Token::Plus, 1),
                    ('-', _) => (Token::Minus, 1),
                    ('*', _) => (Token::Star, 1),
                    ('/', _) => (Token::Slash, 1),
                    ('%', _) => (Token::Percent, 1),
                    ('&', _) => (Token::Amp, 1),
                    ('|', _) => (Token::Pipe, 1),
                    ('^', _) => (Token::Caret, 1),
                    ('!', _) => (Token::Bang, 1),
                    ('<', _) => (Token::Lt, 1),
                    ('>', _) => (Token::Gt, 1),
                    other => {
                        return Err(ParseError::new(
                            line,
                            format!("unexpected character {:?}", other.0),
                        ))
                    }
                };
                out.push(Spanned { token, line });
                i += advance;
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_simple_statement() {
        assert_eq!(
            kinds("int x = 1;"),
            vec![
                Token::Ident("int".into()),
                Token::Ident("x".into()),
                Token::Assign,
                Token::Int(1),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_underscore_and_long_literals() {
        assert_eq!(
            kinds("50_000 7L"),
            vec![Token::Int(50_000), Token::Long(7), Token::Eof]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("<= >= == != << >> ++ --"),
            vec![
                Token::Le,
                Token::Ge,
                Token::EqEq,
                Token::Ne,
                Token::Shl,
                Token::Shr,
                Token::PlusPlus,
                Token::MinusMinus,
                Token::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("1 // comment\n 2 /* multi\nline */ 3"),
            vec![Token::Int(1), Token::Int(2), Token::Int(3), Token::Eof]
        );
    }

    #[test]
    fn tracks_lines() {
        let toks = lex("1\n2\n3").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn lexes_string_literals_with_escapes() {
        assert_eq!(
            kinds(r#""a\"b\n""#),
            vec![Token::Str("a\"b\n".into()), Token::Eof]
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* abc").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(lex("#").is_err());
    }
}
