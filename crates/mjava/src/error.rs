//! Error types for parsing MiniJava source.

use std::error::Error;
use std::fmt;

/// An error produced while lexing or parsing MiniJava source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    line: u32,
    message: String,
}

impl ParseError {
    /// Creates a parse error at the given 1-based source line.
    pub fn new(line: u32, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line the error was detected on.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_message() {
        let e = ParseError::new(3, "oops");
        assert_eq!(e.to_string(), "parse error at line 3: oops");
        assert_eq!(e.line(), 3);
        assert_eq!(e.message(), "oops");
    }
}
