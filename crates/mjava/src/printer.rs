//! Pretty-printer producing Java-style source text.
//!
//! The output is exactly the dialect [`crate::parser`] accepts, so
//! `parse(print(p)) == p` for every well-formed program. This round-trip is
//! what lets generated mutants be reported as ordinary Java-looking test
//! cases, as the paper's bug reports are.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program as source text.
///
/// # Examples
///
/// ```
/// let program = mjava::parse("class T { static void main() { int x = 1; } }")?;
/// let src = mjava::print(&program);
/// assert!(src.contains("int x = 1;"));
/// # Ok::<(), mjava::ParseError>(())
/// ```
pub fn print(program: &Program) -> String {
    let mut out = String::new();
    for (i, class) in program.classes.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_class(&mut out, class);
    }
    out
}

/// Renders a single statement (and its nested blocks) at zero indentation.
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut out = String::new();
    write_stmt(&mut out, stmt, 0);
    out
}

/// Renders a single expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, 0);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_class(out: &mut String, class: &Class) {
    let _ = writeln!(out, "class {} {{", class.name);
    for field in &class.fields {
        indent(out, 1);
        if field.is_static {
            out.push_str("static ");
        }
        let _ = write!(out, "{} {}", field.ty, field.name);
        if let Some(init) = &field.init {
            let _ = write!(out, " = {}", print_expr(init));
        }
        out.push_str(";\n");
    }
    for method in &class.methods {
        indent(out, 1);
        if method.is_static {
            out.push_str("static ");
        }
        if method.is_sync {
            out.push_str("synchronized ");
        }
        let _ = write!(out, "{} {}(", method.ret, method.name);
        for (i, p) in method.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{} {}", p.ty, p.name);
        }
        out.push_str(") {\n");
        write_block_body(out, &method.body, 2);
        indent(out, 1);
        out.push_str("}\n");
    }
    out.push_str("}\n");
}

fn write_block_body(out: &mut String, block: &Block, level: usize) {
    for stmt in &block.0 {
        write_stmt(out, stmt, level);
    }
}

fn write_braced(out: &mut String, block: &Block, level: usize) {
    out.push_str("{\n");
    write_block_body(out, block, level + 1);
    indent(out, level);
    out.push('}');
}

fn write_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    write_stmt_inline(out, stmt, level);
    out.push('\n');
}

/// Writes a statement without the leading indentation or trailing newline;
/// nested blocks still indent relative to `level`.
fn write_stmt_inline(out: &mut String, stmt: &Stmt, level: usize) {
    match stmt {
        Stmt::Decl { name, ty, init } => {
            let _ = write!(out, "{ty} {name}");
            if let Some(e) = init {
                let _ = write!(out, " = {}", print_expr(e));
            }
            out.push(';');
        }
        Stmt::Assign { target, value } => {
            write_lvalue(out, target);
            let _ = write!(out, " = {};", print_expr(value));
        }
        Stmt::Expr(e) => {
            let _ = write!(out, "{};", print_expr(e));
        }
        Stmt::If {
            cond,
            then_b,
            else_b,
        } => {
            let _ = write!(out, "if ({}) ", print_expr(cond));
            write_braced(out, then_b, level);
            if let Some(e) = else_b {
                out.push_str(" else ");
                write_braced(out, e, level);
            }
        }
        Stmt::While { cond, body } => {
            let _ = write!(out, "while ({}) ", print_expr(cond));
            write_braced(out, body, level);
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            out.push_str("for (");
            if let Some(i) = init {
                write_simple_no_semi(out, i, level);
            }
            let _ = write!(out, "; {}; ", print_expr(cond));
            if let Some(u) = update {
                write_simple_no_semi(out, u, level);
            }
            out.push_str(") ");
            write_braced(out, body, level);
        }
        Stmt::Sync { lock, body } => {
            let _ = write!(out, "synchronized ({}) ", print_expr(lock));
            write_braced(out, body, level);
        }
        Stmt::Block(b) => write_braced(out, b, level),
        Stmt::Return(value) => match value {
            Some(e) => {
                let _ = write!(out, "return {};", print_expr(e));
            }
            None => out.push_str("return;"),
        },
        Stmt::Print(e) => {
            let _ = write!(out, "System.out.println({});", print_expr(e));
        }
    }
}

/// `for`-header statements print without the trailing semicolon.
fn write_simple_no_semi(out: &mut String, stmt: &Stmt, level: usize) {
    let mut tmp = String::new();
    write_stmt_inline(&mut tmp, stmt, level);
    out.push_str(tmp.trim_end_matches(';'));
}

fn write_lvalue(out: &mut String, lv: &LValue) {
    match lv {
        LValue::Var(name) => out.push_str(name),
        LValue::Field(obj, name) => {
            write_expr(out, obj, POSTFIX);
            let _ = write!(out, ".{name}");
        }
        LValue::StaticField(class, name) => {
            let _ = write!(out, "{class}.{name}");
        }
    }
}

// Precedence levels mirroring the parser's grammar (higher binds tighter).
const BITOR: u8 = 1;
const BITXOR: u8 = 2;
const BITAND: u8 = 3;
const EQUALITY: u8 = 4;
const RELATIONAL: u8 = 5;
const SHIFT: u8 = 6;
const ADDITIVE: u8 = 7;
const MULTIPLICATIVE: u8 = 8;
const UNARY: u8 = 9;
const POSTFIX: u8 = 10;

fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::BitOr => BITOR,
        BinOp::BitXor => BITXOR,
        BinOp::BitAnd => BITAND,
        BinOp::Eq | BinOp::Ne => EQUALITY,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => RELATIONAL,
        BinOp::Shl | BinOp::Shr => SHIFT,
        BinOp::Add | BinOp::Sub => ADDITIVE,
        BinOp::Mul | BinOp::Div | BinOp::Rem => MULTIPLICATIVE,
    }
}

/// Writes `expr`, parenthesizing if its precedence is below `min_prec`.
fn write_expr(out: &mut String, expr: &Expr, min_prec: u8) {
    match expr {
        Expr::Int(v) => {
            if *v < 0 {
                // Negative literals print parenthesized so they re-parse as a
                // unary minus without being captured by a tighter operator.
                let _ = write!(out, "({v})");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Expr::Long(v) => {
            if *v < 0 {
                let _ = write!(out, "({v}L)");
            } else {
                let _ = write!(out, "{v}L");
            }
        }
        Expr::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Expr::Null => out.push_str("null"),
        Expr::This => out.push_str("this"),
        Expr::Var(name) => out.push_str(name),
        Expr::Unary(op, inner) => {
            let parens = UNARY < min_prec;
            if parens {
                out.push('(');
            }
            let _ = write!(out, "{op}");
            // `--x` would lex as the decrement token; a negated negative
            // literal would fuse with the sign. Parenthesize such inners.
            let inner_needs_parens = *op == UnOp::Neg
                && matches!(
                    inner.as_ref(),
                    Expr::Unary(UnOp::Neg, _)
                        | Expr::Int(i64::MIN..=-1)
                        | Expr::Long(i64::MIN..=-1)
                );
            if inner_needs_parens {
                out.push('(');
                write_expr(out, inner, 0);
                out.push(')');
            } else {
                write_expr(out, inner, UNARY);
            }
            if parens {
                out.push(')');
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            let prec = bin_prec(*op);
            let parens = prec < min_prec;
            if parens {
                out.push('(');
            }
            write_expr(out, lhs, prec);
            let _ = write!(out, " {op} ");
            write_expr(out, rhs, prec + 1);
            if parens {
                out.push(')');
            }
        }
        Expr::Call(call) => {
            match &call.target {
                CallTarget::Static(class) => {
                    let _ = write!(out, "{class}");
                }
                CallTarget::Instance(recv) => write_expr(out, recv, POSTFIX),
            }
            let _ = write!(out, ".{}(", call.method);
            write_args(out, &call.args);
            out.push(')');
        }
        Expr::Reflect(r) => {
            let _ = write!(
                out,
                "Class.forName(\"{}\").getDeclaredMethod(\"{}\").invoke(",
                r.class, r.method
            );
            match &r.receiver {
                Some(recv) => write_expr(out, recv, 0),
                None => out.push_str("null"),
            }
            for arg in &r.args {
                out.push_str(", ");
                write_expr(out, arg, 0);
            }
            out.push(')');
        }
        Expr::Field(obj, name) => {
            write_expr(out, obj, POSTFIX);
            let _ = write!(out, ".{name}");
        }
        Expr::StaticField(class, name) => {
            let _ = write!(out, "{class}.{name}");
        }
        Expr::New(class) => {
            let _ = write!(out, "new {class}()");
        }
        Expr::BoxInt(inner) => {
            out.push_str("Integer.valueOf(");
            write_expr(out, inner, 0);
            out.push(')');
        }
        Expr::UnboxInt(inner) => {
            write_expr(out, inner, POSTFIX);
            out.push_str(".intValue()");
        }
        Expr::ClassLit(class) => {
            let _ = write!(out, "{class}.class");
        }
    }
}

fn write_args(out: &mut String, args: &[Expr]) {
    for (i, arg) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_expr(out, arg, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let p1 = parse(src).unwrap();
        let printed = print(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(p1, p2, "round-trip mismatch for:\n{printed}");
    }

    #[test]
    fn roundtrips_motivating_example() {
        roundtrip(
            r#"
            class T {
                int f;
                static int s = 3;
                static void main() {
                    T t = new T();
                    for (int i = 0; i < 50_000; i++) {
                        t.foo(i);
                    }
                }
                void foo(int i) {
                    synchronized (T.class) {
                        synchronized (this) {
                            f = f + i;
                        }
                    }
                    System.out.println(f);
                }
            }
            "#,
        );
    }

    #[test]
    fn roundtrips_reflection_and_boxing() {
        roundtrip(
            r#"
            class T {
                static int g(int a) { return a * 2; }
                static void main() {
                    Integer b = Integer.valueOf(21);
                    int m = Class.forName("T").getDeclaredMethod("g").invoke(null, b.intValue());
                    System.out.println(m);
                }
            }
            "#,
        );
    }

    #[test]
    fn roundtrips_operator_soup() {
        roundtrip(
            r#"
            class T {
                static void main() {
                    int x = 1 + 2 * 3 - 4 / 2 % 3;
                    int y = (1 + 2) * (3 - (4 | 1));
                    int z = x << 2 >> 1 ^ y & 3;
                    boolean b = x < y;
                    boolean c = !(x == y) & (z != 0) | b;
                    long l = 5L * -3L;
                    System.out.println(z);
                }
            }
            "#,
        );
    }

    #[test]
    fn negative_literal_reparses() {
        let p = Program {
            classes: vec![Class {
                name: "T".into(),
                fields: vec![],
                methods: vec![Method::new(
                    "main",
                    vec![],
                    Type::Void,
                    true,
                    Block(vec![Stmt::Print(Expr::bin(
                        BinOp::Mul,
                        Expr::Int(-3),
                        Expr::Int(2),
                    ))]),
                )],
            }],
        };
        let printed = print(&p);
        let p2 = parse(&printed).unwrap();
        // (-3) reparses as unary minus applied to 3; evaluate equivalence via
        // printing again.
        assert_eq!(print(&p2), print(&parse(&print(&p2)).unwrap()));
    }

    #[test]
    fn print_stmt_and_expr_helpers() {
        let s = Stmt::Print(Expr::bin(BinOp::Add, Expr::var("a"), Expr::Int(1)));
        assert_eq!(print_stmt(&s), "System.out.println(a + 1);\n");
        assert_eq!(
            print_expr(&Expr::bin(BinOp::Shl, Expr::var("x"), Expr::Int(2))),
            "x << 2"
        );
    }

    #[test]
    fn right_associative_parenthesization() {
        // (a - (b - c)) must keep parens on the right operand.
        let e = Expr::bin(
            BinOp::Sub,
            Expr::var("a"),
            Expr::bin(BinOp::Sub, Expr::var("b"), Expr::var("c")),
        );
        assert_eq!(print_expr(&e), "a - (b - c)");
    }

    #[test]
    fn left_associative_needs_no_parens() {
        let e = Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Sub, Expr::var("a"), Expr::var("b")),
            Expr::var("c"),
        );
        assert_eq!(print_expr(&e), "a - b - c");
    }
}
