//! Recursive-descent parser for MiniJava.
//!
//! The grammar is the Java subset produced by [`crate::printer`]; the two are
//! kept round-trip compatible (`parse(print(p)) == p`), which the property
//! tests in this crate enforce.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::{lex, Spanned, Token};
use std::collections::HashSet;

/// Parses a full MiniJava program from source text.
///
/// # Errors
///
/// Returns [`ParseError`] on any lexical or syntactic problem.
///
/// # Examples
///
/// ```
/// let src = "class T { static void main() { int x = 1; System.out.println(x); } }";
/// let program = mjava::parse(src)?;
/// assert_eq!(program.classes.len(), 1);
/// # Ok::<(), mjava::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut parser = Parser::new(tokens);
    parser.program()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    class_names: HashSet<String>,
}

impl Parser {
    fn new(tokens: Vec<Spanned>) -> Parser {
        // Pre-scan for class names so that `T.f` can be resolved to a static
        // access without symbol tables.
        let mut class_names = HashSet::new();
        for pair in tokens.windows(2) {
            if let (Token::Ident(kw), Token::Ident(name)) = (&pair[0].token, &pair[1].token) {
                if kw == "class" {
                    class_names.insert(name.clone());
                }
            }
        }
        Parser {
            tokens,
            pos: 0,
            class_names,
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].token
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, expected: &Token) -> Result<(), ParseError> {
        if self.peek() == expected {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{expected}`, found `{}`", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Token::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{kw}`, found `{other}`"))),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == kw)
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    fn string_lit(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Token::Str(s) => Ok(s),
            other => Err(self.err(format!("expected string literal, found `{other}`"))),
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.line(), message)
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut classes = Vec::new();
        while !matches!(self.peek(), Token::Eof) {
            classes.push(self.class()?);
        }
        Ok(Program { classes })
    }

    fn class(&mut self) -> Result<Class, ParseError> {
        self.eat_kw("class")?;
        let name = self.ident()?;
        self.eat(&Token::LBrace)?;
        let mut class = Class::new(name);
        while !matches!(self.peek(), Token::RBrace) {
            self.member(&mut class)?;
        }
        self.eat(&Token::RBrace)?;
        Ok(class)
    }

    fn member(&mut self, class: &mut Class) -> Result<(), ParseError> {
        let mut is_static = false;
        let mut is_sync = false;
        loop {
            if self.at_kw("static") {
                self.bump();
                is_static = true;
            } else if self.at_kw("synchronized") {
                self.bump();
                is_sync = true;
            } else {
                break;
            }
        }
        let ty = self.parse_type()?;
        let name = self.ident()?;
        if matches!(self.peek(), Token::LParen) {
            // Method.
            self.eat(&Token::LParen)?;
            let mut params = Vec::new();
            if !matches!(self.peek(), Token::RParen) {
                loop {
                    let pty = self.parse_type()?;
                    let pname = self.ident()?;
                    params.push(Param {
                        name: pname,
                        ty: pty,
                    });
                    if matches!(self.peek(), Token::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.eat(&Token::RParen)?;
            let body = self.block()?;
            class.methods.push(Method {
                name,
                params,
                ret: ty,
                is_static,
                is_sync,
                body,
            });
        } else {
            // Field.
            if is_sync {
                return Err(self.err("fields cannot be synchronized"));
            }
            let init = if matches!(self.peek(), Token::Assign) {
                self.bump();
                Some(self.literal()?)
            } else {
                None
            };
            self.eat(&Token::Semi)?;
            class.fields.push(Field {
                name,
                ty,
                is_static,
                init,
            });
        }
        Ok(())
    }

    fn literal(&mut self) -> Result<Expr, ParseError> {
        let negative = if matches!(self.peek(), Token::Minus) {
            self.bump();
            true
        } else {
            false
        };
        let e = match self.bump() {
            Token::Int(v) => Expr::Int(if negative { -v } else { v }),
            Token::Long(v) => Expr::Long(if negative { -v } else { v }),
            Token::Ident(s) if s == "true" && !negative => Expr::Bool(true),
            Token::Ident(s) if s == "false" && !negative => Expr::Bool(false),
            Token::Ident(s) if s == "null" && !negative => Expr::Null,
            other => return Err(self.err(format!("expected literal, found `{other}`"))),
        };
        Ok(e)
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let name = self.ident()?;
        Ok(match name.as_str() {
            "int" => Type::Int,
            "long" => Type::Long,
            "boolean" => Type::Bool,
            "void" => Type::Void,
            "Integer" => Type::Integer,
            _ => Type::Ref(name),
        })
    }

    fn is_type_start(&self) -> bool {
        match self.peek() {
            Token::Ident(s) => match s.as_str() {
                "int" | "long" | "boolean" => true,
                // `Integer x` is a declaration, but `Integer.valueOf(..)`
                // is an expression — require a following identifier.
                "Integer" => matches!(self.peek2(), Token::Ident(_)),
                // `T x` declaration: an identifier followed by another
                // identifier (and the first names a class).
                name if self.class_names.contains(name) => {
                    matches!(self.peek2(), Token::Ident(_))
                }
                _ => false,
            },
            _ => false,
        }
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.eat(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while !matches!(self.peek(), Token::RBrace) {
            stmts.push(self.stmt()?);
        }
        self.eat(&Token::RBrace)?;
        Ok(Block(stmts))
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Token::LBrace => Ok(Stmt::Block(self.block()?)),
            Token::Ident(kw) => match kw.as_str() {
                "if" => self.if_stmt(),
                "while" => self.while_stmt(),
                "for" => self.for_stmt(),
                "synchronized" => self.sync_stmt(),
                "return" => self.return_stmt(),
                "System" => self.println_stmt(),
                _ => self.simple_stmt_semi(),
            },
            // Anything else — `(expr).f = ..;`, a call on a literal
            // receiver, a unary-headed assignment target — parses as a
            // simple statement, as in Java's expression-statement grammar.
            _ => self.simple_stmt_semi(),
        }
    }

    fn simple_stmt_semi(&mut self) -> Result<Stmt, ParseError> {
        let s = self.simple_stmt()?;
        self.eat(&Token::Semi)?;
        Ok(s)
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.eat_kw("if")?;
        self.eat(&Token::LParen)?;
        let cond = self.expr()?;
        self.eat(&Token::RParen)?;
        let then_b = self.block()?;
        let else_b = if self.at_kw("else") {
            self.bump();
            Some(self.block()?)
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_b,
            else_b,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.eat_kw("while")?;
        self.eat(&Token::LParen)?;
        let cond = self.expr()?;
        self.eat(&Token::RParen)?;
        let body = self.block()?;
        Ok(Stmt::While { cond, body })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.eat_kw("for")?;
        self.eat(&Token::LParen)?;
        let init = if matches!(self.peek(), Token::Semi) {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.eat(&Token::Semi)?;
        let cond = self.expr()?;
        self.eat(&Token::Semi)?;
        let update = if matches!(self.peek(), Token::RParen) {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.eat(&Token::RParen)?;
        let body = self.block()?;
        Ok(Stmt::For {
            init,
            cond,
            update,
            body,
        })
    }

    fn sync_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.eat_kw("synchronized")?;
        self.eat(&Token::LParen)?;
        let lock = self.expr()?;
        self.eat(&Token::RParen)?;
        let body = self.block()?;
        Ok(Stmt::Sync { lock, body })
    }

    fn return_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.eat_kw("return")?;
        let value = if matches!(self.peek(), Token::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.eat(&Token::Semi)?;
        Ok(Stmt::Return(value))
    }

    fn println_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.eat_kw("System")?;
        self.eat(&Token::Dot)?;
        self.eat_kw("out")?;
        self.eat(&Token::Dot)?;
        self.eat_kw("println")?;
        self.eat(&Token::LParen)?;
        let e = self.expr()?;
        self.eat(&Token::RParen)?;
        self.eat(&Token::Semi)?;
        Ok(Stmt::Print(e))
    }

    /// A "simple" statement: declaration, assignment, increment/decrement or
    /// expression statement. Used in blocks and in `for` headers.
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.is_type_start() {
            let ty = self.parse_type()?;
            let name = self.ident()?;
            let init = if matches!(self.peek(), Token::Assign) {
                self.bump();
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Decl { name, ty, init });
        }
        let e = self.expr()?;
        match self.peek() {
            Token::Assign => {
                self.bump();
                let value = self.expr()?;
                let target = self.expr_to_lvalue(e)?;
                Ok(Stmt::Assign { target, value })
            }
            Token::PlusPlus | Token::MinusMinus => {
                let op = if matches!(self.bump(), Token::PlusPlus) {
                    BinOp::Add
                } else {
                    BinOp::Sub
                };
                let target = self.expr_to_lvalue(e.clone())?;
                Ok(Stmt::Assign {
                    target,
                    value: Expr::bin(op, e, Expr::Int(1)),
                })
            }
            _ => Ok(Stmt::Expr(e)),
        }
    }

    fn expr_to_lvalue(&self, e: Expr) -> Result<LValue, ParseError> {
        match e {
            Expr::Var(name) => Ok(LValue::Var(name)),
            Expr::Field(obj, name) => Ok(LValue::Field(*obj, name)),
            Expr::StaticField(class, name) => Ok(LValue::StaticField(class, name)),
            other => Err(self.err(format!("not an assignable target: {other:?}"))),
        }
    }

    // ---- expressions, lowest to highest precedence ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.bit_or()
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_xor()?;
        while matches!(self.peek(), Token::Pipe) {
            self.bump();
            let rhs = self.bit_xor()?;
            lhs = Expr::bin(BinOp::BitOr, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_and()?;
        while matches!(self.peek(), Token::Caret) {
            self.bump();
            let rhs = self.bit_and()?;
            lhs = Expr::bin(BinOp::BitXor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while matches!(self.peek(), Token::Amp) {
            self.bump();
            let rhs = self.equality()?;
            lhs = Expr::bin(BinOp::BitAnd, lhs, rhs);
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Token::EqEq => BinOp::Eq,
                Token::Ne => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.shift()?;
        loop {
            let op = match self.peek() {
                Token::Lt => BinOp::Lt,
                Token::Le => BinOp::Le,
                Token::Gt => BinOp::Gt,
                Token::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.shift()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Token::Shl => BinOp::Shl,
                Token::Shr => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Token::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(e)))
            }
            Token::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(e)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while matches!(self.peek(), Token::Dot) {
            self.bump();
            let name = self.ident()?;
            if matches!(self.peek(), Token::LParen) {
                if name == "intValue" {
                    self.eat(&Token::LParen)?;
                    self.eat(&Token::RParen)?;
                    e = Expr::UnboxInt(Box::new(e));
                } else {
                    let args = self.args()?;
                    e = Expr::Call(Call {
                        target: CallTarget::Instance(Box::new(e)),
                        method: name,
                        args,
                    });
                }
            } else {
                e = Expr::Field(Box::new(e), name);
            }
        }
        Ok(e)
    }

    fn args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.eat(&Token::LParen)?;
        let mut args = Vec::new();
        if !matches!(self.peek(), Token::RParen) {
            loop {
                args.push(self.expr()?);
                if matches!(self.peek(), Token::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&Token::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Token::Long(v) => {
                self.bump();
                Ok(Expr::Long(v))
            }
            Token::LParen => {
                self.bump();
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => match name.as_str() {
                "true" => {
                    self.bump();
                    Ok(Expr::Bool(true))
                }
                "false" => {
                    self.bump();
                    Ok(Expr::Bool(false))
                }
                "null" => {
                    self.bump();
                    Ok(Expr::Null)
                }
                "this" => {
                    self.bump();
                    Ok(Expr::This)
                }
                "new" => {
                    self.bump();
                    let class = self.ident()?;
                    self.eat(&Token::LParen)?;
                    self.eat(&Token::RParen)?;
                    Ok(Expr::New(class))
                }
                "Integer" if matches!(self.peek2(), Token::Dot) => {
                    self.bump();
                    self.eat(&Token::Dot)?;
                    self.eat_kw("valueOf")?;
                    self.eat(&Token::LParen)?;
                    let inner = self.expr()?;
                    self.eat(&Token::RParen)?;
                    Ok(Expr::BoxInt(Box::new(inner)))
                }
                "Class" if matches!(self.peek2(), Token::Dot) => self.reflect_chain(),
                _ => {
                    self.bump();
                    // `T.class`, `T.f`, `T.m(..)` — static references when
                    // the identifier names a class.
                    if self.class_names.contains(&name) && matches!(self.peek(), Token::Dot) {
                        self.bump();
                        let member = self.ident()?;
                        if member == "class" {
                            return Ok(Expr::ClassLit(name));
                        }
                        if matches!(self.peek(), Token::LParen) {
                            let args = self.args()?;
                            return Ok(Expr::Call(Call {
                                target: CallTarget::Static(name),
                                method: member,
                                args,
                            }));
                        }
                        return Ok(Expr::StaticField(name, member));
                    }
                    Ok(Expr::Var(name))
                }
            },
            other => Err(self.err(format!("expected expression, found `{other}`"))),
        }
    }

    /// Parses `Class.forName("C").getDeclaredMethod("m").invoke(recv, args..)`.
    fn reflect_chain(&mut self) -> Result<Expr, ParseError> {
        self.eat_kw("Class")?;
        self.eat(&Token::Dot)?;
        self.eat_kw("forName")?;
        self.eat(&Token::LParen)?;
        let class = self.string_lit()?;
        self.eat(&Token::RParen)?;
        self.eat(&Token::Dot)?;
        self.eat_kw("getDeclaredMethod")?;
        self.eat(&Token::LParen)?;
        let method = self.string_lit()?;
        self.eat(&Token::RParen)?;
        self.eat(&Token::Dot)?;
        self.eat_kw("invoke")?;
        let mut args = self.args()?;
        if args.is_empty() {
            return Err(self.err("reflective invoke needs at least a receiver argument"));
        }
        let receiver = match args.remove(0) {
            Expr::Null => None,
            recv => Some(Box::new(recv)),
        };
        Ok(Expr::Reflect(Reflect {
            class,
            method,
            receiver,
            args,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_main(body: &str) -> Program {
        parse(&format!(
            "class T {{ int f; static int s; static void main() {{ {body} }} int g(int a) {{ return a; }} }}"
        ))
        .unwrap()
    }

    fn main_stmts(p: &Program) -> &Vec<Stmt> {
        &p.classes[0].methods[0].body.0
    }

    #[test]
    fn parses_decl_and_print() {
        let p = parse_main("int x = 1 + 2; System.out.println(x);");
        let stmts = main_stmts(&p);
        assert!(matches!(&stmts[0], Stmt::Decl { name, .. } if name == "x"));
        assert!(matches!(&stmts[1], Stmt::Print(_)));
    }

    #[test]
    fn parses_for_with_increment() {
        let p = parse_main("for (int i = 0; i < 10; i++) { System.out.println(i); }");
        match &main_stmts(&p)[0] {
            Stmt::For { init, update, .. } => {
                assert!(init.is_some());
                assert!(matches!(update.as_deref(), Some(Stmt::Assign { .. })));
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_synchronized_on_class_literal() {
        let p = parse_main("synchronized (T.class) { int y = 1; }");
        match &main_stmts(&p)[0] {
            Stmt::Sync { lock, .. } => assert_eq!(lock, &Expr::ClassLit("T".into())),
            other => panic!("expected sync, got {other:?}"),
        }
    }

    #[test]
    fn parses_reflective_call() {
        let p = parse_main(
            "T t = new T(); int m = Class.forName(\"T\").getDeclaredMethod(\"g\").invoke(t, 3);",
        );
        match &main_stmts(&p)[1] {
            Stmt::Decl {
                init: Some(Expr::Reflect(r)),
                ..
            } => {
                assert_eq!(r.class, "T");
                assert_eq!(r.method, "g");
                assert!(r.receiver.is_some());
                assert_eq!(r.args.len(), 1);
            }
            other => panic!("expected reflect decl, got {other:?}"),
        }
    }

    #[test]
    fn parses_static_reflective_call_with_null_receiver() {
        let p =
            parse_main("int m = Class.forName(\"T\").getDeclaredMethod(\"g\").invoke(null, 3);");
        match &main_stmts(&p)[0] {
            Stmt::Decl {
                init: Some(Expr::Reflect(r)),
                ..
            } => assert!(r.receiver.is_none()),
            other => panic!("expected reflect decl, got {other:?}"),
        }
    }

    #[test]
    fn parses_boxing_chain() {
        let p = parse_main("Integer b = Integer.valueOf(41); int x = b.intValue() + 1;");
        match &main_stmts(&p)[0] {
            Stmt::Decl {
                init: Some(Expr::BoxInt(_)),
                ..
            } => {}
            other => panic!("expected boxed decl, got {other:?}"),
        }
        match &main_stmts(&p)[1] {
            Stmt::Decl {
                init: Some(Expr::Binary(BinOp::Add, lhs, _)),
                ..
            } => assert!(matches!(**lhs, Expr::UnboxInt(_))),
            other => panic!("expected unbox add, got {other:?}"),
        }
    }

    #[test]
    fn static_vs_instance_disambiguation() {
        let p = parse_main("int a = T.s; T t = new T(); int b = t.f;");
        assert!(matches!(
            &main_stmts(&p)[0],
            Stmt::Decl {
                init: Some(Expr::StaticField(..)),
                ..
            }
        ));
        assert!(matches!(
            &main_stmts(&p)[2],
            Stmt::Decl {
                init: Some(Expr::Field(..)),
                ..
            }
        ));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_main("int x = 1 + 2 * 3;");
        match &main_stmts(&p)[0] {
            Stmt::Decl {
                init: Some(Expr::Binary(BinOp::Add, _, rhs)),
                ..
            } => assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_parentheses_override() {
        let p = parse_main("int x = (1 + 2) * 3;");
        match &main_stmts(&p)[0] {
            Stmt::Decl {
                init: Some(Expr::Binary(BinOp::Mul, lhs, _)),
                ..
            } => assert!(matches!(**lhs, Expr::Binary(BinOp::Add, _, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_synchronized_method_modifier() {
        let p =
            parse("class T { synchronized int g() { return 1; } static void main() { } }").unwrap();
        assert!(p.classes[0].methods[0].is_sync);
        assert!(!p.classes[0].methods[0].is_static);
    }

    #[test]
    fn parses_field_with_negative_initializer() {
        let p = parse("class T { static int s = -5; static void main() { } }").unwrap();
        assert_eq!(p.classes[0].fields[0].init, Some(Expr::Int(-5)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("class T {").is_err());
        assert!(parse("klass T {}").is_err());
        assert!(parse("class T { static void main() { 1 = 2; } }").is_err());
    }

    #[test]
    fn parses_if_else_and_while() {
        let p = parse_main("if (1 < 2) { int a = 1; } else { int b = 2; } while (false) { }");
        assert!(matches!(
            &main_stmts(&p)[0],
            Stmt::If {
                else_b: Some(_),
                ..
            }
        ));
        assert!(matches!(&main_stmts(&p)[1], Stmt::While { .. }));
    }
}
