//! Built-in seed programs.
//!
//! The paper seeds MopFuzzer with OpenJDK's regression test suites; this
//! module provides a corpus of MiniJava programs of the same flavour — small
//! deterministic programs with a hot loop in `main` so the simulated JIT
//! compiles the interesting method.

use crate::ast::Program;
use crate::parser::parse;

/// A named seed program.
#[derive(Debug, Clone)]
pub struct Seed {
    /// Stable seed name used in reports and statistics.
    pub name: &'static str,
    /// The parsed program.
    pub program: Program,
}

fn seed(name: &'static str, src: &str) -> Seed {
    Seed {
        name,
        program: parse(src).unwrap_or_else(|e| panic!("builtin seed {name} is invalid: {e}")),
    }
}

/// The paper's Listing 2: the motivating seed whose mutation chain triggers
/// the JDK-8312744 analogue.
pub fn listing2() -> Seed {
    seed(
        "listing2",
        r#"
        class T {
            int f;
            static void main() {
                T t = new T();
                for (int i = 0; i < 5_000; i++) {
                    t.foo(i);
                }
                System.out.println(t.f);
            }
            void foo(int i) {
                f = f + i % 7;
            }
        }
        "#,
    )
}

/// Arithmetic kernel: exercises GVN, algebraic simplification and loop
/// optimizations.
pub fn arith_loop() -> Seed {
    seed(
        "arith_loop",
        r#"
        class A {
            static int acc;
            static void main() {
                for (int i = 0; i < 4_000; i++) {
                    A.step(i);
                }
                System.out.println(A.acc);
            }
            static void step(int i) {
                int a = i * 2 + 1;
                int b = a - i;
                acc = acc + b % 13 + (a & 7);
            }
        }
        "#,
    )
}

/// Synchronized counter: exercises lock elimination/coarsening and nested
/// monitors.
pub fn sync_counter() -> Seed {
    seed(
        "sync_counter",
        r#"
        class C {
            int n;
            static void main() {
                C c = new C();
                for (int i = 0; i < 3_000; i++) {
                    c.bump(i);
                }
                System.out.println(c.n);
            }
            void bump(int i) {
                synchronized (this) {
                    n = n + 1;
                }
                synchronized (this) {
                    n = n + i % 3;
                }
            }
        }
        "#,
    )
}

/// Boxing round-trips: exercises autobox elimination.
pub fn boxing_mix() -> Seed {
    seed(
        "boxing_mix",
        r#"
        class B {
            static void main() {
                int total = 0;
                for (int i = 0; i < 3_000; i++) {
                    total = total + B.round(i);
                }
                System.out.println(total);
            }
            static int round(int v) {
                Integer b = Integer.valueOf(v % 11);
                return b.intValue() + 1;
            }
        }
        "#,
    )
}

/// Reflection hot path: exercises de-reflection.
pub fn reflective_call() -> Seed {
    seed(
        "reflective_call",
        r#"
        class R {
            int f;
            int get(int d) { return f + d; }
            static void main() {
                R r = new R();
                r.f = 5;
                int sum = 0;
                for (int i = 0; i < 2_000; i++) {
                    sum = sum + Class.forName("R").getDeclaredMethod("get").invoke(r, i % 4);
                }
                System.out.println(sum);
            }
        }
        "#,
    )
}

/// Branchy method with a rare path: exercises uncommon traps and
/// deoptimization.
pub fn rare_branch() -> Seed {
    seed(
        "rare_branch",
        r#"
        class D {
            static int hits;
            static void main() {
                for (int i = 0; i < 4_000; i++) {
                    D.probe(i);
                }
                System.out.println(D.hits);
            }
            static void probe(int i) {
                if (i % 997 == 3) {
                    hits = hits + 100;
                } else {
                    hits = hits + 1;
                }
            }
        }
        "#,
    )
}

/// Escaping vs non-escaping allocations: exercises escape analysis and
/// scalar replacement.
pub fn alloc_local() -> Seed {
    seed(
        "alloc_local",
        r#"
        class E {
            int v;
            static int out;
            static void main() {
                for (int i = 0; i < 3_000; i++) {
                    E.work(i);
                }
                System.out.println(E.out);
            }
            static void work(int i) {
                E e = new E();
                e.v = i * 3;
                out = out + e.v % 17;
            }
        }
        "#,
    )
}

/// Call-heavy pipeline: exercises inlining across small helpers.
pub fn call_chain() -> Seed {
    seed(
        "call_chain",
        r#"
        class K {
            static int acc;
            static int add(int x, int y) { return x + y; }
            static int twist(int x) { return K.add(x, 3) * 2; }
            static void main() {
                for (int i = 0; i < 4_000; i++) {
                    acc = acc + K.twist(i) % 9;
                }
                System.out.println(acc);
            }
        }
        "#,
    )
}

/// Nested loop with inner dependent bound: exercises unrolling and peeling.
pub fn nested_loops() -> Seed {
    seed(
        "nested_loops",
        r#"
        class N {
            static long total;
            static void main() {
                for (int i = 0; i < 600; i++) {
                    N.row(i);
                }
                System.out.println(total);
            }
            static void row(int i) {
                for (int j = 0; j < 8; j++) {
                    total = total + i * j;
                }
            }
        }
        "#,
    )
}

/// Stateful instance fields plus while loop: mixed shape.
pub fn field_state() -> Seed {
    seed(
        "field_state",
        r#"
        class S {
            int a;
            int b;
            static void main() {
                S s = new S();
                int i = 0;
                while (i < 3_000) {
                    s.shuffle(i);
                    i = i + 1;
                }
                System.out.println(s.a + s.b);
            }
            void shuffle(int i) {
                a = a + i % 5;
                b = b + a % 3;
                a = a - b % 2;
            }
        }
        "#,
    )
}

/// Returns the full built-in corpus, in a stable order.
pub fn all_seeds() -> Vec<Seed> {
    vec![
        listing2(),
        arith_loop(),
        sync_counter(),
        boxing_mix(),
        reflective_call(),
        rare_branch(),
        alloc_local(),
        call_chain(),
        nested_loops(),
        field_state(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::print;

    #[test]
    fn all_seeds_parse_and_roundtrip() {
        for s in all_seeds() {
            let printed = print(&s.program);
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("seed {} does not round-trip: {e}", s.name));
            assert_eq!(
                reparsed, s.program,
                "round-trip mismatch for seed {}",
                s.name
            );
        }
    }

    #[test]
    fn all_seeds_have_main_and_hot_loop() {
        for s in all_seeds() {
            assert!(s.program.main_method().is_some(), "{} lacks main", s.name);
            assert!(s.program.stmt_count() >= 4, "{} too trivial", s.name);
        }
    }

    #[test]
    fn seed_names_are_unique() {
        let mut names: Vec<_> = all_seeds().iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all_seeds().len());
    }
}
