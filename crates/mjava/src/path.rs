//! Stable addressing of statements inside a program.
//!
//! MopFuzzer applies every mutator to the *same* mutation point across
//! iterations (the paper's key strategy, §3), so mutators need a durable way
//! to name "this statement in this method" that survives edits around it.
//! [`StmtPath`] is that address: a class index, a method index, and a chain
//! of block-descent steps.

use crate::ast::{Block, Program, Stmt};

/// Which nested block of a compound statement a path descends into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// The `then` branch of an `if`.
    Then,
    /// The `else` branch of an `if`.
    Else,
    /// The body of a `while`/`for`/`synchronized`/bare block.
    Body,
}

/// One navigation step: pick the statement at `index` in the current block
/// and, unless this is the final step, descend into one of its regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Step {
    /// Index of the statement within the current block.
    pub index: usize,
    /// Region to descend into; `None` only on the final step.
    pub into: Option<Region>,
}

/// The address of a single statement: the mutation point abstraction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StmtPath {
    /// Index of the class in [`Program::classes`].
    pub class: usize,
    /// Index of the method in the class.
    pub method: usize,
    /// Descent steps; the last step's `into` must be `None`.
    pub steps: Vec<Step>,
}

impl StmtPath {
    /// Creates a path to a top-level statement of a method body.
    pub fn top_level(class: usize, method: usize, index: usize) -> StmtPath {
        StmtPath {
            class,
            method,
            steps: vec![Step { index, into: None }],
        }
    }

    /// Returns the path to this statement's enclosing statement, if the
    /// statement is nested (i.e. not directly in the method body).
    pub fn parent(&self) -> Option<StmtPath> {
        if self.steps.len() < 2 {
            return None;
        }
        let mut steps = self.steps.clone();
        steps.pop();
        let last = steps.last_mut().expect("len checked above");
        last.into = None;
        Some(StmtPath {
            class: self.class,
            method: self.method,
            steps,
        })
    }

    /// Extends this path one level deeper: the statement itself becomes an
    /// intermediate step into `region`, addressing `index` inside it.
    pub fn child(&self, region: Region, index: usize) -> StmtPath {
        let mut steps = self.steps.clone();
        let last = steps.last_mut().expect("paths are never empty");
        last.into = Some(region);
        steps.push(Step { index, into: None });
        StmtPath {
            class: self.class,
            method: self.method,
            steps,
        }
    }

    /// Nesting depth (1 = directly in the method body).
    pub fn depth(&self) -> usize {
        self.steps.len()
    }
}

/// Returns the nested block of `stmt` selected by `region`, if it exists.
pub fn region_of(stmt: &Stmt, region: Region) -> Option<&Block> {
    match (stmt, region) {
        (Stmt::If { then_b, .. }, Region::Then) => Some(then_b),
        (Stmt::If { else_b, .. }, Region::Else) => else_b.as_ref(),
        (Stmt::While { body, .. }, Region::Body)
        | (Stmt::For { body, .. }, Region::Body)
        | (Stmt::Sync { body, .. }, Region::Body)
        | (Stmt::Block(body), Region::Body) => Some(body),
        _ => None,
    }
}

/// Mutable variant of [`region_of`].
pub fn region_of_mut(stmt: &mut Stmt, region: Region) -> Option<&mut Block> {
    match (stmt, region) {
        (Stmt::If { then_b, .. }, Region::Then) => Some(then_b),
        (Stmt::If { else_b, .. }, Region::Else) => else_b.as_mut(),
        (Stmt::While { body, .. }, Region::Body)
        | (Stmt::For { body, .. }, Region::Body)
        | (Stmt::Sync { body, .. }, Region::Body)
        | (Stmt::Block(body), Region::Body) => Some(body),
        _ => None,
    }
}

/// All regions a statement actually has, in a fixed order.
pub fn regions_of(stmt: &Stmt) -> Vec<Region> {
    match stmt {
        Stmt::If { else_b, .. } => {
            if else_b.is_some() {
                vec![Region::Then, Region::Else]
            } else {
                vec![Region::Then]
            }
        }
        Stmt::While { .. } | Stmt::For { .. } | Stmt::Sync { .. } | Stmt::Block(_) => {
            vec![Region::Body]
        }
        _ => vec![],
    }
}

/// Resolves the block that directly contains the statement addressed by
/// `path`, along with the statement's index in it.
pub fn containing_block<'p>(program: &'p Program, path: &StmtPath) -> Option<(&'p Block, usize)> {
    let method = program.classes.get(path.class)?.methods.get(path.method)?;
    let mut block = &method.body;
    let (last, inner) = path.steps.split_last()?;
    for step in inner {
        let stmt = block.0.get(step.index)?;
        block = region_of(stmt, step.into?)?;
    }
    if last.into.is_some() || last.index >= block.0.len() {
        return None;
    }
    Some((block, last.index))
}

/// Mutable variant of [`containing_block`].
pub fn containing_block_mut<'p>(
    program: &'p mut Program,
    path: &StmtPath,
) -> Option<(&'p mut Block, usize)> {
    let method = program
        .classes
        .get_mut(path.class)?
        .methods
        .get_mut(path.method)?;
    let mut block = &mut method.body;
    let (last, inner) = path.steps.split_last()?;
    for step in inner {
        let stmt = block.0.get_mut(step.index)?;
        block = region_of_mut(stmt, step.into?)?;
    }
    if last.into.is_some() || last.index >= block.0.len() {
        return None;
    }
    Some((block, last.index))
}

/// Resolves the statement addressed by `path`.
pub fn stmt_at<'p>(program: &'p Program, path: &StmtPath) -> Option<&'p Stmt> {
    let (block, index) = containing_block(program, path)?;
    block.0.get(index)
}

/// Mutable variant of [`stmt_at`].
pub fn stmt_at_mut<'p>(program: &'p mut Program, path: &StmtPath) -> Option<&'p mut Stmt> {
    let (block, index) = containing_block_mut(program, path)?;
    block.0.get_mut(index)
}

/// Inserts `stmts` immediately before the addressed statement and returns
/// the updated path of the original statement (shifted right).
///
/// Returns `None` (and leaves the program unchanged) if the path is stale.
pub fn insert_before(program: &mut Program, path: &StmtPath, stmts: Vec<Stmt>) -> Option<StmtPath> {
    let n = stmts.len();
    let (block, index) = containing_block_mut(program, path)?;
    for (k, s) in stmts.into_iter().enumerate() {
        block.0.insert(index + k, s);
    }
    let mut new_path = path.clone();
    new_path.steps.last_mut().expect("non-empty").index = index + n;
    Some(new_path)
}

/// Replaces the addressed statement with `replacement` statements.
/// Returns `true` on success, `false` if the path is stale.
pub fn replace_stmt(program: &mut Program, path: &StmtPath, replacement: Vec<Stmt>) -> bool {
    let Some((block, index)) = containing_block_mut(program, path) else {
        return false;
    };
    block.0.splice(index..=index, replacement);
    true
}

/// Removes the addressed statement. Returns the removed statement, or `None`
/// if the path is stale.
pub fn remove_stmt(program: &mut Program, path: &StmtPath) -> Option<Stmt> {
    let (block, index) = containing_block_mut(program, path)?;
    Some(block.0.remove(index))
}

/// Enumerates the paths of every statement in the method, in source order
/// (pre-order: a compound statement precedes its children).
pub fn paths_in_method(program: &Program, class: usize, method: usize) -> Vec<StmtPath> {
    let Some(m) = program
        .classes
        .get(class)
        .and_then(|c| c.methods.get(method))
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (i, _) in m.body.0.iter().enumerate() {
        let path = StmtPath::top_level(class, method, i);
        collect_paths(&m.body.0[i], &path, &mut out);
    }
    out
}

/// Enumerates every statement path in the whole program, in source order.
pub fn all_paths(program: &Program) -> Vec<StmtPath> {
    let mut out = Vec::new();
    for (ci, class) in program.classes.iter().enumerate() {
        for (mi, _) in class.methods.iter().enumerate() {
            out.extend(paths_in_method(program, ci, mi));
        }
    }
    out
}

fn collect_paths(stmt: &Stmt, path: &StmtPath, out: &mut Vec<StmtPath>) {
    out.push(path.clone());
    for region in regions_of(stmt) {
        if let Some(block) = region_of(stmt, region) {
            for (i, child) in block.0.iter().enumerate() {
                let child_path = path.child(region, i);
                collect_paths(child, &child_path, out);
            }
        }
    }
}

/// Finds the innermost `synchronized` statement strictly enclosing `path`.
pub fn enclosing_sync(program: &Program, path: &StmtPath) -> Option<StmtPath> {
    let mut cursor = path.parent();
    while let Some(p) = cursor {
        if matches!(stmt_at(program, &p), Some(Stmt::Sync { .. })) {
            return Some(p);
        }
        cursor = p.parent();
    }
    None
}

/// Counts how many `synchronized` statements (transitively) enclose `path`.
pub fn sync_nesting_depth(program: &Program, path: &StmtPath) -> usize {
    let mut depth = 0;
    let mut cursor = path.parent();
    while let Some(p) = cursor {
        if matches!(stmt_at(program, &p), Some(Stmt::Sync { .. })) {
            depth += 1;
        }
        cursor = p.parent();
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn sample() -> Program {
        parse(
            r#"
            class T {
                static void main() {
                    int x = 0;
                    synchronized (T.class) {
                        if (x < 1) {
                            x = 1;
                        } else {
                            x = 2;
                        }
                        while (x < 10) {
                            x = x + 1;
                        }
                    }
                    System.out.println(x);
                }
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn all_paths_enumerates_every_statement() {
        let p = sample();
        let paths = all_paths(&p);
        assert_eq!(paths.len(), p.stmt_count());
        for path in &paths {
            assert!(stmt_at(&p, path).is_some(), "stale path {path:?}");
        }
    }

    #[test]
    fn resolves_nested_statement() {
        let p = sample();
        // main[1] = sync; sync.body[0] = if; if.then[0] = `x = 1;`
        let path = StmtPath::top_level(0, 0, 1)
            .child(Region::Body, 0)
            .child(Region::Then, 0);
        assert!(matches!(stmt_at(&p, &path), Some(Stmt::Assign { .. })));
    }

    #[test]
    fn parent_and_child_are_inverse() {
        let p = sample();
        for path in all_paths(&p) {
            if let Some(parent) = path.parent() {
                assert!(stmt_at(&p, &parent).is_some());
                assert!(path.depth() == parent.depth() + 1);
            }
        }
    }

    #[test]
    fn insert_before_shifts_path() {
        let mut p = sample();
        let path = StmtPath::top_level(0, 0, 2); // the println
        let new_path = insert_before(
            &mut p,
            &path,
            vec![
                Stmt::Expr(crate::ast::Expr::Int(7)),
                Stmt::Expr(crate::ast::Expr::Int(8)),
            ],
        )
        .unwrap();
        assert!(matches!(stmt_at(&p, &new_path), Some(Stmt::Print(_))));
        assert_eq!(new_path.steps[0].index, 4);
    }

    #[test]
    fn replace_stmt_swaps_in_multiple() {
        let mut p = sample();
        let path = StmtPath::top_level(0, 0, 0);
        assert!(replace_stmt(
            &mut p,
            &path,
            vec![
                Stmt::Expr(crate::ast::Expr::Int(1)),
                Stmt::Expr(crate::ast::Expr::Int(2))
            ]
        ));
        assert_eq!(p.classes[0].methods[0].body.len(), 4);
    }

    #[test]
    fn remove_stmt_returns_removed() {
        let mut p = sample();
        let path = StmtPath::top_level(0, 0, 0);
        let removed = remove_stmt(&mut p, &path).unwrap();
        assert!(matches!(removed, Stmt::Decl { .. }));
        assert_eq!(p.classes[0].methods[0].body.len(), 2);
    }

    #[test]
    fn enclosing_sync_found_for_nested_statement() {
        let p = sample();
        let inner = StmtPath::top_level(0, 0, 1)
            .child(Region::Body, 1)
            .child(Region::Body, 0); // while body: x = x + 1
        let sync = enclosing_sync(&p, &inner).unwrap();
        assert!(matches!(stmt_at(&p, &sync), Some(Stmt::Sync { .. })));
        assert_eq!(sync_nesting_depth(&p, &inner), 1);
    }

    #[test]
    fn enclosing_sync_absent_at_top_level() {
        let p = sample();
        let path = StmtPath::top_level(0, 0, 0);
        assert!(enclosing_sync(&p, &path).is_none());
        assert_eq!(sync_nesting_depth(&p, &path), 0);
    }

    #[test]
    fn stale_paths_resolve_to_none() {
        let p = sample();
        let stale = StmtPath::top_level(0, 0, 99);
        assert!(stmt_at(&p, &stale).is_none());
        let mut p2 = p.clone();
        assert!(insert_before(&mut p2, &stale, vec![]).is_none());
        assert_eq!(p, p2);
    }
}
