//! Abstract syntax tree for MiniJava, the Java subset that MopFuzzer's
//! optimization-evoking mutators transform.
//!
//! The subset deliberately covers exactly the constructs the paper's 13
//! mutators need: classes with static/instance fields and methods,
//! `synchronized` blocks and methods, counted `for` loops, `while` loops,
//! branches, autoboxing (`Integer.valueOf` / `intValue`), reflective calls
//! (`Class.forName("T").getDeclaredMethod("f").invoke(..)`), and integer
//! arithmetic.

use std::fmt;

/// A MiniJava type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 32-bit integer, stored as `i64` internally but wrapped to 32 bits.
    Int,
    /// 64-bit integer.
    Long,
    /// Boolean.
    Bool,
    /// Boxed integer (`java.lang.Integer`).
    Integer,
    /// Reference to a user class by name.
    Ref(String),
    /// No value; only valid as a method return type.
    Void,
}

impl Type {
    /// Returns true if the type is a primitive numeric type (`int` or `long`).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Long)
    }

    /// Returns true if values of this type live on the heap.
    pub fn is_reference(&self) -> bool {
        matches!(self, Type::Integer | Type::Ref(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Long => write!(f, "long"),
            Type::Bool => write!(f, "boolean"),
            Type::Integer => write!(f, "Integer"),
            Type::Ref(name) => write!(f, "{name}"),
            Type::Void => write!(f, "void"),
        }
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Boolean negation `!e`.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "!"),
        }
    }
}

/// A binary operator. MiniJava has no short-circuit operators; `&`, `|` and
/// `^` operate on both integers and booleans as in Java.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl BinOp {
    /// Returns true for operators producing a boolean result.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Returns true for arithmetic operators (including bitwise and shifts).
    pub fn is_arithmetic(&self) -> bool {
        !self.is_comparison()
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// The target of a direct (non-reflective) method call.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CallTarget {
    /// `ClassName.method(..)`.
    Static(String),
    /// `expr.method(..)`.
    Instance(Box<Expr>),
}

/// A direct method call.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Call {
    /// Receiver of the call.
    pub target: CallTarget,
    /// Method name.
    pub method: String,
    /// Argument expressions.
    pub args: Vec<Expr>,
}

/// A reflective call, printed as
/// `Class.forName("C").getDeclaredMethod("m").invoke(recv, args..)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Reflect {
    /// Class name looked up via `Class.forName`.
    pub class: String,
    /// Method name looked up via `getDeclaredMethod`.
    pub method: String,
    /// Receiver expression; `None` for static methods (printed as `null`).
    pub receiver: Option<Box<Expr>>,
    /// Argument expressions.
    pub args: Vec<Expr>,
}

/// A MiniJava expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// `int` literal.
    Int(i64),
    /// `long` literal, printed with an `L` suffix.
    Long(i64),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// The `this` reference (only valid in instance methods).
    This,
    /// Local variable or parameter reference.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Direct method call.
    Call(Call),
    /// Reflective method call.
    Reflect(Reflect),
    /// Instance field access `expr.field`.
    Field(Box<Expr>, String),
    /// Static field access `ClassName.field`.
    StaticField(String, String),
    /// Object allocation `new ClassName()`.
    New(String),
    /// Autoboxing `Integer.valueOf(e)`.
    BoxInt(Box<Expr>),
    /// Unboxing `e.intValue()`.
    UnboxInt(Box<Expr>),
    /// Class literal `ClassName.class`, usable as a lock object.
    ClassLit(String),
}

impl Expr {
    /// Convenience constructor for a binary expression.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a local-variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Returns true if the expression is a literal constant.
    pub fn is_literal(&self) -> bool {
        matches!(
            self,
            Expr::Int(_) | Expr::Long(_) | Expr::Bool(_) | Expr::Null
        )
    }
}

/// The left-hand side of an assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LValue {
    /// Local variable.
    Var(String),
    /// Instance field `expr.field`.
    Field(Expr, String),
    /// Static field `ClassName.field`.
    StaticField(String, String),
}

/// A MiniJava statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// Local variable declaration, optionally with an initializer.
    Decl {
        /// Declared name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializer expression.
        init: Option<Expr>,
    },
    /// Assignment `target = value;`.
    Assign {
        /// Assignment target.
        target: LValue,
        /// Assigned value.
        value: Expr,
    },
    /// Expression statement (a call evaluated for effect).
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Then branch.
        then_b: Block,
        /// Optional else branch.
        else_b: Option<Block>,
    },
    /// `while (cond) { .. }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// Counted `for` loop. `init` and `update` are restricted to
    /// declarations/assignments, which is all the mutators generate.
    For {
        /// Loop initializer.
        init: Option<Box<Stmt>>,
        /// Loop condition.
        cond: Expr,
        /// Loop update statement.
        update: Option<Box<Stmt>>,
        /// Loop body.
        body: Block,
    },
    /// `synchronized (lock) { .. }`.
    Sync {
        /// Monitor object expression.
        lock: Expr,
        /// Protected body.
        body: Block,
    },
    /// A free-standing block `{ .. }`.
    Block(Block),
    /// `return;` or `return expr;`.
    Return(Option<Expr>),
    /// `System.out.println(expr);` — the observable program output used by
    /// the differential oracle.
    Print(Expr),
}

impl Stmt {
    /// Short lowercase tag for diagnostics and statistics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Stmt::Decl { .. } => "decl",
            Stmt::Assign { .. } => "assign",
            Stmt::Expr(_) => "expr",
            Stmt::If { .. } => "if",
            Stmt::While { .. } => "while",
            Stmt::For { .. } => "for",
            Stmt::Sync { .. } => "sync",
            Stmt::Block(_) => "block",
            Stmt::Return(_) => "return",
            Stmt::Print(_) => "print",
        }
    }
}

/// A sequence of statements.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Block(pub Vec<Stmt>);

impl Block {
    /// Creates an empty block.
    pub fn new() -> Block {
        Block(Vec::new())
    }

    /// Number of statements directly in this block.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns true if the block has no statements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<Stmt>> for Block {
    fn from(stmts: Vec<Stmt>) -> Block {
        Block(stmts)
    }
}

impl FromIterator<Stmt> for Block {
    fn from_iter<I: IntoIterator<Item = Stmt>>(iter: I) -> Block {
        Block(iter.into_iter().collect())
    }
}

/// A method parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A method definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Method {
    /// Method name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: Type,
    /// True for `static` methods.
    pub is_static: bool,
    /// True for `synchronized` methods.
    pub is_sync: bool,
    /// Method body.
    pub body: Block,
}

impl Method {
    /// Creates a new non-synchronized method.
    pub fn new(
        name: impl Into<String>,
        params: Vec<Param>,
        ret: Type,
        is_static: bool,
        body: Block,
    ) -> Method {
        Method {
            name: name.into(),
            params,
            ret,
            is_static,
            is_sync: false,
            body,
        }
    }
}

/// A field definition. Initializers are restricted to literals so class
/// loading needs no evaluation order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// True for `static` fields.
    pub is_static: bool,
    /// Optional literal initializer.
    pub init: Option<Expr>,
}

/// A class definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Class {
    /// Class name.
    pub name: String,
    /// Field definitions.
    pub fields: Vec<Field>,
    /// Method definitions.
    pub methods: Vec<Method>,
}

impl Class {
    /// Creates an empty class.
    pub fn new(name: impl Into<String>) -> Class {
        Class {
            name: name.into(),
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Looks up a method by name.
    pub fn method(&self, name: &str) -> Option<&Method> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Looks up a method by name, mutably.
    pub fn method_mut(&mut self, name: &str) -> Option<&mut Method> {
        self.methods.iter_mut().find(|m| m.name == name)
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// A whole MiniJava program: one or more classes, one of which must define
/// `static void main()`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Program {
    /// Class definitions.
    pub classes: Vec<Class>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Looks up a class by name.
    pub fn class(&self, name: &str) -> Option<&Class> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Looks up a class by name, mutably.
    pub fn class_mut(&mut self, name: &str) -> Option<&mut Class> {
        self.classes.iter_mut().find(|c| c.name == name)
    }

    /// Finds the `(class index, method index)` of `static main`, if any.
    pub fn main_method(&self) -> Option<(usize, usize)> {
        for (ci, class) in self.classes.iter().enumerate() {
            for (mi, method) in class.methods.iter().enumerate() {
                if method.name == "main" && method.is_static {
                    return Some((ci, mi));
                }
            }
        }
        None
    }

    /// Generates an identifier with the given prefix that collides with no
    /// identifier currently used anywhere in the program.
    ///
    /// Mutators use this to introduce fresh locals, fields and helper
    /// methods without tracking allocation state between iterations.
    pub fn fresh_name(&self, prefix: &str) -> String {
        let used = self.collect_identifiers();
        let mut n = 0usize;
        loop {
            let candidate = format!("{prefix}{n}");
            if !used.contains(&candidate) {
                return candidate;
            }
            n += 1;
        }
    }

    fn collect_identifiers(&self) -> std::collections::HashSet<String> {
        let mut out = std::collections::HashSet::new();
        for class in &self.classes {
            out.insert(class.name.clone());
            for field in &class.fields {
                out.insert(field.name.clone());
            }
            for method in &class.methods {
                out.insert(method.name.clone());
                for p in &method.params {
                    out.insert(p.name.clone());
                }
                collect_block_idents(&method.body, &mut out);
            }
        }
        out
    }

    /// Total number of statements in the program (all nesting levels).
    pub fn stmt_count(&self) -> usize {
        self.classes
            .iter()
            .flat_map(|c| &c.methods)
            .map(|m| count_block(&m.body))
            .sum()
    }
}

fn count_block(block: &Block) -> usize {
    block.0.iter().map(count_stmt).sum()
}

fn count_stmt(stmt: &Stmt) -> usize {
    1 + match stmt {
        Stmt::If { then_b, else_b, .. } => {
            count_block(then_b) + else_b.as_ref().map_or(0, count_block)
        }
        Stmt::While { body, .. } | Stmt::Sync { body, .. } => count_block(body),
        Stmt::For {
            init, update, body, ..
        } => {
            init.as_deref().map_or(0, count_stmt)
                + update.as_deref().map_or(0, count_stmt)
                + count_block(body)
        }
        Stmt::Block(b) => count_block(b),
        _ => 0,
    }
}

fn collect_block_idents(block: &Block, out: &mut std::collections::HashSet<String>) {
    for stmt in &block.0 {
        collect_stmt_idents(stmt, out);
    }
}

fn collect_stmt_idents(stmt: &Stmt, out: &mut std::collections::HashSet<String>) {
    match stmt {
        Stmt::Decl { name, .. } => {
            out.insert(name.clone());
        }
        Stmt::Assign {
            target: LValue::Var(name),
            ..
        } => {
            out.insert(name.clone());
        }
        Stmt::If { then_b, else_b, .. } => {
            collect_block_idents(then_b, out);
            if let Some(e) = else_b {
                collect_block_idents(e, out);
            }
        }
        Stmt::While { body, .. } | Stmt::Sync { body, .. } => collect_block_idents(body, out),
        Stmt::For {
            init, update, body, ..
        } => {
            if let Some(i) = init {
                collect_stmt_idents(i, out);
            }
            if let Some(u) = update {
                collect_stmt_idents(u, out);
            }
            collect_block_idents(body, out);
        }
        Stmt::Block(b) => collect_block_idents(b, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> Program {
        let mut class = Class::new("T");
        class.methods.push(Method::new(
            "main",
            vec![],
            Type::Void,
            true,
            Block(vec![
                Stmt::Decl {
                    name: "x".into(),
                    ty: Type::Int,
                    init: Some(Expr::Int(1)),
                },
                Stmt::Print(Expr::var("x")),
            ]),
        ));
        Program {
            classes: vec![class],
        }
    }

    #[test]
    fn main_method_found() {
        let p = tiny_program();
        assert_eq!(p.main_method(), Some((0, 0)));
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let p = tiny_program();
        let n = p.fresh_name("x");
        assert_ne!(n, "x");
        assert!(n.starts_with('x'));
    }

    #[test]
    fn stmt_count_counts_nested() {
        let mut p = tiny_program();
        let m = &mut p.classes[0].methods[0];
        m.body.0.push(Stmt::If {
            cond: Expr::Bool(true),
            then_b: Block(vec![Stmt::Print(Expr::Int(0))]),
            else_b: Some(Block(vec![Stmt::Print(Expr::Int(1))])),
        });
        assert_eq!(p.stmt_count(), 5);
    }

    #[test]
    fn type_predicates() {
        assert!(Type::Int.is_numeric());
        assert!(!Type::Bool.is_numeric());
        assert!(Type::Integer.is_reference());
        assert!(Type::Ref("T".into()).is_reference());
        assert!(!Type::Int.is_reference());
    }

    #[test]
    fn binop_predicates() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::Add.is_arithmetic());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn class_lookup() {
        let p = tiny_program();
        assert!(p.class("T").is_some());
        assert!(p.class("U").is_none());
        assert!(p.class("T").unwrap().method("main").is_some());
    }

    #[test]
    fn display_of_types_and_ops() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::Integer.to_string(), "Integer");
        assert_eq!(BinOp::Shl.to_string(), "<<");
        assert_eq!(UnOp::Not.to_string(), "!");
    }
}
