//! # mjava — the MiniJava source language
//!
//! MiniJava is the Java subset that the MopFuzzer reproduction mutates and
//! executes. It covers exactly the constructs the paper's 13
//! optimization-evoking mutators need: classes, static/instance fields and
//! methods, `synchronized` blocks and methods, counted loops, branches,
//! autoboxing, reflective calls, and integer arithmetic.
//!
//! The crate provides:
//!
//! * the [`ast`] module — the program representation every other crate
//!   consumes;
//! * a [`parse`]/[`print`] pair that round-trips (`parse(print(p)) == p`);
//! * [`path`] — durable statement addresses ([`StmtPath`]) used as mutation
//!   points;
//! * [`scope`] — visibility and type inference for mutator applicability;
//! * [`visit`] — expression walkers over single statements;
//! * [`samples`] — a built-in seed corpus in the style of the JDK
//!   regression tests the paper seeds from.
//!
//! # Examples
//!
//! ```
//! use mjava::{parse, print, path};
//!
//! let program = parse(
//!     "class T { static void main() { int x = 1; System.out.println(x); } }",
//! )?;
//! // Every statement has a durable address:
//! let points = path::all_paths(&program);
//! assert_eq!(points.len(), 2);
//! // ... and the program round-trips through source text:
//! assert_eq!(parse(&print(&program))?, program);
//! # Ok::<(), mjava::ParseError>(())
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod path;
pub mod printer;
pub mod samples;
pub mod scope;
pub mod visit;

pub use ast::{
    BinOp, Block, Call, CallTarget, Class, Expr, Field, LValue, Method, Param, Program, Reflect,
    Stmt, Type, UnOp,
};
pub use error::ParseError;
pub use parser::parse;
pub use path::StmtPath;
pub use printer::{print, print_expr, print_stmt};
pub use scope::{infer_expr, scope_at, Scope, TypeCtx};
