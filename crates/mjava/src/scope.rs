//! Scope analysis and expression type inference.
//!
//! Mutator applicability checks (paper §3.3) need to know which locals are
//! visible at a mutation point and what type an expression has — e.g.
//! Inlining-evoke only fires on binary expressions over primitive operands,
//! and DeReflection-evoke needs the receiver's class.

use crate::ast::*;
use crate::path::{region_of, Region, StmtPath};

/// The set of variables visible at a program point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Scope {
    vars: Vec<(String, Type)>,
}

impl Scope {
    /// Creates an empty scope.
    pub fn new() -> Scope {
        Scope::default()
    }

    /// Adds a binding, shadowing any earlier one of the same name.
    pub fn bind(&mut self, name: impl Into<String>, ty: Type) {
        self.vars.push((name.into(), ty));
    }

    /// Looks up the type of a variable (innermost binding wins).
    pub fn lookup(&self, name: &str) -> Option<&Type> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// Iterates over all bindings, outermost first.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Type)> {
        self.vars.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Number of visible bindings (including shadowed ones).
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Returns true if no variable is visible.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// All visible variables of a given type, innermost last.
    pub fn vars_of_type(&self, ty: &Type) -> Vec<&str> {
        self.vars
            .iter()
            .filter(|(_, t)| t == ty)
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// Computes the variables visible *at* (i.e. just before executing) the
/// statement addressed by `path`: method parameters plus every declaration
/// that precedes the path at each nesting level, including `for` headers.
///
/// Returns `None` if the path does not resolve.
pub fn scope_at(program: &Program, path: &StmtPath) -> Option<Scope> {
    let class = program.classes.get(path.class)?;
    let method = class.methods.get(path.method)?;
    let mut scope = Scope::new();
    for p in &method.params {
        scope.bind(p.name.clone(), p.ty.clone());
    }
    let mut block = &method.body;
    for (level, step) in path.steps.iter().enumerate() {
        if step.index >= block.0.len() {
            return None;
        }
        // Declarations preceding this step in the current block.
        for stmt in &block.0[..step.index] {
            if let Stmt::Decl { name, ty, .. } = stmt {
                scope.bind(name.clone(), ty.clone());
            }
        }
        let stmt = &block.0[step.index];
        match step.into {
            None => {
                debug_assert_eq!(level + 1, path.steps.len());
                return Some(scope);
            }
            Some(region) => {
                // Entering a for-loop body brings its header variable into
                // scope.
                if let (
                    Stmt::For {
                        init: Some(init), ..
                    },
                    Region::Body,
                ) = (stmt, region)
                {
                    if let Stmt::Decl { name, ty, .. } = init.as_ref() {
                        scope.bind(name.clone(), ty.clone());
                    }
                }
                block = region_of(stmt, region)?;
            }
        }
    }
    None
}

/// Context for type inference: the program plus the enclosing class (for
/// `this`) and staticness.
#[derive(Debug, Clone, Copy)]
pub struct TypeCtx<'p> {
    /// The program providing class and method signatures.
    pub program: &'p Program,
    /// Index of the class the expression appears in.
    pub class: usize,
    /// True when the enclosing method is static (`this` is unavailable).
    pub is_static: bool,
}

impl<'p> TypeCtx<'p> {
    /// Builds a context for the method a [`StmtPath`] points into.
    pub fn for_path(program: &'p Program, path: &StmtPath) -> Option<TypeCtx<'p>> {
        let method = program.classes.get(path.class)?.methods.get(path.method)?;
        Some(TypeCtx {
            program,
            class: path.class,
            is_static: method.is_static,
        })
    }

    fn class_name(&self) -> Option<&str> {
        self.program
            .classes
            .get(self.class)
            .map(|c| c.name.as_str())
    }
}

/// Infers the type of `expr` under `scope`.
///
/// Returns `None` for expressions whose type cannot be determined (unknown
/// identifiers, `null`, calls to missing methods) — applicability checks
/// treat those conservatively as "not applicable".
pub fn infer_expr(ctx: &TypeCtx<'_>, scope: &Scope, expr: &Expr) -> Option<Type> {
    match expr {
        Expr::Int(_) => Some(Type::Int),
        Expr::Long(_) => Some(Type::Long),
        Expr::Bool(_) => Some(Type::Bool),
        Expr::Null => None,
        Expr::This => {
            if ctx.is_static {
                None
            } else {
                Some(Type::Ref(ctx.class_name()?.to_string()))
            }
        }
        Expr::Var(name) => scope.lookup(name).cloned(),
        Expr::Unary(UnOp::Neg, inner) => infer_expr(ctx, scope, inner),
        Expr::Unary(UnOp::Not, _) => Some(Type::Bool),
        Expr::Binary(op, lhs, rhs) => {
            if op.is_comparison() {
                return Some(Type::Bool);
            }
            let lt = infer_expr(ctx, scope, lhs)?;
            let rt = infer_expr(ctx, scope, rhs)?;
            match (&lt, &rt) {
                (Type::Bool, Type::Bool) => Some(Type::Bool),
                (Type::Long, _) | (_, Type::Long) => Some(Type::Long),
                _ => Some(Type::Int),
            }
        }
        Expr::Call(call) => {
            let class_name = match &call.target {
                CallTarget::Static(c) => c.clone(),
                CallTarget::Instance(recv) => match infer_expr(ctx, scope, recv)? {
                    Type::Ref(c) => c,
                    _ => return None,
                },
            };
            let method = ctx.program.class(&class_name)?.method(&call.method)?;
            Some(method.ret.clone())
        }
        Expr::Reflect(r) => {
            // The simulated reflective `invoke` yields the target method's
            // declared type directly (no Object boxing in MiniJava).
            let method = ctx.program.class(&r.class)?.method(&r.method)?;
            Some(method.ret.clone())
        }
        Expr::Field(obj, name) => match infer_expr(ctx, scope, obj)? {
            Type::Ref(c) => Some(ctx.program.class(&c)?.field(name)?.ty.clone()),
            _ => None,
        },
        Expr::StaticField(class, name) => Some(ctx.program.class(class)?.field(name)?.ty.clone()),
        Expr::New(class) => Some(Type::Ref(class.clone())),
        Expr::BoxInt(_) => Some(Type::Integer),
        Expr::UnboxInt(_) => Some(Type::Int),
        Expr::ClassLit(_) => Some(Type::Ref("Class".to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::path::{all_paths, stmt_at};

    fn sample() -> Program {
        parse(
            r#"
            class T {
                int f;
                static long s;
                int g(int a) { return a + 1; }
                static void main() {
                    int x = 1;
                    T t = new T();
                    for (int i = 0; i < 3; i++) {
                        long y = x + i;
                        System.out.println(y);
                    }
                    System.out.println(x);
                }
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn scope_sees_preceding_decls_only() {
        let p = sample();
        // main is method index 1; statement 1 is `T t = new T();`
        let path = StmtPath::top_level(0, 1, 1);
        let scope = scope_at(&p, &path).unwrap();
        assert_eq!(scope.lookup("x"), Some(&Type::Int));
        assert_eq!(scope.lookup("t"), None);
    }

    #[test]
    fn scope_includes_for_header_inside_body() {
        let p = sample();
        let for_path = StmtPath::top_level(0, 1, 2);
        let inner = for_path.child(Region::Body, 0);
        assert!(matches!(stmt_at(&p, &inner), Some(Stmt::Decl { .. })));
        let scope = scope_at(&p, &inner).unwrap();
        assert_eq!(scope.lookup("i"), Some(&Type::Int));
        assert_eq!(scope.lookup("t"), Some(&Type::Ref("T".into())));
        // `y` is declared *at* the inner path, not before it.
        assert_eq!(scope.lookup("y"), None);
    }

    #[test]
    fn scope_at_every_path_resolves() {
        let p = sample();
        for path in all_paths(&p) {
            assert!(scope_at(&p, &path).is_some(), "no scope for {path:?}");
        }
    }

    #[test]
    fn infers_arithmetic_widening() {
        let p = sample();
        let path = StmtPath::top_level(0, 1, 2).child(Region::Body, 1);
        let scope = scope_at(&p, &path).unwrap();
        let ctx = TypeCtx::for_path(&p, &path).unwrap();
        let int_plus_int = Expr::bin(BinOp::Add, Expr::var("x"), Expr::var("i"));
        assert_eq!(infer_expr(&ctx, &scope, &int_plus_int), Some(Type::Int));
        let long_plus_int = Expr::bin(BinOp::Add, Expr::var("y"), Expr::var("i"));
        assert_eq!(infer_expr(&ctx, &scope, &long_plus_int), Some(Type::Long));
        let cmp = Expr::bin(BinOp::Lt, Expr::var("x"), Expr::var("i"));
        assert_eq!(infer_expr(&ctx, &scope, &cmp), Some(Type::Bool));
    }

    #[test]
    fn infers_calls_fields_and_boxing() {
        let p = sample();
        let path = StmtPath::top_level(0, 1, 2);
        let scope = scope_at(&p, &path).unwrap();
        let ctx = TypeCtx::for_path(&p, &path).unwrap();

        let call = Expr::Call(Call {
            target: CallTarget::Instance(Box::new(Expr::var("t"))),
            method: "g".into(),
            args: vec![Expr::Int(1)],
        });
        assert_eq!(infer_expr(&ctx, &scope, &call), Some(Type::Int));

        let field = Expr::Field(Box::new(Expr::var("t")), "f".into());
        assert_eq!(infer_expr(&ctx, &scope, &field), Some(Type::Int));

        let sfield = Expr::StaticField("T".into(), "s".into());
        assert_eq!(infer_expr(&ctx, &scope, &sfield), Some(Type::Long));

        let boxed = Expr::BoxInt(Box::new(Expr::Int(1)));
        assert_eq!(infer_expr(&ctx, &scope, &boxed), Some(Type::Integer));
        let unboxed = Expr::UnboxInt(Box::new(boxed));
        assert_eq!(infer_expr(&ctx, &scope, &unboxed), Some(Type::Int));
    }

    #[test]
    fn this_unavailable_in_static_context() {
        let p = sample();
        let main_path = StmtPath::top_level(0, 1, 0);
        let scope = scope_at(&p, &main_path).unwrap();
        let ctx = TypeCtx::for_path(&p, &main_path).unwrap();
        assert_eq!(infer_expr(&ctx, &scope, &Expr::This), None);

        // In the instance method `g`, `this` has type T.
        let g_path = StmtPath::top_level(0, 0, 0);
        let g_scope = scope_at(&p, &g_path).unwrap();
        let g_ctx = TypeCtx::for_path(&p, &g_path).unwrap();
        assert_eq!(
            infer_expr(&g_ctx, &g_scope, &Expr::This),
            Some(Type::Ref("T".into()))
        );
    }

    #[test]
    fn unknown_identifiers_infer_to_none() {
        let p = sample();
        let path = StmtPath::top_level(0, 1, 0);
        let scope = scope_at(&p, &path).unwrap();
        let ctx = TypeCtx::for_path(&p, &path).unwrap();
        assert_eq!(infer_expr(&ctx, &scope, &Expr::var("nope")), None);
        assert_eq!(infer_expr(&ctx, &scope, &Expr::Null), None);
    }

    #[test]
    fn vars_of_type_filters() {
        let p = sample();
        let path = StmtPath::top_level(0, 1, 3); // println(x) after the for
        let scope = scope_at(&p, &path).unwrap();
        assert_eq!(scope.vars_of_type(&Type::Int), vec!["x"]);
        assert_eq!(scope.vars_of_type(&Type::Ref("T".into())), vec!["t"]);
    }
}
