//! Property-based round-trip testing of the printer/parser pair over
//! randomly generated ASTs: `parse(print(p)) == p` for every well-formed
//! program the strategies can build.
//!
//! Negative integer literals are excluded from the strategies: `-3` as a
//! *literal* prints as `(-3)` and reparses as unary negation of `3`,
//! which is value-equal but not node-equal (the parser never produces
//! negative literals outside field initializers). Mutators and the seed
//! corpus follow the same convention.

use mjava::{BinOp, Block, Class, Expr, LValue, Method, Param, Program, Stmt, Type, UnOp};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "x0", "y1", "zz", "val", "tmp", "acc"])
        .prop_map(str::to_string)
}

fn int_type() -> impl Strategy<Value = Type> {
    prop::sample::select(vec![Type::Int, Type::Long, Type::Bool])
}

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..1_000_000).prop_map(Expr::Int),
        (0i64..1_000_000_000).prop_map(Expr::Long),
        any::<bool>().prop_map(Expr::Bool),
    ]
}

fn arith_op() -> impl Strategy<Value = BinOp> {
    prop::sample::select(vec![
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::BitAnd,
        BinOp::BitOr,
        BinOp::BitXor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
        BinOp::Eq,
        BinOp::Ne,
    ])
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal(),
        ident().prop_map(Expr::Var),
        Just(Expr::StaticField("T".to_string(), "s".to_string())),
        Just(Expr::ClassLit("T".to_string())),
        Just(Expr::New("T".to_string())),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (arith_op(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Neg, Box::new(e))),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Not, Box::new(e))),
            inner.clone().prop_map(|e| Expr::BoxInt(Box::new(e))),
            inner.clone().prop_map(|e| Expr::UnboxInt(Box::new(e))),
            (inner.clone(), ident()).prop_map(|(e, f)| Expr::Field(Box::new(e), f)),
            (ident(), prop::collection::vec(inner, 0..3)).prop_map(|(m, args)| {
                Expr::Call(mjava::Call {
                    target: mjava::CallTarget::Static("T".to_string()),
                    method: m,
                    args,
                })
            }),
        ]
    })
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let simple =
        prop_oneof![
            (ident(), int_type(), prop::option::of(expr()))
                .prop_map(|(name, ty, init)| Stmt::Decl { name, ty, init }),
            (ident(), expr()).prop_map(|(v, e)| Stmt::Assign {
                target: LValue::Var(v),
                value: e
            }),
            (expr(), ident(), expr()).prop_map(|(obj, f, e)| Stmt::Assign {
                target: LValue::Field(obj, f),
                value: e
            }),
            expr().prop_map(Stmt::Print),
            prop::option::of(expr()).prop_map(Stmt::Return),
        ];
    simple.prop_recursive(3, 16, 4, |inner| {
        let block = prop::collection::vec(inner.clone(), 0..4).prop_map(Block);
        prop_oneof![
            (expr(), block.clone(), prop::option::of(block.clone())).prop_map(
                |(cond, then_b, else_b)| Stmt::If {
                    cond,
                    then_b,
                    else_b
                }
            ),
            (expr(), block.clone()).prop_map(|(cond, body)| Stmt::While { cond, body }),
            (expr(), block.clone()).prop_map(|(lock, body)| Stmt::Sync { lock, body }),
            block.prop_map(Stmt::Block),
        ]
    })
}

fn program() -> impl Strategy<Value = Program> {
    prop::collection::vec(stmt(), 0..8).prop_map(|stmts| {
        let mut class = Class::new("T");
        class.fields.push(mjava::Field {
            name: "s".to_string(),
            ty: Type::Int,
            is_static: true,
            init: None,
        });
        class
            .methods
            .push(Method::new("main", vec![], Type::Void, true, Block(stmts)));
        class.methods.push(Method::new(
            "helper",
            vec![Param {
                name: "p".to_string(),
                ty: Type::Int,
            }],
            Type::Int,
            true,
            Block(vec![Stmt::Return(Some(Expr::var("p")))]),
        ));
        Program {
            classes: vec![class],
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_round_trips(p in program()) {
        let printed = mjava::print(&p);
        let reparsed = mjava::parse(&printed)
            .map_err(|e| TestCaseError::fail(format!("unparseable output: {e}\n{printed}")))?;
        prop_assert_eq!(reparsed, p, "round-trip mismatch for:\n{}", printed);
    }

    #[test]
    fn printing_is_stable(p in program()) {
        // print ∘ parse ∘ print is the identity on text.
        let once = mjava::print(&p);
        let twice = mjava::print(&mjava::parse(&once).unwrap());
        prop_assert_eq!(once, twice);
    }
}
