//! Equal-budget tool campaigns for the RQ2 comparisons (Table 6,
//! Figures 2 and 3): MopFuzzer, JITFuzz and Artemis run over the same
//! seed pool with the same JVM-execution budget, producing directly
//! comparable [`CampaignResult`]s.

use crate::artemis::{artemis, ArtemisConfig};
use crate::jitfuzz::{jitfuzz, JitFuzzConfig};
use crate::BaselineOutcome;
use jprofile::Obv;
use jvmsim::{Component, JvmSpec, RunOptions};
use mopfuzzer::campaign::{CampaignResult, FoundBug};
use mopfuzzer::corpus::Seed;
use mopfuzzer::oracle::{differential, OracleVerdict};
use mopfuzzer::variant::Variant;
use std::collections::HashSet;

/// Which tool a campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    /// MopFuzzer (any variant).
    MopFuzzer(Variant),
    /// The JITFuzz baseline.
    JitFuzz,
    /// The Artemis baseline.
    Artemis,
}

impl std::fmt::Display for Tool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tool::MopFuzzer(v) => write!(f, "{v}"),
            Tool::JitFuzz => write!(f, "JITFuzz"),
            Tool::Artemis => write!(f, "Artemis"),
        }
    }
}

/// Shared campaign configuration.
#[derive(Debug, Clone)]
pub struct ToolCampaignConfig {
    /// Total JVM-execution budget (the equal-time proxy).
    pub max_executions: u64,
    /// Differential pool.
    pub pool: Vec<JvmSpec>,
    /// MopFuzzer iterations per seed (paper: 50).
    pub mop_iterations: usize,
    /// JITFuzz rounds per seed (paper: 1000; scale with the budget).
    pub jitfuzz_rounds: usize,
    /// Base RNG seed.
    pub rng_seed: u64,
}

impl ToolCampaignConfig {
    /// A budget-limited configuration over the full pool.
    pub fn with_budget(max_executions: u64) -> ToolCampaignConfig {
        ToolCampaignConfig {
            max_executions,
            pool: JvmSpec::differential_pool(),
            mop_iterations: 50,
            jitfuzz_rounds: 58, // equal per-seed executions as MopFuzzer's 50+8
            rng_seed: 99,
        }
    }
}

/// Runs `tool` over `seeds` until the execution budget is exhausted.
///
/// When a `jtelemetry` session is installed on the calling thread (the
/// bench binaries do this under `BENCH_METRICS_OUT`), every round runs
/// under a `tool_round` span and the execution/oracle counters fire from
/// the shared substrate, so tool-comparison runs emit telemetry directly
/// comparable with `mopfuzzer --metrics-out` campaigns.
pub fn tool_campaign(tool: Tool, seeds: &[Seed], config: &ToolCampaignConfig) -> CampaignResult {
    let mut result = CampaignResult::default();
    let mut seen: HashSet<String> = HashSet::new();
    if seeds.is_empty() || config.pool.is_empty() {
        return result;
    }
    let tool_label = tool.to_string();
    let mut round = 0usize;
    while result.executions < config.max_executions {
        let _round_span =
            jtelemetry::span(jtelemetry::FlightKind::Round, "tool_round", &tool_label);
        let seed = &seeds[round % seeds.len()];
        let guidance = config.pool[round % config.pool.len()].clone();
        let rng_seed = config
            .rng_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(round as u64);
        let (outcome, mutators): (BaselineOutcome, Vec<mopfuzzer::MutatorKind>) = match tool {
            Tool::MopFuzzer(variant) => {
                let cfg = mopfuzzer::FuzzConfig {
                    max_iterations: config.mop_iterations,
                    variant,
                    guidance,
                    rng_seed,
                    weight_scheme: Default::default(),
                    banned: Vec::new(),
                    fault: None,
                };
                let out = mopfuzzer::fuzz(&seed.program, &cfg);
                let history = out.mutator_history();
                (BaselineOutcome::from_fuzz(out), history)
            }
            Tool::JitFuzz => {
                let cfg = JitFuzzConfig {
                    rounds: config.jitfuzz_rounds,
                    guidance,
                    rng_seed,
                };
                (jitfuzz(&seed.program, &cfg), Vec::new())
            }
            Tool::Artemis => {
                let cfg = ArtemisConfig { guidance, rng_seed };
                (artemis(&seed.program, &cfg), Vec::new())
            }
        };
        result.executions += outcome.executions;
        result.steps += outcome.steps;
        result.coverage.merge(&outcome.coverage);
        result
            .final_deltas
            .push(Obv::delta(&outcome.seed_obv, &outcome.final_obv));

        if let Some(report) = &outcome.crash {
            if seen.insert(report.bug_id.clone()) {
                result.bugs.push(FoundBug {
                    id: report.bug_id.clone(),
                    component: report.component,
                    is_crash: true,
                    jvm: String::new(),
                    seed: seed.name.clone(),
                    mutators,
                    at_execs: result.executions,
                    at_steps: result.steps,
                    mutant: outcome.final_mutant.clone(),
                });
            }
            round += 1;
            continue;
        }

        let diff = differential(&outcome.final_mutant, &config.pool, &RunOptions::fuzzing());
        result.executions += diff.executions;
        result.steps += diff.steps;
        result.coverage.merge(&diff.coverage);
        match diff.verdict {
            OracleVerdict::Crash { jvm, report } => {
                if seen.insert(report.bug_id.clone()) {
                    result.bugs.push(FoundBug {
                        id: report.bug_id.clone(),
                        component: report.component,
                        is_crash: true,
                        jvm,
                        seed: seed.name.clone(),
                        mutators,
                        at_execs: result.executions,
                        at_steps: result.steps,
                        mutant: outcome.final_mutant.clone(),
                    });
                }
            }
            OracleVerdict::Miscompile { outputs, culprits } => {
                for id in culprits {
                    if seen.insert(id.clone()) {
                        let component = jvmsim::bugs::library()
                            .into_iter()
                            .find(|b| b.id == id)
                            .map(|b| b.component)
                            .unwrap_or(Component::OtherJit);
                        result.bugs.push(FoundBug {
                            id,
                            component,
                            is_crash: false,
                            jvm: outputs.first().map(|(j, _)| j.clone()).unwrap_or_default(),
                            seed: seed.name.clone(),
                            mutators: mutators.clone(),
                            at_execs: result.executions,
                            at_steps: result.steps,
                            mutant: outcome.final_mutant.clone(),
                        });
                    }
                }
            }
            OracleVerdict::Pass | OracleVerdict::Inconclusive(_) => {}
        }
        round += 1;
    }
    jtelemetry::gauge(jtelemetry::Gauge::RoundsDone, round as f64);
    jtelemetry::gauge(jtelemetry::Gauge::BugsFound, result.bugs.len() as f64);
    result
}

/// [`tool_campaign`] over a persistent corpus store's entries: every tool
/// fuzzes the identical seed set in the identical order, so RQ2 numbers
/// computed over a shared store are directly comparable (and reproducible
/// by re-opening the store).
pub fn tool_campaign_on_store(
    tool: Tool,
    store: &jcorpus::Store,
    config: &ToolCampaignConfig,
) -> CampaignResult {
    let seeds = mopfuzzer::seeds_from_store(store);
    tool_campaign(tool, &seeds, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ToolCampaignConfig {
        ToolCampaignConfig {
            max_executions: 120,
            pool: JvmSpec::differential_pool(),
            mop_iterations: 12,
            jitfuzz_rounds: 12,
            rng_seed: 4,
        }
    }

    #[test]
    fn all_tools_run_within_budget_shape() {
        let seeds = mopfuzzer::corpus::builtin();
        for tool in [Tool::MopFuzzer(Variant::Full), Tool::JitFuzz, Tool::Artemis] {
            let result = tool_campaign(tool, &seeds, &tiny_config());
            assert!(result.executions >= 120, "{tool}: {}", result.executions);
            assert!(!result.final_deltas.is_empty(), "{tool}");
        }
    }

    #[test]
    fn mopfuzzer_campaign_outdeltas_baselines() {
        // The headline RQ2 shape on a small budget: MopFuzzer's median
        // final Δ exceeds both baselines'.
        let seeds = mopfuzzer::corpus::builtin();
        let config = tiny_config();
        let mop = tool_campaign(Tool::MopFuzzer(Variant::Full), &seeds, &config);
        let jit = tool_campaign(Tool::JitFuzz, &seeds, &config);
        let art = tool_campaign(Tool::Artemis, &seeds, &config);
        let (m, j, a) = (mop.median_delta(), jit.median_delta(), art.median_delta());
        assert!(m > j, "MopFuzzer {m} vs JITFuzz {j}");
        assert!(m > a, "MopFuzzer {m} vs Artemis {a}");
    }

    #[test]
    fn store_backed_campaign_matches_seed_list_campaign() {
        let dir = std::env::temp_dir().join(format!(
            "baselines_store_{}_{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = jcorpus::Store::init(&dir).expect("init store");
        let seeds = mopfuzzer::corpus::builtin();
        mopfuzzer::import_seeds(&mut store, &seeds, jcorpus::Provenance::Builtin).expect("import");
        store.save().expect("save");
        let config = tiny_config();
        let from_store = tool_campaign_on_store(Tool::JitFuzz, &store, &config);
        let from_seeds = tool_campaign(Tool::JitFuzz, &seeds, &config);
        assert_eq!(from_store, from_seeds);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tool_display_names() {
        assert_eq!(Tool::MopFuzzer(Variant::Full).to_string(), "MopFuzzer");
        assert_eq!(Tool::JitFuzz.to_string(), "JITFuzz");
        assert_eq!(Tool::Artemis.to_string(), "Artemis");
    }
}
