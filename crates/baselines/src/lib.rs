//! # baselines — JITFuzz and Artemis reimplementations
//!
//! The two state-of-the-art comparators of the paper's RQ2 (§2.5, §4.3),
//! rebuilt mechanism-for-mechanism on the shared substrate so the
//! comparison is apples-to-apples:
//!
//! * [`jitfuzz`] — optimization-targeting mutators + CFG reshaping,
//!   random mutation points, coverage-driven acceptance, many rounds per
//!   seed;
//! * [`artemis`] — three mutation templates (method calls, loops,
//!   uncommon traps), applied non-iteratively;
//! * [`tool_campaign`] — equal-budget campaigns producing
//!   [`mopfuzzer::CampaignResult`]s for all three tools.

pub mod artemis;
pub mod campaign;
pub mod jitfuzz;

use jprofile::Obv;
use jvmsim::{CoverageMap, CrashReport};
use mjava::Program;

/// What one baseline run over one seed produced — the common shape the
/// equal-budget campaigns consume.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// The final (or crashing) mutant.
    pub final_mutant: Program,
    /// Compiler crash observed, if any.
    pub crash: Option<CrashReport>,
    /// JVM executions performed.
    pub executions: u64,
    /// Interpreter steps consumed.
    pub steps: u64,
    /// Accumulated coverage.
    pub coverage: CoverageMap,
    /// The seed's OBV.
    pub seed_obv: Obv,
    /// The final mutant's OBV.
    pub final_obv: Obv,
}

impl BaselineOutcome {
    /// A fresh outcome for a seed (no executions yet).
    pub fn new(seed: Program) -> BaselineOutcome {
        BaselineOutcome {
            final_mutant: seed,
            crash: None,
            executions: 0,
            steps: 0,
            coverage: CoverageMap::new(),
            seed_obv: Obv::zero(),
            final_obv: Obv::zero(),
        }
    }

    /// Adapts a MopFuzzer outcome into the common shape.
    pub fn from_fuzz(outcome: mopfuzzer::FuzzOutcome) -> BaselineOutcome {
        let final_obv = outcome
            .records
            .last()
            .map(|r| r.obv)
            .unwrap_or(outcome.seed_obv);
        BaselineOutcome {
            final_mutant: outcome.final_mutant,
            crash: outcome.crash,
            executions: outcome.executions,
            steps: outcome.steps,
            coverage: outcome.coverage,
            seed_obv: outcome.seed_obv,
            final_obv,
        }
    }

    /// Δ between seed and final mutant.
    pub fn final_delta(&self) -> f64 {
        Obv::delta(&self.seed_obv, &self.final_obv)
    }
}

pub use artemis::{artemis, ArtemisConfig};
pub use campaign::{tool_campaign, tool_campaign_on_store, Tool, ToolCampaignConfig};
pub use jitfuzz::{jitfuzz, JitFuzzConfig};
