//! A faithful-mechanism reimplementation of **Artemis** (Li et al.,
//! SOSP'23) per the paper's §2.5/§4.3 description: three mutation
//! templates targeting method calls, loops, and uncommon traps, applied
//! *non-iteratively* — one template instantiation per seed, manipulating
//! whether code is hot enough to be JIT-compiled. Its loop structures are
//! richer than MopFuzzer's (nested loops), but the inserted code never
//! interacts with previous insertions because there are none.

use crate::BaselineOutcome;
use jprofile::Obv;
use jvmsim::{JvmSpec, RunOptions, Verdict};
use mjava::{BinOp, Block, Expr, LValue, Program, Stmt, StmtPath, Type};
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng as _};

/// Artemis configuration.
#[derive(Debug, Clone)]
pub struct ArtemisConfig {
    /// Target JVM.
    pub guidance: JvmSpec,
    /// RNG seed.
    pub rng_seed: u64,
}

fn counted_for(var: &str, trip: i64, body: Block) -> Stmt {
    Stmt::For {
        init: Some(Box::new(Stmt::Decl {
            name: var.to_string(),
            ty: Type::Int,
            init: Some(Expr::Int(0)),
        })),
        cond: Expr::bin(BinOp::Lt, Expr::var(var), Expr::Int(trip)),
        update: Some(Box::new(Stmt::Assign {
            target: LValue::Var(var.to_string()),
            value: Expr::bin(BinOp::Add, Expr::var(var), Expr::Int(1)),
        })),
        body,
    }
}

fn copy_of(stmt: &Stmt) -> Block {
    if matches!(stmt, Stmt::Return(_) | Stmt::Decl { .. }) {
        Block::new()
    } else {
        Block(vec![stmt.clone()])
    }
}

/// Template 1 — method calls: make the code around a statement hot by
/// replaying it inside a counted loop.
fn call_template(program: &Program, mp: &StmtPath, rng: &mut SmallRng) -> Option<Program> {
    let stmt = mjava::path::stmt_at(program, mp)?.clone();
    let mut mutant = program.clone();
    let var = mutant.fresh_name("ax");
    let hot = counted_for(&var, rng.gen_range(32..128), copy_of(&stmt));
    mjava::path::insert_before(&mut mutant, mp, vec![hot])?;
    Some(mutant)
}

/// Template 2 — loops: Artemis's signature nested-loop structure.
fn loop_template(program: &Program, mp: &StmtPath, rng: &mut SmallRng) -> Option<Program> {
    let stmt = mjava::path::stmt_at(program, mp)?.clone();
    let mut mutant = program.clone();
    let outer = mutant.fresh_name("ao");
    let inner = mutant.fresh_name("ai");
    let inner_loop = counted_for(&inner, rng.gen_range(3..9), copy_of(&stmt));
    let nested = counted_for(&outer, rng.gen_range(3..9), Block(vec![inner_loop]));
    mjava::path::insert_before(&mut mutant, mp, vec![nested])?;
    Some(mutant)
}

/// Template 3 — uncommon traps: a rarely-taken guard inside a hot loop.
fn trap_template(program: &Program, mp: &StmtPath, rng: &mut SmallRng) -> Option<Program> {
    let stmt = mjava::path::stmt_at(program, mp)?.clone();
    let mut mutant = program.clone();
    let var = mutant.fresh_name("at");
    let guard = Stmt::If {
        cond: Expr::bin(
            BinOp::Eq,
            Expr::var(var.clone()),
            Expr::Int(1_000_003 + rng.gen_range(0..100)),
        ),
        then_b: copy_of(&stmt),
        else_b: None,
    };
    let hot = counted_for(&var, rng.gen_range(64..256), Block(vec![guard]));
    mjava::path::insert_before(&mut mutant, mp, vec![hot])?;
    Some(mutant)
}

/// Runs Artemis on one seed: one template instantiation, one execution.
pub fn artemis(seed: &Program, config: &ArtemisConfig) -> BaselineOutcome {
    let mut rng = SmallRng::seed_from_u64(config.rng_seed);
    let options = RunOptions::fuzzing();
    let mut outcome = BaselineOutcome::new(seed.clone());

    let seed_run = jvmsim::run_jvm(seed, &config.guidance, &options);
    outcome.executions += 1;
    outcome.steps += seed_run.steps;
    outcome.coverage.merge(&seed_run.coverage);
    outcome.seed_obv = Obv::from_log(&seed_run.log);
    outcome.final_obv = outcome.seed_obv;
    if let Verdict::CompilerCrash(report) = seed_run.verdict {
        outcome.crash = Some(report);
        return outcome;
    }

    // One template application at one random point.
    let mutant = (0..8).find_map(|_| {
        let mp = mopfuzzer::fuzzer::select_mp(seed, &mut rng)?;
        match rng.gen_range(0..3u8) {
            0 => call_template(seed, &mp, &mut rng),
            1 => loop_template(seed, &mp, &mut rng),
            _ => trap_template(seed, &mp, &mut rng),
        }
    });
    let Some(mutant) = mutant else {
        return outcome;
    };
    let run = jvmsim::run_jvm(&mutant, &config.guidance, &options);
    outcome.executions += 1;
    outcome.steps += run.steps;
    outcome.coverage.merge(&run.coverage);
    outcome.final_obv = Obv::from_log(&run.log);
    outcome.final_mutant = mutant;
    if let Verdict::CompilerCrash(report) = run.verdict {
        outcome.crash = Some(report);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvmsim::Version;

    fn config(seed: u64) -> ArtemisConfig {
        ArtemisConfig {
            guidance: JvmSpec::hotspur(Version::V17).without_bugs(),
            rng_seed: seed,
        }
    }

    #[test]
    fn single_shot_mutation() {
        let seed = mjava::samples::listing2().program;
        let out = artemis(&seed, &config(3));
        // Exactly two executions: the seed and the mutant.
        assert_eq!(out.executions, 2);
        assert_ne!(out.final_mutant, seed);
        let printed = mjava::print(&out.final_mutant);
        assert_eq!(mjava::parse(&printed).unwrap(), out.final_mutant);
    }

    #[test]
    fn templates_are_deterministic() {
        let seed = mjava::samples::nested_loops().program;
        let a = artemis(&seed, &config(9));
        let b = artemis(&seed, &config(9));
        assert_eq!(a.final_mutant, b.final_mutant);
    }

    #[test]
    fn loop_template_produces_nested_loops() {
        let seed = mjava::samples::listing2().program;
        // Scan RNG seeds until the loop template is chosen; deterministic
        // given the scan order.
        for s in 0..20 {
            let out = artemis(&seed, &config(s));
            let printed = mjava::print(&out.final_mutant);
            if printed.contains("ao0") {
                assert!(printed.contains("ai0"), "{printed}");
                return;
            }
        }
        panic!("loop template never selected across 20 RNG seeds");
    }

    #[test]
    fn mutants_execute() {
        let seed = mjava::samples::boxing_mix().program;
        for s in 0..5 {
            let out = artemis(&seed, &config(s));
            let run = jexec::run_program(&out.final_mutant, &jexec::ExecConfig::default())
                .expect("mutant builds");
            assert!(
                run.error.is_none(),
                "mutant errored: {:?}\n{}",
                run.error,
                mjava::print(&out.final_mutant)
            );
        }
    }
}
