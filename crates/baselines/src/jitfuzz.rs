//! A faithful-mechanism reimplementation of **JITFuzz** (Wu et al.,
//! ICSE'23) on the shared substrate, per the paper's §2.5 description:
//! optimization-targeting mutators for inlining, simplification, scalar
//! replacement / escape analysis, plus two control-flow-reshaping
//! mutators; a *random* mutation point every iteration; and
//! coverage-driven seed acceptance. Inserted snippets are independent of
//! each other — precisely why it under-explores optimization
//! *interactions* (paper §4.3).

use crate::BaselineOutcome;
use jprofile::Obv;
use jvmsim::{Area, CoverageMap, JvmSpec, RunOptions, Verdict};
use mjava::{BinOp, Block, Expr, Program, Stmt};
use mopfuzzer::mutators::{all_mutators, Mutator, MutatorKind};
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng as _};

/// JITFuzz configuration.
#[derive(Debug, Clone)]
pub struct JitFuzzConfig {
    /// Mutation rounds per seed (JITFuzz's default is 1000; experiments
    /// scale this down uniformly with the other tools' budgets).
    pub rounds: usize,
    /// Target JVM.
    pub guidance: JvmSpec,
    /// RNG seed.
    pub rng_seed: u64,
}

fn opt_mutators() -> Vec<Box<dyn Mutator>> {
    all_mutators()
        .into_iter()
        .filter(|m| {
            matches!(
                m.kind(),
                // Function inlining, simplification, and escape analysis /
                // scalar replacement — JITFuzz's four optimization targets
                // (escape analysis and scalar replacement share one evoke
                // shape on this substrate).
                MutatorKind::Inlining
                    | MutatorKind::AlgebraicSimplification
                    | MutatorKind::EscapeAnalysis
            )
        })
        .collect()
}

/// CFG mutator 1: wrap the statement in a trivially-true branch.
fn wrap_if(program: &Program, mp: &mjava::StmtPath) -> Option<Program> {
    let stmt = mjava::path::stmt_at(program, mp)?.clone();
    if matches!(stmt, Stmt::Decl { .. }) {
        return None; // would hide the declaration
    }
    let mut mutant = program.clone();
    let wrapped = Stmt::If {
        cond: Expr::bin(BinOp::Lt, Expr::Int(0), Expr::Int(1)),
        then_b: Block(vec![stmt]),
        else_b: None,
    };
    mjava::path::replace_stmt(&mut mutant, mp, vec![wrapped]).then_some(mutant)
}

/// CFG mutator 2: hoist the statement into a nested block.
fn wrap_block(program: &Program, mp: &mjava::StmtPath) -> Option<Program> {
    let stmt = mjava::path::stmt_at(program, mp)?.clone();
    if matches!(stmt, Stmt::Decl { .. }) {
        return None;
    }
    let mut mutant = program.clone();
    let wrapped = Stmt::Block(Block(vec![stmt]));
    mjava::path::replace_stmt(&mut mutant, mp, vec![wrapped]).then_some(mutant)
}

/// Runs JITFuzz on one seed.
pub fn jitfuzz(seed: &Program, config: &JitFuzzConfig) -> BaselineOutcome {
    let mut rng = SmallRng::seed_from_u64(config.rng_seed);
    let mutators = opt_mutators();
    // JITFuzz drives a default-configuration JVM (no -Xcomp): methods tier
    // up through C1 and C2 by hotness, which is what lets it reach
    // C1-resident defects the -Xcomp tools skip past.
    let mut options = RunOptions::fuzzing();
    options.xcomp = false;

    let mut outcome = BaselineOutcome::new(seed.clone());
    let seed_run = jvmsim::run_jvm(seed, &config.guidance, &options);
    outcome.executions += 1;
    outcome.steps += seed_run.steps;
    outcome.coverage.merge(&seed_run.coverage);
    outcome.seed_obv = Obv::from_log(&seed_run.log);
    outcome.final_obv = outcome.seed_obv;
    if let Verdict::CompilerCrash(report) = seed_run.verdict {
        outcome.crash = Some(report);
        return outcome;
    }
    let mut covered_total = total_covered(&outcome.coverage);
    let mut parent = seed.clone();

    for _round in 0..config.rounds {
        // Random mutation point each round (no fixed-MP strategy).
        let Some(mp) = mopfuzzer::fuzzer::select_mp(&parent, &mut rng) else {
            break;
        };
        // Random mutator: 3 optimization-evoking + 2 CFG.
        let pick = rng.gen_range(0..mutators.len() + 2);
        let child: Option<Program> = if pick < mutators.len() {
            let m = &mutators[pick];
            m.is_applicable(&parent, &mp)
                .then(|| m.apply(&parent, &mp, &mut rng).map(|mu| mu.program))
                .flatten()
        } else if pick == mutators.len() {
            wrap_if(&parent, &mp)
        } else {
            wrap_block(&parent, &mp)
        };
        let Some(child) = child else {
            continue;
        };
        let run = jvmsim::run_jvm(&child, &config.guidance, &options);
        outcome.executions += 1;
        outcome.steps += run.steps;
        outcome.coverage.merge(&run.coverage);
        if let Verdict::CompilerCrash(report) = run.verdict {
            outcome.crash = Some(report);
            outcome.final_mutant = child;
            outcome.final_obv = Obv::from_log(&run.log);
            return outcome;
        }
        // Coverage-driven acceptance: keep the child only if it covered
        // new blocks.
        let now_covered = total_covered(&outcome.coverage);
        if now_covered > covered_total {
            covered_total = now_covered;
            parent = child;
            outcome.final_mutant = parent.clone();
            outcome.final_obv = Obv::from_log(&run.log);
        }
    }
    outcome
}

fn total_covered(coverage: &CoverageMap) -> u32 {
    Area::ALL.iter().map(|&a| coverage.covered(a)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvmsim::Version;

    fn config(rounds: usize) -> JitFuzzConfig {
        JitFuzzConfig {
            rounds,
            guidance: JvmSpec::hotspur(Version::V17).without_bugs(),
            rng_seed: 5,
        }
    }

    #[test]
    fn produces_valid_mutants() {
        let seed = mjava::samples::arith_loop().program;
        let out = jitfuzz(&seed, &config(12));
        let printed = mjava::print(&out.final_mutant);
        assert_eq!(mjava::parse(&printed).unwrap(), out.final_mutant);
        assert!(out.executions >= 1);
    }

    #[test]
    fn is_deterministic() {
        let seed = mjava::samples::call_chain().program;
        let a = jitfuzz(&seed, &config(8));
        let b = jitfuzz(&seed, &config(8));
        assert_eq!(a.final_mutant, b.final_mutant);
        assert_eq!(a.executions, b.executions);
    }

    #[test]
    fn coverage_gating_keeps_or_discards() {
        let seed = mjava::samples::listing2().program;
        let out = jitfuzz(&seed, &config(15));
        // Accumulated coverage is at least the seed's.
        assert!(total_covered(&out.coverage) > 0);
    }
}
