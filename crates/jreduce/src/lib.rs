//! # jreduce — syntax-guided test-case reduction
//!
//! The reproduction's stand-in for `perses` (paper §3.5): given a
//! bug-triggering program and a caller-supplied oracle ("does this
//! candidate still trigger?"), repeatedly tries syntax-aware shrinking
//! steps — removing statements, unwrapping compound statements, and
//! dropping unused methods and fields — keeping every candidate the
//! oracle accepts, until a fixpoint.
//!
//! The oracle receives whole programs; invalid candidates simply fail the
//! oracle (a JVM run on them reports a verification error), so reduction
//! never needs its own validity checker.
//!
//! # Examples
//!
//! ```
//! let program = mjava::parse(r#"
//!     class T {
//!         static void main() {
//!             int keep = 1;
//!             int noise = 2;
//!             System.out.println(keep);
//!         }
//!     }
//! "#).unwrap();
//! // Oracle: the program still prints "1".
//! let (reduced, stats) = jreduce::reduce(&program, &mut |p| {
//!     jexec::run_program(p, &jexec::ExecConfig::default())
//!         .map(|o| o.output == vec!["1"])
//!         .unwrap_or(false)
//! });
//! assert!(stats.accepted > 0);
//! assert!(!mjava::print(&reduced).contains("noise"));
//! ```

use mjava::path::{all_paths, region_of, regions_of, remove_stmt, replace_stmt, stmt_at};
use mjava::{Expr, Program, Stmt};
use std::collections::HashSet;

/// Counters describing one reduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Oracle invocations.
    pub oracle_calls: u64,
    /// Accepted shrinking steps.
    pub accepted: u64,
    /// Statements in the input program.
    pub before_stmts: usize,
    /// Statements in the reduced program.
    pub after_stmts: usize,
}

/// Reduces `program` while `oracle` keeps returning true.
///
/// The oracle must accept the original program; otherwise the input is
/// returned unchanged.
pub fn reduce(
    program: &Program,
    oracle: &mut dyn FnMut(&Program) -> bool,
) -> (Program, ReduceStats) {
    let mut stats = ReduceStats {
        before_stmts: program.stmt_count(),
        ..ReduceStats::default()
    };
    stats.oracle_calls += 1;
    if !oracle(program) {
        stats.after_stmts = stats.before_stmts;
        return (program.clone(), stats);
    }
    let mut current = program.clone();
    loop {
        let mut changed = false;
        changed |= shrink_statements(&mut current, oracle, &mut stats);
        changed |= drop_unused_members(&mut current, oracle, &mut stats);
        if !changed {
            break;
        }
    }
    stats.after_stmts = current.stmt_count();
    (current, stats)
}

/// One pass of statement-level shrinking: try to delete or unwrap each
/// statement, biggest subtrees first. Returns true if anything shrank.
fn shrink_statements(
    current: &mut Program,
    oracle: &mut dyn FnMut(&Program) -> bool,
    stats: &mut ReduceStats,
) -> bool {
    let mut any = false;
    'retry: loop {
        let mut paths = all_paths(current);
        // Biggest subtrees first: deleting an outer loop beats deleting
        // its body statements one by one.
        paths.sort_by_key(|p| std::cmp::Reverse(stmt_at(current, p).map_or(0, subtree_size)));
        for path in paths {
            // Candidate 1: delete the statement outright.
            let mut candidate = current.clone();
            if remove_stmt(&mut candidate, &path).is_some() {
                stats.oracle_calls += 1;
                if oracle(&candidate) {
                    *current = candidate;
                    stats.accepted += 1;
                    any = true;
                    continue 'retry;
                }
            }
            // Candidate 2: unwrap a compound statement into its body.
            let Some(stmt) = stmt_at(current, &path) else {
                continue;
            };
            for region in regions_of(stmt) {
                let Some(block) = region_of(stmt, region) else {
                    continue;
                };
                let replacement = block.0.clone();
                let mut candidate = current.clone();
                if replace_stmt(&mut candidate, &path, replacement) {
                    stats.oracle_calls += 1;
                    if oracle(&candidate) {
                        *current = candidate;
                        stats.accepted += 1;
                        any = true;
                        continue 'retry;
                    }
                }
            }
        }
        break;
    }
    any
}

/// Drops methods no one calls and fields no one references.
fn drop_unused_members(
    current: &mut Program,
    oracle: &mut dyn FnMut(&Program) -> bool,
    stats: &mut ReduceStats,
) -> bool {
    let mut any = false;
    let used = used_names(current);
    // Methods.
    let method_targets: Vec<(usize, String)> = current
        .classes
        .iter()
        .enumerate()
        .flat_map(|(ci, c)| {
            c.methods
                .iter()
                .filter(|m| m.name != "main" && !used.contains(&m.name))
                .map(move |m| (ci, m.name.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    for (ci, name) in method_targets {
        let mut candidate = current.clone();
        candidate.classes[ci].methods.retain(|m| m.name != name);
        stats.oracle_calls += 1;
        if oracle(&candidate) {
            *current = candidate;
            stats.accepted += 1;
            any = true;
        }
    }
    // Fields.
    let used = used_names(current);
    let field_targets: Vec<(usize, String)> = current
        .classes
        .iter()
        .enumerate()
        .flat_map(|(ci, c)| {
            c.fields
                .iter()
                .filter(|f| !used.contains(&f.name))
                .map(move |f| (ci, f.name.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    for (ci, name) in field_targets {
        let mut candidate = current.clone();
        candidate.classes[ci].fields.retain(|f| f.name != name);
        stats.oracle_calls += 1;
        if oracle(&candidate) {
            *current = candidate;
            stats.accepted += 1;
            any = true;
        }
    }
    any
}

fn subtree_size(stmt: &Stmt) -> usize {
    let mut n = 1;
    for region in regions_of(stmt) {
        if let Some(b) = region_of(stmt, region) {
            n += b.0.iter().map(subtree_size).sum::<usize>();
        }
    }
    n
}

/// Every identifier that appears anywhere in expressions, call targets,
/// or member references — the conservative "might be used" set.
fn used_names(program: &Program) -> HashSet<String> {
    let mut out = HashSet::new();
    for class in &program.classes {
        for method in &class.methods {
            collect_block(&method.body, &mut out);
        }
    }
    out
}

fn collect_block(block: &mjava::Block, out: &mut HashSet<String>) {
    for stmt in &block.0 {
        collect_stmt(stmt, out);
    }
}

fn collect_stmt(stmt: &Stmt, out: &mut HashSet<String>) {
    use mjava::LValue;
    match stmt {
        Stmt::Decl { init, .. } => {
            if let Some(e) = init {
                collect_expr(e, out);
            }
        }
        Stmt::Assign { target, value } => {
            match target {
                LValue::Var(n) => {
                    out.insert(n.clone());
                }
                LValue::Field(obj, n) => {
                    collect_expr(obj, out);
                    out.insert(n.clone());
                }
                LValue::StaticField(_, n) => {
                    out.insert(n.clone());
                }
            }
            collect_expr(value, out);
        }
        Stmt::Expr(e) | Stmt::Print(e) => collect_expr(e, out),
        Stmt::If {
            cond,
            then_b,
            else_b,
        } => {
            collect_expr(cond, out);
            collect_block(then_b, out);
            if let Some(b) = else_b {
                collect_block(b, out);
            }
        }
        Stmt::While { cond, body } => {
            collect_expr(cond, out);
            collect_block(body, out);
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            if let Some(i) = init {
                collect_stmt(i, out);
            }
            collect_expr(cond, out);
            if let Some(u) = update {
                collect_stmt(u, out);
            }
            collect_block(body, out);
        }
        Stmt::Sync { lock, body } => {
            collect_expr(lock, out);
            collect_block(body, out);
        }
        Stmt::Block(b) => collect_block(b, out),
        Stmt::Return(Some(e)) => collect_expr(e, out),
        Stmt::Return(None) => {}
    }
}

fn collect_expr(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::Var(n) => {
            out.insert(n.clone());
        }
        Expr::Unary(_, inner) | Expr::BoxInt(inner) | Expr::UnboxInt(inner) => {
            collect_expr(inner, out)
        }
        Expr::Binary(_, l, r) => {
            collect_expr(l, out);
            collect_expr(r, out);
        }
        Expr::Call(call) => {
            out.insert(call.method.clone());
            if let mjava::CallTarget::Instance(recv) = &call.target {
                collect_expr(recv, out);
            }
            for a in &call.args {
                collect_expr(a, out);
            }
        }
        Expr::Reflect(r) => {
            out.insert(r.method.clone());
            if let Some(recv) = &r.receiver {
                collect_expr(recv, out);
            }
            for a in &r.args {
                collect_expr(a, out);
            }
        }
        Expr::Field(obj, n) => {
            collect_expr(obj, out);
            out.insert(n.clone());
        }
        Expr::StaticField(_, n) => {
            out.insert(n.clone());
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output_oracle(expected: &'static [&'static str]) -> impl FnMut(&Program) -> bool {
        move |p: &Program| {
            jexec::run_program(p, &jexec::ExecConfig::default())
                .map(|o| o.output == expected)
                .unwrap_or(false)
        }
    }

    #[test]
    fn removes_noise_statements() {
        let p = mjava::parse(
            r#"
            class T {
                static int s;
                static void main() {
                    int a = 1;
                    int b = 2;
                    s = s + 40;
                    int c = a + b;
                    s = s + 2;
                    System.out.println(s);
                }
            }
            "#,
        )
        .unwrap();
        let mut oracle = output_oracle(&["42"]);
        let (reduced, stats) = reduce(&p, &mut oracle);
        let printed = mjava::print(&reduced);
        assert!(!printed.contains("int a"), "{printed}");
        assert!(!printed.contains("int c"), "{printed}");
        assert!(stats.after_stmts < stats.before_stmts);
    }

    #[test]
    fn unwraps_pointless_wrappers() {
        let p = mjava::parse(
            r#"
            class T {
                static void main() {
                    synchronized (T.class) {
                        if (1 < 2) {
                            System.out.println(5);
                        }
                    }
                }
            }
            "#,
        )
        .unwrap();
        let mut oracle = output_oracle(&["5"]);
        let (reduced, _) = reduce(&p, &mut oracle);
        let printed = mjava::print(&reduced);
        assert!(!printed.contains("synchronized"), "{printed}");
        assert!(!printed.contains("if ("), "{printed}");
    }

    #[test]
    fn drops_unused_methods_and_fields() {
        let p = mjava::parse(
            r#"
            class T {
                int unusedField;
                static int helper(int x) { return x; }
                static void main() { System.out.println(3); }
            }
            "#,
        )
        .unwrap();
        let mut oracle = output_oracle(&["3"]);
        let (reduced, _) = reduce(&p, &mut oracle);
        assert!(reduced.classes[0].methods.len() == 1);
        assert!(reduced.classes[0].fields.is_empty());
    }

    #[test]
    fn returns_input_when_oracle_rejects_original() {
        let p = mjava::parse("class T { static void main() { } }").unwrap();
        let (reduced, stats) = reduce(&p, &mut |_| false);
        assert_eq!(reduced, p);
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.oracle_calls, 1);
    }

    #[test]
    fn preserves_the_triggering_property() {
        // Oracle: output still contains the marker value. Everything not
        // needed for it must go; what remains must still satisfy it.
        let p = mjava::parse(
            r#"
            class T {
                static int s;
                static void pad() { s = s + 0; }
                static void main() {
                    for (int i = 0; i < 10; i++) { T.pad(); }
                    int x = 9 * 9;
                    System.out.println(x);
                    System.out.println(81);
                }
            }
            "#,
        )
        .unwrap();
        let mut oracle = |p: &Program| {
            jexec::run_program(p, &jexec::ExecConfig::default())
                .map(|o| o.output.contains(&"81".to_string()))
                .unwrap_or(false)
        };
        let (reduced, stats) = reduce(&p, &mut oracle);
        assert!(oracle(&reduced), "reduction broke the property");
        assert!(stats.after_stmts <= 2, "{}", mjava::print(&reduced));
    }
}
