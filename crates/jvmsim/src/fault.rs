//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] turns the simulated JVM (and, via `mopfuzzer`, the
//! mutator layer) into a deliberately unreliable component: a configurable
//! fraction of executions panic, report a bogus class-loading failure,
//! run out of fuel, or hand back corrupted profile-log lines. The campaign
//! supervisor is tested against exactly these plans.
//!
//! Every decision is a pure function of `(plan seed, site, key)` — an
//! FNV-1a hash, no shared mutable state — so a resumed campaign replays
//! the very same faults and stays bit-identical to an uninterrupted one.

/// Marker prefix carried by panics injected at the VM site. The campaign
/// supervisor classifies panic payloads by this prefix.
pub const VM_PANIC_MARKER: &str = "mop-fault:vm";

/// Marker prefix carried by panics injected at the mutator site.
pub const MUTATOR_PANIC_MARKER: &str = "mop-fault:mutator";

/// Decisions are made in parts-per-million, so a plan is exactly
/// reproducible from two integers (no float state).
const PPM: u64 = 1_000_000;

/// What an injected VM-site fault does to the execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmFault {
    /// The whole VM process panics mid-execution.
    Panic,
    /// Class loading fails: the run reports `Verdict::InvalidProgram`.
    BuildFailure,
    /// The interpreter's fuel collapses, so the run times out.
    FuelExhaustion,
    /// The run completes but its profile log is corrupted.
    LogCorruption,
    /// The VM wedges: the execution blocks forever until the campaign
    /// watchdog cancels it. Never chosen by random plans — only reachable
    /// via [`FaultPlan::with_only`], for tests targeting the timeout path.
    Hang,
}

/// A seeded, rate-configurable fault-injection plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed separating independent plans.
    pub seed: u64,
    /// Fault probability per decision site, in parts per million.
    pub rate_ppm: u32,
    /// When set, every VM-site fault is of this one kind and the mutator
    /// site never fires — for tests that target one failure path.
    pub only: Option<VmFault>,
}

impl FaultPlan {
    /// A plan injecting faults at `rate` (0.0–1.0) of the decision sites.
    pub fn new(seed: u64, rate: f64) -> FaultPlan {
        let rate = if rate.is_finite() {
            rate.clamp(0.0, 1.0)
        } else {
            0.0
        };
        FaultPlan {
            seed,
            rate_ppm: (rate * PPM as f64).round() as u32,
            only: None,
        }
    }

    /// Restricts the plan to a single VM-site fault kind.
    pub fn with_only(mut self, kind: VmFault) -> FaultPlan {
        self.only = Some(kind);
        self
    }

    /// The configured rate as a fraction.
    pub fn rate(&self) -> f64 {
        self.rate_ppm as f64 / PPM as f64
    }

    /// FNV-1a over the plan seed, the site name and the site key, pushed
    /// through a SplitMix64 finalizer (raw FNV's high bits avalanche too
    /// weakly over short keys to pick fault kinds from).
    fn hash(&self, site: &str, key: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&self.seed.to_le_bytes());
        eat(site.as_bytes());
        eat(&[0]);
        eat(key.as_bytes());
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Rolls the dice for one decision site. Returns the hash for
    /// follow-up choices when the site faults.
    fn decide(&self, site: &str, key: &str) -> Option<u64> {
        if self.rate_ppm == 0 {
            return None;
        }
        let h = self.hash(site, key);
        (h % PPM < self.rate_ppm as u64).then_some(h)
    }

    /// The fault (if any) injected into one JVM execution, identified by
    /// the JVM's name and the program's printed source.
    pub fn vm_fault(&self, jvm: &str, program_text: &str) -> Option<VmFault> {
        let h = self.decide("vm", &format!("{jvm}\n{program_text}"))?;
        if let Some(kind) = self.only {
            return Some(kind);
        }
        Some(match (h >> 32) % 4 {
            0 => VmFault::Panic,
            1 => VmFault::BuildFailure,
            2 => VmFault::FuelExhaustion,
            _ => VmFault::LogCorruption,
        })
    }

    /// Whether the mutator application identified by `(rng_seed,
    /// iteration, mutator)` panics. Keyed on the fuzzing run's RNG seed so
    /// a retried round (fresh seed) re-rolls its mutator faults.
    pub fn mutator_fault(&self, rng_seed: u64, iteration: usize, mutator: &str) -> bool {
        if self.only.is_some() {
            return false;
        }
        let key = format!("{rng_seed}:{iteration}:{mutator}");
        self.decide("mutator", &key).is_some()
    }

    /// Deterministically corrupts profile-log lines: truncations, mangled
    /// bytes, and fabricated lines with absurd counts — the adversarial
    /// inputs the OBV scraper and weight math must survive.
    pub fn corrupt_log(&self, jvm: &str, program_text: &str, log: &mut Vec<String>) {
        let mut state = self.hash("log", &format!("{jvm}\n{program_text}")) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state >> 33
        };
        for line in log.iter_mut() {
            if next() % 5 != 0 {
                continue;
            }
            match next() % 3 {
                0 => {
                    let mut cut = next() as usize % (line.len() + 1);
                    while !line.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    line.truncate(cut);
                }
                1 => *line = format!("\u{fffd}{line}\u{fffd}"),
                _ => line.push_str(" 18446744073709551615"),
            }
        }
        for _ in 0..1 + next() % 8 {
            log.push(match next() % 4 {
                0 => "Unroll 18446744073709551615".to_string(),
                1 => "++++ Eliminated: Lock (corrupt)".to_string(),
                2 => format!("Peel {}", next()),
                _ => "\u{1}garbage profile line\u{fffd}".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_faults() {
        let plan = FaultPlan::new(1, 0.0);
        for i in 0..1000 {
            assert_eq!(plan.vm_fault("HotSpur-17", &format!("p{i}")), None);
            assert!(!plan.mutator_fault(i, 1, "LoopUnrolling"));
        }
    }

    #[test]
    fn full_rate_always_faults() {
        let plan = FaultPlan::new(1, 1.0);
        for i in 0..100 {
            assert!(plan.vm_fault("J9-8", &format!("p{i}")).is_some());
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(7, 0.3);
        let b = FaultPlan::new(7, 0.3);
        let c = FaultPlan::new(8, 0.3);
        let probe = |p: &FaultPlan| {
            (0..200)
                .map(|i| p.vm_fault("HotSpur-8", &format!("case {i}")))
                .collect::<Vec<_>>()
        };
        assert_eq!(probe(&a), probe(&b));
        assert_ne!(probe(&a), probe(&c));
    }

    #[test]
    fn rate_is_approximately_respected() {
        let plan = FaultPlan::new(42, 0.05);
        let faults = (0..10_000)
            .filter(|i| {
                plan.vm_fault("HotSpur-17", &format!("program {i}"))
                    .is_some()
            })
            .count();
        assert!((200..800).contains(&faults), "5% of 10k, got {faults}");
    }

    #[test]
    fn all_fault_kinds_occur() {
        let plan = FaultPlan::new(3, 1.0);
        let mut kinds: Vec<VmFault> = (0..200)
            .filter_map(|i| plan.vm_fault("HotSpur-17", &format!("p{i}")))
            .collect();
        kinds.sort_by_key(|k| format!("{k:?}"));
        kinds.dedup();
        assert_eq!(kinds.len(), 4, "{kinds:?}");
    }

    #[test]
    fn log_corruption_changes_lines_deterministically() {
        let plan = FaultPlan::new(5, 1.0);
        let original: Vec<String> = (0..20).map(|i| format!("Unroll {i}")).collect();
        let mut a = original.clone();
        let mut b = original.clone();
        plan.corrupt_log("HotSpur-17", "class T {}", &mut a);
        plan.corrupt_log("HotSpur-17", "class T {}", &mut b);
        assert_eq!(a, b, "corruption must be deterministic");
        assert_ne!(a, original, "corruption must change something");
        assert!(a.len() > original.len(), "fabricated lines appended");
    }

    #[test]
    fn only_restricts_kind_and_disables_mutator_site() {
        let plan = FaultPlan::new(9, 1.0).with_only(VmFault::BuildFailure);
        for i in 0..100 {
            assert_eq!(
                plan.vm_fault("HotSpur-17", &format!("p{i}")),
                Some(VmFault::BuildFailure)
            );
            assert!(!plan.mutator_fault(i, 1, "Inlining"));
        }
    }

    #[test]
    fn rate_roundtrip_and_clamping() {
        assert_eq!(FaultPlan::new(0, 0.05).rate(), 0.05);
        assert_eq!(FaultPlan::new(0, 7.0).rate_ppm, PPM as u32);
        assert_eq!(FaultPlan::new(0, -1.0).rate_ppm, 0);
        assert_eq!(FaultPlan::new(0, f64::NAN).rate_ppm, 0);
    }
}
