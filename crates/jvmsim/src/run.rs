//! The tiered execution driver: interpret → profile → JIT-compile hot
//! methods → re-run, with injected-bug evaluation at compile time.

use crate::bugs::{self, BugKind, InjectedBug};
use crate::component::Area;
use crate::coverage::CoverageMap;
use crate::fault::{FaultPlan, VmFault, VM_PANIC_MARKER};
use crate::spec::JvmSpec;
use jexec::{ExecConfig, ExecStats, Image, Outcome};
use jopt::{FlagSet, OptEvent};
use std::fmt;

/// Command-line-equivalent options for one JVM execution.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Enabled diagnostic print flags (profile data).
    pub flags: FlagSet,
    /// Interpreter limits (fuel, stack depth).
    pub exec: ExecConfig,
    /// Force-compile every method at the top tier (the `-Xcomp` analogue).
    pub xcomp: bool,
    /// Restrict compilation to one `Class::method`
    /// (the `-XX:CompileCommand=compileonly` analogue).
    pub compile_only: Option<(String, String)>,
    /// Deterministic fault injection (robustness testing only).
    pub fault: Option<FaultPlan>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            flags: FlagSet::none(),
            exec: ExecConfig::default(),
            xcomp: false,
            compile_only: None,
            fault: None,
        }
    }
}

impl RunOptions {
    /// The configuration MopFuzzer drives the JVM with (paper §4.1):
    /// `-Xcomp` plus all 15 print flags.
    pub fn fuzzing() -> RunOptions {
        RunOptions {
            flags: FlagSet::all(),
            xcomp: true,
            ..RunOptions::default()
        }
    }
}

/// A compiler-crash report, the analogue of `hs_err_pid.log`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashReport {
    /// The injected bug that fired.
    pub bug_id: String,
    /// Affected JIT component.
    pub component: crate::component::Component,
    /// Method being compiled when the crash happened.
    pub method: String,
    /// The rendered `hs_err`-style text.
    pub hs_err: String,
}

/// How a JVM execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The program ran to completion (possibly with a Java exception —
    /// that is program behaviour, captured in the outcome).
    Completed(Outcome),
    /// The JIT compiler crashed while compiling a method.
    CompilerCrash(CrashReport),
    /// The program failed class loading / verification.
    InvalidProgram(jexec::BuildError),
}

impl Verdict {
    /// True for a compiler crash.
    pub fn is_crash(&self) -> bool {
        matches!(self, Verdict::CompilerCrash(_))
    }
}

/// Cache-lookup keys recorded during one JVM execution, in execution
/// order. A pure function of the execution itself (not of live cache
/// state), so the oracle can count hits and misses in canonical merge
/// order — giving bit-identical telemetry at any worker count, even
/// though the process-wide caches are warmed in scheduling order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheLog {
    /// Threaded-code cache keys (one per first call of each method).
    pub code: Vec<u64>,
    /// Pipeline-memo keys (one per method compilation).
    pub pipeline: Vec<u64>,
    /// Leaf calls the threaded substrate executed inline (framelessly).
    /// A pure function of the execution, like the key logs.
    pub inlined: u64,
}

/// The full result of one JVM execution.
#[derive(Debug, Clone)]
pub struct JvmRun {
    /// Name of the JVM that ran (`HotSpur-17`).
    pub jvm: String,
    /// Terminal state.
    pub verdict: Verdict,
    /// Profile data: the trace-log lines printed under the enabled flags.
    pub log: Vec<String>,
    /// Every optimization event performed (ground truth; the fuzzer only
    /// reads `log`).
    pub events: Vec<OptEvent>,
    /// Coverage touched by this execution.
    pub coverage: CoverageMap,
    /// Labels of JIT-compiled methods.
    pub compiled: Vec<String>,
    /// Ids of miscompile bugs whose corruption was applied (ground truth
    /// for experiment bookkeeping; invisible to the oracles).
    pub miscompiled_by: Vec<String>,
    /// Total interpreter steps across both runs — the simulated-time unit.
    pub steps: u64,
    /// Cache-lookup keys from this execution (see [`CacheLog`]).
    pub cache_log: CacheLog,
}

impl JvmRun {
    /// The behaviour the differential oracle compares: printed output plus
    /// Java-level exception banners. Crashes and timeouts are handled by
    /// their own oracles and never enter this comparison.
    pub fn observable(&self) -> Option<Vec<String>> {
        match &self.verdict {
            Verdict::Completed(o) if o.error.as_ref().is_none_or(|e| e.is_program_level()) => {
                Some(o.observable())
            }
            _ => None,
        }
    }
}

impl fmt::Display for JvmRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.verdict {
            Verdict::Completed(o) => write!(
                f,
                "{}: completed, {} lines, {} compiled",
                self.jvm,
                o.output.len(),
                self.compiled.len()
            ),
            Verdict::CompilerCrash(c) => write!(f, "{}: crash in {}", self.jvm, c.bug_id),
            Verdict::InvalidProgram(e) => write!(f, "{}: invalid program ({e})", self.jvm),
        }
    }
}

/// Executes `program` on the simulated JVM described by `spec`.
pub fn run_jvm(program: &mjava::Program, spec: &JvmSpec, options: &RunOptions) -> JvmRun {
    run_jvm_with_image(program, None, spec, options)
}

/// [`run_jvm`] with an optionally pre-built class image.
///
/// The differential oracle builds `program`'s image once per verdict and
/// hands each of the eight pool JVMs a clone, instead of re-running class
/// loading and load-time lowering eight times. `None` builds from source;
/// behaviour is identical either way (the same build runs the same checks
/// in the same order — it just runs once, on the caller).
pub fn run_jvm_with_image(
    program: &mjava::Program,
    prebuilt: Option<Result<Image, jexec::BuildError>>,
    spec: &JvmSpec,
    options: &RunOptions,
) -> JvmRun {
    // Opened before the fault check so an injected panic still leaves a
    // flight-recorder event naming the JVM that died.
    let _span = jtelemetry::span(jtelemetry::FlightKind::Vm, "vm_execution", &spec.name());
    // Discard lookup keys left behind by an execution that died mid-run
    // (injected panic, watchdog cancellation): this run's log must contain
    // exactly this run's lookups.
    let _ = jexec::threaded::take_lookup_log();
    let _ = jopt::pipeline::take_lookup_log();
    let _ = jexec::threaded::take_inline_count();
    // Fault injection decides up front, from (plan, jvm, program) alone,
    // what — if anything — goes wrong during this execution.
    let injected = options
        .fault
        .as_ref()
        .and_then(|plan| plan.vm_fault(&spec.name(), &mjava::print(program)));
    let mut exec = options.exec;
    match injected {
        Some(VmFault::Panic) => {
            panic!("{VM_PANIC_MARKER}: injected VM panic on {}", spec.name());
        }
        Some(VmFault::FuelExhaustion) => exec.fuel = exec.fuel.min(64),
        Some(VmFault::Hang) => loop {
            // Blocks forever; only the round watchdog's cancellation (which
            // panics with the timeout marker) gets out of here.
            jtelemetry::cancel::check("injected hang");
            std::thread::sleep(std::time::Duration::from_millis(1));
        },
        _ => {}
    }

    let mut run = run_jvm_inner(program, prebuilt, spec, options, &exec, injected);
    run.cache_log = CacheLog {
        code: jexec::threaded::take_lookup_log(),
        pipeline: jopt::pipeline::take_lookup_log(),
        inlined: jexec::threaded::take_inline_count(),
    };
    if injected == Some(VmFault::LogCorruption) {
        if let Some(plan) = &options.fault {
            plan.corrupt_log(&spec.name(), &mjava::print(program), &mut run.log);
        }
    }
    // Work is credited only at this single completed-execution exit: an
    // execution that dies by injected panic contributes nothing, which
    // keeps wasted-work accounting a pure function of the campaign config.
    jtelemetry::work::add(run.steps, 1);
    jtelemetry::count(jtelemetry::Counter::VmExecutions, 1);
    match &run.verdict {
        Verdict::CompilerCrash(_) => jtelemetry::count(jtelemetry::Counter::VmCrashes, 1),
        Verdict::InvalidProgram(_) => jtelemetry::count(jtelemetry::Counter::VmBuildFailures, 1),
        Verdict::Completed(_) => {}
    }
    jtelemetry::count(
        jtelemetry::Counter::VmMiscompiles,
        run.miscompiled_by.len() as u64,
    );
    run
}

fn run_jvm_inner(
    program: &mjava::Program,
    prebuilt: Option<Result<Image, jexec::BuildError>>,
    spec: &JvmSpec,
    options: &RunOptions,
    exec: &ExecConfig,
    injected: Option<VmFault>,
) -> JvmRun {
    let mut run = JvmRun {
        jvm: spec.name(),
        verdict: Verdict::Completed(Outcome {
            output: vec![],
            error: None,
            stats: ExecStats::default(),
            profile: jexec::Profile::default(),
        }),
        log: Vec::new(),
        events: Vec::new(),
        coverage: CoverageMap::new(),
        compiled: Vec::new(),
        miscompiled_by: Vec::new(),
        steps: 0,
        cache_log: CacheLog::default(),
    };

    if injected == Some(VmFault::BuildFailure) {
        run.verdict = Verdict::InvalidProgram(jexec::BuildError::UnknownClass(
            "mop-fault-injected".to_string(),
        ));
        return run;
    }
    let mut image = match prebuilt.unwrap_or_else(|| Image::build(program)) {
        Ok(i) => i,
        Err(e) => {
            run.verdict = Verdict::InvalidProgram(e);
            return run;
        }
    };

    // Tier 0: interpret with profiling.
    let tier0 = jexec::run(&image, exec);
    run.steps += tier0.stats.steps;
    mark_runtime_coverage(&mut run.coverage, &tier0);

    // Tier selection.
    let armed_bugs: Vec<InjectedBug> = if spec.bugs_armed {
        bugs::bugs_for(spec.family, spec.version)
    } else {
        Vec::new()
    };
    let select = |mid: usize, hot: bool| -> bool {
        let m = &image.methods[mid];
        if let Some((class, method)) = &options.compile_only {
            let cname = &image.classes[m.class].name;
            if cname != class || &m.name != method {
                return false;
            }
        }
        if options.xcomp {
            return hot; // xcomp compiles everything at the top tier
        }
        let inv = tier0.profile.invocations[mid];
        let backedges = tier0.profile.backedges[mid];
        if hot {
            inv >= spec.c2_threshold || backedges >= spec.backedge_threshold
        } else {
            inv >= spec.c1_threshold
        }
    };
    let c2_set: Vec<usize> = (0..image.methods.len())
        .filter(|&m| select(m, true))
        .collect();
    let c1_set: Vec<usize> = (0..image.methods.len())
        .filter(|&m| !c2_set.contains(&m) && select(m, false))
        .collect();

    // Compile. A crash during any compilation aborts the whole VM, exactly
    // like a real fatal error.
    let mut corrupted = false;
    // One source fingerprint per execution: the pipeline memo's program
    // key, shared by every method compiled below.
    let program_fp = if c1_set.is_empty() && c2_set.is_empty() {
        0
    } else {
        jopt::source_fingerprint(&mjava::print(program))
    };
    for (tier_phases, tier_area, set) in [
        (&spec.c1_phases, Area::C1, &c1_set),
        (&spec.c2_phases, Area::C2, &c2_set),
    ] {
        for &mid in set {
            let class_name = image.classes[image.methods[mid].class].name.clone();
            let method_name = image.methods[mid].name.clone();
            let Some(out) = jopt::optimize_memo(
                program,
                program_fp,
                &class_name,
                &method_name,
                tier_phases,
                spec.limits,
                &options.flags,
            ) else {
                continue;
            };
            let label = format!("{class_name}::{method_name}");
            run.compiled.push(label.clone());
            run.log.extend(out.log.iter().cloned());
            run.events.extend(out.events.iter().cloned());
            for block in &out.covered {
                run.coverage.mark(tier_area, *block);
            }
            // Bug evaluation on this compilation's events.
            let mut method = out.method;
            for bug in &armed_bugs {
                if !bug.fires(&out.events) {
                    continue;
                }
                match bug.kind {
                    BugKind::Crash => {
                        let report = crash_report(bug, spec, &label);
                        run.verdict = Verdict::CompilerCrash(report);
                        return run;
                    }
                    BugKind::Miscompile(corruption) => {
                        if bugs::apply_corruption(&mut method, corruption) {
                            run.miscompiled_by.push(bug.id.to_string());
                            corrupted = true;
                        }
                    }
                }
            }
            // Lower the (possibly corrupted) optimized method and install.
            match jexec::compile_method_ast(&image, image.methods[mid].class, &method) {
                Ok(code) => image.install_code(mid, code),
                Err(_) => {
                    // An optimized body that fails to re-verify is itself a
                    // compiler defect; surface it as a crash.
                    let report = CrashReport {
                        bug_id: "MOP-LOWERING".to_string(),
                        component: crate::component::Component::CodeGenerationC2,
                        method: label.clone(),
                        hs_err: format!("# lowering failure while compiling {label}"),
                    };
                    run.verdict = Verdict::CompilerCrash(report);
                    return run;
                }
            }
        }
    }

    // Final run on the compiled image (skipped when nothing compiled and
    // nothing was corrupted — the interpreter outcome stands).
    let final_outcome = if run.compiled.is_empty() && !corrupted {
        tier0
    } else {
        let out = jexec::run(&image, exec);
        run.steps += out.stats.steps;
        mark_runtime_coverage(&mut run.coverage, &out);
        out
    };
    run.verdict = Verdict::Completed(final_outcome);
    run
}

fn crash_report(bug: &InjectedBug, spec: &JvmSpec, method: &str) -> CrashReport {
    let hs_err = format!(
        "#\n\
         # A fatal error has been detected by the Java Runtime Environment:\n\
         #\n\
         #  SIGSEGV (0xb) at pc=0x00007f00deadbeef\n\
         #\n\
         # JRE version: {} (build {}-mop)\n\
         # Problematic frame:\n\
         # V  [libjvm.so]  {}  [{}]\n\
         #\n\
         # Compiling: {}\n",
        spec.name(),
        spec.version.number(),
        bug.component.label(),
        bug.id,
        method,
    );
    CrashReport {
        bug_id: bug.id.to_string(),
        component: bug.component,
        method: method.to_string(),
        hs_err,
    }
}

/// Maps interpreter statistics into Runtime and GC coverage blocks.
fn mark_runtime_coverage(coverage: &mut CoverageMap, outcome: &Outcome) {
    let stats = &outcome.stats;
    coverage.mark(Area::Runtime, 0); // startup
    let feature_blocks = [
        (stats.allocations > 0, 1u32),
        (stats.monitor_enters > 0, 2),
        (stats.reflective_calls > 0, 3),
        (stats.boxes > 0, 4),
        (stats.unboxes > 0, 5),
        (stats.prints > 0, 6),
        (outcome.error.is_some(), 7),
        (stats.max_depth > 8, 8),
        (stats.calls > 100, 9),
        (stats.monitor_enters > 100, 10),
        (stats.reflective_calls > 100, 11),
    ];
    for (on, block) in feature_blocks {
        if on {
            coverage.mark(Area::Runtime, block);
        }
    }
    // Work-volume buckets: more executed work touches more interpreter
    // dispatch paths.
    let mut steps = stats.steps;
    let mut bucket = 16;
    while steps > 0 {
        coverage.mark(Area::Runtime, bucket);
        steps >>= 2;
        bucket += 1;
    }
    // GC: allocation volume drives collection activity.
    if stats.allocations > 0 {
        coverage.mark(Area::Gc, 0);
        let mut allocs = stats.allocations;
        let mut block = 1;
        while allocs > 0 {
            coverage.mark(Area::Gc, block);
            allocs >>= 1;
            block += 1;
        }
        if stats.monitor_enters > 0 {
            coverage.mark(Area::Gc, 40); // locked-object collection path
        }
        if stats.boxes > 32 {
            coverage.mark(Area::Gc, 41); // box cache pressure
        }
    }
}

// The differential oracle farms `run_jvm` calls onto a shared worker
// pool, so everything it moves across threads must stay `Send`. These
// assertions turn an accidental `Rc`/raw-pointer regression into a
// compile error at the crate that introduced it.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<JvmRun>();
    assert_send::<RunOptions>();
    assert_send::<JvmSpec>();
    assert_send::<FaultPlan>();
    assert_send::<CoverageMap>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Version;

    fn hot_loop_program() -> mjava::Program {
        mjava::parse(
            r#"
            class T {
                static int s;
                static int step(int i) { return i % 7; }
                static void main() {
                    for (int i = 0; i < 3_000; i++) {
                        s = s + T.step(i);
                    }
                    System.out.println(s);
                }
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn interprets_cold_program_without_compiling() {
        let p = mjava::parse("class T { static void main() { System.out.println(42); } }").unwrap();
        let run = run_jvm(&p, &JvmSpec::hotspur(Version::V17), &RunOptions::default());
        assert!(run.compiled.is_empty());
        assert_eq!(run.observable().unwrap(), vec!["42"]);
    }

    #[test]
    fn compiles_hot_methods_and_preserves_output() {
        let p = hot_loop_program();
        let spec = JvmSpec::hotspur(Version::V17);
        let cold = run_jvm(&p, &spec, &RunOptions::default());
        assert!(
            cold.compiled.iter().any(|m| m == "T::step"),
            "hot method not compiled: {:?}",
            cold.compiled
        );
        let interp_only = {
            let o = jexec::run_program(&p, &ExecConfig::default()).unwrap();
            o.observable()
        };
        assert_eq!(cold.observable().unwrap(), interp_only);
    }

    #[test]
    fn xcomp_compiles_everything() {
        let p = hot_loop_program();
        let run = run_jvm(&p, &JvmSpec::hotspur(Version::V17), &RunOptions::fuzzing());
        assert_eq!(run.compiled.len(), 2);
        assert!(!run.log.is_empty(), "fuzzing options enable all flags");
    }

    #[test]
    fn compile_only_restricts_compilation() {
        let p = hot_loop_program();
        let options = RunOptions {
            compile_only: Some(("T".to_string(), "step".to_string())),
            ..RunOptions::fuzzing()
        };
        let run = run_jvm(&p, &JvmSpec::hotspur(Version::V17), &options);
        assert_eq!(run.compiled, vec!["T::step"]);
    }

    #[test]
    fn profile_log_only_with_flags() {
        let p = hot_loop_program();
        let spec = JvmSpec::hotspur(Version::V17);
        let silent = run_jvm(&p, &spec, &RunOptions::default());
        assert!(silent.log.is_empty());
        // Events are still recorded internally.
        assert!(!silent.events.is_empty());
    }

    #[test]
    fn runtime_and_gc_coverage_marked() {
        let p = hot_loop_program();
        let run = run_jvm(&p, &JvmSpec::hotspur(Version::V17), &RunOptions::default());
        assert!(run.coverage.covered(Area::Runtime) > 3);
        assert!(run.coverage.percent(Area::C2) > 0.0);
    }

    #[test]
    fn invalid_program_reported() {
        let p = mjava::parse("class T { static void main() { x = 1; } }").unwrap();
        let run = run_jvm(&p, &JvmSpec::hotspur(Version::V17), &RunOptions::default());
        assert!(matches!(run.verdict, Verdict::InvalidProgram(_)));
        assert!(run.observable().is_none());
    }

    #[test]
    fn version_differences_show_in_profile_data() {
        // HotSpur-8 has no de-reflection phase: a hot reflective call
        // stays reflective there but devirtualizes (and then inlines) on
        // HotSpur-17 — same output, different optimization behaviour.
        let p = mjava::parse(
            r#"
            class T {
                static int twice(int v) { return v * 2; }
                static void main() {
                    int s = 0;
                    for (int i = 0; i < 1_500; i++) {
                        s = s + Class.forName("T").getDeclaredMethod("twice").invoke(null, i % 3);
                    }
                    System.out.println(s);
                }
            }
            "#,
        )
        .unwrap();
        let old = run_jvm(
            &p,
            &JvmSpec::hotspur(Version::V8).without_bugs(),
            &RunOptions::fuzzing(),
        );
        let new = run_jvm(
            &p,
            &JvmSpec::hotspur(Version::V17).without_bugs(),
            &RunOptions::fuzzing(),
        );
        assert_eq!(old.observable(), new.observable(), "semantics agree");
        let dereflects = |run: &JvmRun| {
            run.events
                .iter()
                .filter(|e| e.kind == jopt::OptEventKind::Dereflect)
                .count()
        };
        assert_eq!(dereflects(&old), 0, "V8 must not devirtualize");
        assert!(dereflects(&new) > 0, "V17 must devirtualize");
    }

    #[test]
    fn miscompile_bug_corrupts_output_on_affected_version_only() {
        // MOP-J104 (J9-8, RedundancyElimination) fires on three
        // consecutive redundant stores and drops the last store of the
        // compiled method.
        let p = mjava::parse(
            r#"
            class T {
                static int s;
                static void main() {
                    s = 1;
                    s = 2;
                    s = 3;
                    s = 4;
                    System.out.println(s);
                }
            }
            "#,
        )
        .unwrap();
        let affected = run_jvm(&p, &JvmSpec::j9(Version::V8), &RunOptions::fuzzing());
        assert_eq!(affected.miscompiled_by, vec!["MOP-J104".to_string()]);
        let healthy = run_jvm(
            &p,
            &JvmSpec::j9(Version::V8).without_bugs(),
            &RunOptions::fuzzing(),
        );
        assert_eq!(healthy.observable().unwrap(), vec!["4"]);
        assert_ne!(
            affected.observable().unwrap(),
            healthy.observable().unwrap(),
            "corruption must be externally visible"
        );
    }

    #[test]
    fn crash_report_carries_hs_err_banner() {
        // Adjacent + nested monitors and loops: the Listing-3 recipe.
        let p = mjava::parse(
            r#"
            class T {
                static int s;
                static void main() {
                    synchronized (T.class) {
                        synchronized (T.class) { s = s + 1; }
                    }
                    int i = 0;
                    while (i < 32) {
                        s = s + i; s = s + 1; s = s - 1; s = s + 2;
                        s = s - 2; s = s + 3; s = s - 3;
                        i = i + 1;
                    }
                    synchronized (T.class) { s = s + 3; }
                    synchronized (T.class) { s = s + 4; }
                    System.out.println(s);
                }
            }
            "#,
        )
        .unwrap();
        let run = run_jvm(
            &p,
            &JvmSpec::hotspur(Version::Mainline),
            &RunOptions::fuzzing(),
        );
        let Verdict::CompilerCrash(report) = &run.verdict else {
            panic!("expected crash, got {:?}", run.verdict);
        };
        assert!(report.hs_err.contains("A fatal error has been detected"));
        assert!(report.hs_err.contains(&report.bug_id));
        assert!(run.observable().is_none());
    }

    /// Fault-injection plumbing: every `VmFault` kind maps to its intended
    /// observable degradation, and a zero-rate plan is a strict no-op.
    #[test]
    fn injected_faults_degrade_as_specified() {
        let p = hot_loop_program();
        let spec = JvmSpec::hotspur(Version::V17);
        let clean = run_jvm(&p, &spec, &RunOptions::fuzzing());

        let with_rate = |rate: f64, seed: u64| RunOptions {
            fault: Some(FaultPlan::new(seed, rate)),
            ..RunOptions::fuzzing()
        };
        // Rate 0 behaves exactly like no plan at all.
        let zero = run_jvm(&p, &spec, &with_rate(0.0, 1));
        assert_eq!(zero.log, clean.log);
        assert_eq!(zero.observable(), clean.observable());

        // At rate 1.0, scan plan seeds until each kind has been observed.
        let mut saw = [false; 4];
        for seed in 0..64u64 {
            let options = with_rate(1.0, seed);
            let plan = options.fault.clone().unwrap();
            let injected = plan.vm_fault(&spec.name(), &mjava::print(&p)).unwrap();
            match injected {
                VmFault::Panic => {
                    let caught = std::panic::catch_unwind(|| run_jvm(&p, &spec, &options));
                    let payload = caught.expect_err("must panic");
                    let msg = payload.downcast_ref::<String>().expect("string payload");
                    assert!(msg.starts_with(VM_PANIC_MARKER), "{msg}");
                    saw[0] = true;
                }
                VmFault::BuildFailure => {
                    let run = run_jvm(&p, &spec, &options);
                    assert!(matches!(run.verdict, Verdict::InvalidProgram(_)));
                    saw[1] = true;
                }
                VmFault::FuelExhaustion => {
                    let run = run_jvm(&p, &spec, &options);
                    assert!(run.observable().is_none(), "starved run is not comparable");
                    saw[2] = true;
                }
                VmFault::LogCorruption => {
                    let run = run_jvm(&p, &spec, &options);
                    assert_ne!(run.log, clean.log);
                    assert_eq!(run.observable(), clean.observable());
                    saw[3] = true;
                }
                VmFault::Hang => unreachable!("random plans never select Hang"),
            }
            if saw.iter().all(|&s| s) {
                return;
            }
        }
        panic!("not all fault kinds observed across 64 plan seeds: {saw:?}");
    }

    #[test]
    fn injected_hang_blocks_until_cancelled_and_panics_with_the_marker() {
        let p = mjava::samples::listing2().program;
        let spec = JvmSpec::hotspur(Version::V17);
        let options = RunOptions {
            fault: Some(FaultPlan::new(1, 1.0).with_only(VmFault::Hang)),
            ..RunOptions::fuzzing()
        };
        let token = jtelemetry::cancel::CancelToken::new();
        let canceller = token.clone();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            canceller.cancel();
        });
        let caught = {
            let _guard = jtelemetry::cancel::install(&token);
            std::panic::catch_unwind(|| run_jvm(&p, &spec, &options))
        };
        waker.join().unwrap();
        let payload = caught.expect_err("hang must be cancelled, not complete");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(
            msg.starts_with(jtelemetry::cancel::TIMEOUT_PANIC_MARKER),
            "{msg}"
        );
    }

    #[test]
    fn seeds_do_not_trigger_bugs_unmutated() {
        // Paper premise: interaction bugs need mutated, interaction-rich
        // inputs; plain regression seeds must pass on every JVM.
        for seed in mjava::samples::all_seeds() {
            for spec in JvmSpec::differential_pool() {
                let run = run_jvm(&seed.program, &spec, &RunOptions::fuzzing());
                assert!(
                    matches!(run.verdict, Verdict::Completed(_)),
                    "seed {} crashed {}: {:?}",
                    seed.name,
                    spec.name(),
                    run.verdict
                );
                assert!(
                    run.miscompiled_by.is_empty(),
                    "seed {} miscompiled on {}: {:?}",
                    seed.name,
                    spec.name(),
                    run.miscompiled_by
                );
            }
        }
    }

    #[test]
    fn seeds_agree_across_the_pool() {
        for seed in mjava::samples::all_seeds() {
            let mut outputs = Vec::new();
            for spec in JvmSpec::differential_pool() {
                let run = run_jvm(&seed.program, &spec, &RunOptions::fuzzing());
                outputs.push((spec.name(), run.observable().expect("completed")));
            }
            let first = &outputs[0].1;
            for (name, out) in &outputs {
                assert_eq!(out, first, "seed {} differs on {}", seed.name, name);
            }
        }
    }

    #[test]
    fn optimizer_preserves_seed_semantics_with_bugs_disarmed() {
        for seed in mjava::samples::all_seeds() {
            let interp = jexec::run_program(&seed.program, &ExecConfig::default())
                .unwrap()
                .observable();
            let spec = JvmSpec::hotspur(Version::Mainline).without_bugs();
            let run = run_jvm(&seed.program, &spec, &RunOptions::fuzzing());
            assert_eq!(
                run.observable().expect("completed"),
                interp,
                "JIT changed semantics of seed {}",
                seed.name
            );
        }
    }
}
