//! Simulated JVM implementations and versions.
//!
//! Two families stand in for the paper's targets: **HotSpur** (the
//! HotSpot/OpenJDK analogue, LTS versions 8/11/17/21 plus the mainline)
//! and **J9** (the OpenJ9 analogue, versions 8/11/17). Families and
//! versions differ in phase order, tier thresholds, optimizer limits, and
//! — crucially — in which injected bugs they carry, so differential
//! testing across them is meaningful.

use jopt::{OptLimits, PhaseId};
use std::fmt;

/// JVM implementation family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// The HotSpot/OpenJDK analogue.
    HotSpur,
    /// The OpenJ9 analogue.
    J9,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Family::HotSpur => write!(f, "HotSpur"),
            Family::J9 => write!(f, "J9"),
        }
    }
}

/// JVM version: the LTS line plus the development mainline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Version {
    V8,
    V11,
    V17,
    V21,
    /// The development mainline (23 at the paper's time).
    Mainline,
}

impl Version {
    /// All versions, oldest first.
    pub const ALL: [Version; 5] = [
        Version::V8,
        Version::V11,
        Version::V17,
        Version::V21,
        Version::Mainline,
    ];

    /// Display number ("8", "11", …, "23").
    pub fn number(&self) -> &'static str {
        match self {
            Version::V8 => "8",
            Version::V11 => "11",
            Version::V17 => "17",
            Version::V21 => "21",
            Version::Mainline => "23",
        }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if matches!(self, Version::Mainline) {
            write!(f, "mainline")
        } else {
            write!(f, "{}", self.number())
        }
    }
}

/// The full configuration of one simulated JVM.
#[derive(Debug, Clone)]
pub struct JvmSpec {
    /// Implementation family.
    pub family: Family,
    /// Version.
    pub version: Version,
    /// Invocation count promoting a method to the C1 tier.
    pub c1_threshold: u64,
    /// Invocation count promoting a method to the C2 tier.
    pub c2_threshold: u64,
    /// Back-edge count promoting a method (OSR analogue).
    pub backedge_threshold: u64,
    /// Phase order of the C1 tier (a cheap subset).
    pub c1_phases: Vec<PhaseId>,
    /// Phase order of the C2 tier.
    pub c2_phases: Vec<PhaseId>,
    /// Optimizer limits.
    pub limits: OptLimits,
    /// Whether the version's injected bugs are armed. Disable to obtain a
    /// reference ("fixed") JVM for semantics testing.
    pub bugs_armed: bool,
}

impl JvmSpec {
    /// A HotSpur JVM of the given version.
    pub fn hotspur(version: Version) -> JvmSpec {
        let mut c2 = PhaseId::DEFAULT_ORDER.to_vec();
        // Version differences: V8 lacks de-reflection; V8/V11 run the
        // autobox eliminator before GVN (older pipeline shape).
        match version {
            Version::V8 => {
                c2.retain(|p| *p != PhaseId::Dereflect);
            }
            Version::V11 => {
                c2.retain(|p| *p != PhaseId::Autobox);
                let gvn = c2.iter().position(|p| *p == PhaseId::Gvn).expect("gvn");
                c2.insert(gvn, PhaseId::Autobox);
            }
            _ => {}
        }
        let rounds = match version {
            Version::V8 | Version::V11 => 2,
            _ => 3,
        };
        JvmSpec {
            family: Family::HotSpur,
            version,
            c1_threshold: 200,
            c2_threshold: 1_000,
            backedge_threshold: 2_000,
            c1_phases: vec![PhaseId::Gvn, PhaseId::Store, PhaseId::Dce],
            c2_phases: c2,
            limits: OptLimits {
                rounds,
                ..OptLimits::default()
            },
            bugs_armed: true,
        }
    }

    /// A J9 JVM of the given version (J9 ships 8, 11 and 17).
    pub fn j9(version: Version) -> JvmSpec {
        let c2 = vec![
            PhaseId::Inline,
            PhaseId::Gvn,
            PhaseId::Dereflect,
            PhaseId::Escape,
            PhaseId::Locks,
            PhaseId::Loops,
            PhaseId::Store,
            PhaseId::Dce,
            PhaseId::Autobox,
            PhaseId::Deopt,
        ];
        JvmSpec {
            family: Family::J9,
            version,
            c1_threshold: 150,
            c2_threshold: 800,
            backedge_threshold: 1_500,
            c1_phases: vec![PhaseId::Gvn, PhaseId::Dce],
            c2_phases: c2,
            limits: OptLimits {
                rounds: 2,
                unroll_limit: 4,
                ..OptLimits::default()
            },
            bugs_armed: true,
        }
    }

    /// The default differential-testing pool: all HotSpur LTS + mainline
    /// versions and the three J9 versions — the paper's §3.5 setup.
    pub fn differential_pool() -> Vec<JvmSpec> {
        let mut pool: Vec<JvmSpec> = Version::ALL.iter().map(|&v| JvmSpec::hotspur(v)).collect();
        for v in [Version::V8, Version::V11, Version::V17] {
            pool.push(JvmSpec::j9(v));
        }
        pool
    }

    /// A copy with injected bugs disarmed — a hypothetical fully-fixed JVM,
    /// used as the reference in semantics-preservation tests.
    pub fn without_bugs(mut self) -> JvmSpec {
        self.bugs_armed = false;
        self
    }

    /// Short display name, e.g. `HotSpur-17`.
    pub fn name(&self) -> String {
        format!("{}-{}", self.family, self.version)
    }

    /// Parses a `family-version` name as produced by [`JvmSpec::name`]
    /// (e.g. `HotSpur-17`, `J9-8`, `HotSpur-mainline`).
    pub fn from_name(spec: &str) -> Result<JvmSpec, String> {
        let (family, version) = spec
            .split_once('-')
            .ok_or_else(|| format!("bad JVM spec {spec:?} (expected e.g. HotSpur-17)"))?;
        let version = match version {
            "8" => Version::V8,
            "11" => Version::V11,
            "17" => Version::V17,
            "21" => Version::V21,
            "mainline" | "23" => Version::Mainline,
            other => return Err(format!("unknown version {other:?}")),
        };
        match family {
            "HotSpur" => Ok(JvmSpec::hotspur(version)),
            "J9" => {
                if matches!(version, Version::V21 | Version::Mainline) {
                    return Err(format!("J9 ships versions 8, 11 and 17, not {version}"));
                }
                Ok(JvmSpec::j9(version))
            }
            other => Err(format!("unknown family {other:?} (HotSpur or J9)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspur_v8_lacks_dereflection() {
        let spec = JvmSpec::hotspur(Version::V8);
        assert!(!spec.c2_phases.contains(&PhaseId::Dereflect));
        assert!(JvmSpec::hotspur(Version::V17)
            .c2_phases
            .contains(&PhaseId::Dereflect));
    }

    #[test]
    fn families_differ_in_phase_order() {
        let hs = JvmSpec::hotspur(Version::V17);
        let j9 = JvmSpec::j9(Version::V17);
        assert_ne!(hs.c2_phases, j9.c2_phases);
        assert_ne!(hs.limits.unroll_limit, j9.limits.unroll_limit);
    }

    #[test]
    fn differential_pool_has_eight_jvms() {
        let pool = JvmSpec::differential_pool();
        assert_eq!(pool.len(), 8);
        assert_eq!(
            pool.iter().filter(|s| s.family == Family::HotSpur).count(),
            5
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            JvmSpec::hotspur(Version::Mainline).name(),
            "HotSpur-mainline"
        );
        assert_eq!(JvmSpec::j9(Version::V8).name(), "J9-8");
    }

    #[test]
    fn without_bugs_disarms() {
        let spec = JvmSpec::hotspur(Version::V17).without_bugs();
        assert!(!spec.bugs_armed);
    }

    #[test]
    fn from_name_roundtrips_the_pool() {
        for spec in JvmSpec::differential_pool() {
            let parsed = JvmSpec::from_name(&spec.name()).unwrap();
            assert_eq!(parsed.name(), spec.name());
            assert_eq!(parsed.family, spec.family);
            assert_eq!(parsed.version, spec.version);
        }
    }

    #[test]
    fn from_name_rejects_nonsense() {
        assert!(JvmSpec::from_name("HotSpur17").is_err());
        assert!(JvmSpec::from_name("Kaffe-9").is_err());
        assert!(JvmSpec::from_name("J9-21").is_err());
        assert!(JvmSpec::from_name("HotSpur-6").is_err());
    }
}
