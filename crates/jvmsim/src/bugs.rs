//! The injected-bug library.
//!
//! Each entry is the analogue of one of the 59 real bugs MopFuzzer
//! reported (paper Tables 2–4): it belongs to one JVM family, affects a
//! set of versions, lives in one JIT component, and fires when a *trigger
//! predicate over the optimization events of a single method compilation*
//! holds. Triggers are conjunctions across several behaviours — encoding
//! the paper's core claim that these bugs arise from optimization
//! *interactions*, not from any single optimization. A plain seed program
//! does not satisfy any trigger (the test suite enforces this); iterated
//! mutation does.
//!
//! Crash bugs abort compilation with an `hs_err`-style report; miscompile
//! bugs corrupt the optimized method, which the differential oracle later
//! exposes as cross-JVM output divergence.

use crate::component::Component;
use crate::spec::{Family, Version};
use jopt::{OptEvent, OptEventKind};
use std::collections::HashMap;

/// A predicate over per-compilation event counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trigger {
    /// At least `1` occurrences of a behaviour kind.
    AtLeast(OptEventKind, u64),
    /// All sub-triggers hold.
    All(Vec<Trigger>),
    /// Any sub-trigger holds.
    Any(Vec<Trigger>),
}

impl Trigger {
    /// Evaluates the predicate against event counts.
    pub fn eval(&self, counts: &HashMap<OptEventKind, u64>) -> bool {
        match self {
            Trigger::AtLeast(kind, n) => counts.get(kind).copied().unwrap_or(0) >= *n,
            Trigger::All(subs) => subs.iter().all(|t| t.eval(counts)),
            Trigger::Any(subs) => subs.iter().any(|t| t.eval(counts)),
        }
    }

    /// The distinct behaviour kinds the predicate mentions.
    pub fn kinds(&self) -> Vec<OptEventKind> {
        let mut out = Vec::new();
        self.collect_kinds(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_kinds(&self, out: &mut Vec<OptEventKind>) {
        match self {
            Trigger::AtLeast(kind, _) => out.push(*kind),
            Trigger::All(subs) | Trigger::Any(subs) => {
                for t in subs {
                    t.collect_kinds(out);
                }
            }
        }
    }
}

/// Tallies events by kind — the input to trigger evaluation.
pub fn count_events(events: &[OptEvent]) -> HashMap<OptEventKind, u64> {
    let mut counts = HashMap::new();
    for e in events {
        *counts.entry(e.kind).or_insert(0) += 1;
    }
    counts
}

/// How a miscompile bug corrupts the optimized method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Removes the last store statement of the method.
    DropLastStore,
    /// Turns the first `+` into a `-`.
    AddBecomesSub,
    /// Negates the first branch condition.
    NegateFirstGuard,
    /// Turns the first `for (…; i < n; …)` into `i <= n`.
    OffByOneLoop,
}

/// Bug kind, matching Table 2's crash/miscompilation split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugKind {
    /// The compiler crashes during compilation.
    Crash,
    /// The compiler emits wrong code.
    Miscompile(Corruption),
}

/// The reported status of the (analogue) bug — Table 2's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportStatus {
    InProgress,
    Fixed,
    Duplicate,
    NotBackportable,
}

/// OpenJDK-style priority (HotSpur bugs only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    P2,
    P3,
    P4,
}

/// One injected bug.
#[derive(Debug, Clone)]
pub struct InjectedBug {
    /// Stable identifier (analogue of a JDK-/Issue- number).
    pub id: &'static str,
    /// Affected family.
    pub family: Family,
    /// Affected versions.
    pub affected: Vec<Version>,
    /// JIT component the defect lives in (Table 4).
    pub component: Component,
    /// Crash or miscompilation.
    pub kind: BugKind,
    /// Report status (Table 2).
    pub status: ReportStatus,
    /// Priority, for HotSpur bugs (Table context in §4.2).
    pub priority: Option<Priority>,
    /// Firing condition over one method compilation's events.
    pub trigger: Trigger,
}

impl InjectedBug {
    /// True if this bug exists in the given family+version.
    pub fn affects(&self, family: Family, version: Version) -> bool {
        self.family == family && self.affected.contains(&version)
    }

    /// Evaluates the trigger against a compilation's events.
    pub fn fires(&self, events: &[OptEvent]) -> bool {
        self.trigger.eval(&count_events(events))
    }
}

fn n(kind: OptEventKind, count: u64) -> Trigger {
    Trigger::AtLeast(kind, count)
}

fn all<const N: usize>(subs: [Trigger; N]) -> Trigger {
    Trigger::All(subs.into_iter().collect())
}

/// The paper's reported-bug population: 45 HotSpur + 14 J9 bugs, matching
/// the distributions of Tables 2–4 (validated by this module's tests).
pub fn library() -> Vec<InjectedBug> {
    let mut bugs = hotspur_bugs();
    bugs.extend(j9_bugs());
    bugs
}

/// The full armed set: the 59-bug population plus six supplementary
/// version-17 defects whose trigger shapes favour the *baseline* tools
/// (deep loop nests for Artemis, C1-tier patterns for JITFuzz) — the
/// bugs behind Table 6's Artemis/JITFuzz columns. Their ids carry the
/// `MOP-X` prefix and they are excluded from the Tables 2–4 population.
pub fn extended_library() -> Vec<InjectedBug> {
    let mut bugs = library();
    bugs.extend(table6_extras());
    bugs
}

fn table6_extras() -> Vec<InjectedBug> {
    use Component::*;
    use OptEventKind::*;
    use ReportStatus::*;
    use Version::*;

    let x = |id: &'static str, component: Component, trigger: Trigger| InjectedBug {
        id,
        family: Family::HotSpur,
        affected: vec![V17],
        component,
        kind: BugKind::Crash,
        status: InProgress,
        priority: Some(Priority::P4),
        trigger,
    };
    vec![
        // Loop-structure-heavy triggers (Artemis territory).
        x(
            "MOP-X201",
            RegisterAllocationC2,
            all([n(Unroll, 2), n(Peel, 1), n(UncommonTrap, 1)]),
        ),
        x(
            "MOP-X202",
            IdealLoopOptimizationC2,
            all([n(Peel, 2), n(Unroll, 2), n(ConstFold, 2)]),
        ),
        x(
            "MOP-X205",
            IdealLoopOptimizationC2,
            all([n(Unroll, 3), n(Peel, 2)]),
        ),
        x(
            "MOP-X206",
            IdealGraphBuildingC2,
            all([n(Peel, 2), n(UncommonTrap, 1), n(ConstFold, 2)]),
        ),
        // C1-tier triggers (JITFuzz territory: it runs without -Xcomp, so
        // warm methods pass through the client compiler).
        x(
            "MOP-X203",
            ValueMappingC1,
            all([n(AlgebraicSimplify, 3), n(ConstFold, 1)]),
        ),
        x(
            "MOP-X204",
            ValueMappingC1,
            all([n(DceRemove, 2), n(ConstFold, 2)]),
        ),
    ]
}

/// Bugs armed in a given family+version (supplementary set included).
pub fn bugs_for(family: Family, version: Version) -> Vec<InjectedBug> {
    extended_library()
        .into_iter()
        .filter(|b| b.affects(family, version))
        .collect()
}

#[allow(clippy::too_many_lines)]
fn hotspur_bugs() -> Vec<InjectedBug> {
    use Component::*;
    use OptEventKind::*;
    use Priority::*;
    use ReportStatus::*;
    use Version::*;

    let hs = |id: &'static str,
              affected: &[Version],
              component: Component,
              kind: BugKind,
              status: ReportStatus,
              priority: Priority,
              trigger: Trigger| InjectedBug {
        id,
        family: Family::HotSpur,
        affected: affected.to_vec(),
        component,
        kind,
        status,
        priority: Some(priority),
        trigger,
    };
    let crash = BugKind::Crash;
    let mis = BugKind::Miscompile;

    vec![
        // --- Global Value Numbering, C2 (10) ---
        // GvnHit counts scale with how much loop duplication feeds the
        // value-numbering scan; plain seeds reach ~7, so interaction
        // bugs keyed on GVN volume sit above that.
        hs(
            "MOP-9001",
            &[V8],
            GlobalValueNumberingC2,
            crash,
            NotBackportable,
            P4,
            all([n(GvnHit, 8), n(Unroll, 2)]),
        ),
        hs(
            "MOP-9002",
            &[V8],
            GlobalValueNumberingC2,
            crash,
            NotBackportable,
            P4,
            all([n(ConstFold, 6), n(Peel, 1), n(GvnHit, 1)]),
        ),
        hs(
            "MOP-9003",
            &[V8, V11],
            GlobalValueNumberingC2,
            crash,
            InProgress,
            P4,
            all([n(GvnHit, 1), n(AlgebraicSimplify, 3), n(Inline, 1)]),
        ),
        hs(
            "MOP-9004",
            &[V8, V17],
            GlobalValueNumberingC2,
            crash,
            InProgress,
            P3,
            all([n(GvnHit, 2), n(LockEliminate, 1)]),
        ),
        hs(
            "MOP-9005",
            &[V17, V21, Mainline],
            GlobalValueNumberingC2,
            crash,
            InProgress,
            P4,
            all([n(GvnHit, 1), n(Unswitch, 1), n(ConstFold, 2)]),
        ),
        hs(
            "MOP-9006",
            &[Mainline],
            GlobalValueNumberingC2,
            crash,
            InProgress,
            P2,
            all([n(GvnHit, 4), n(ScalarReplace, 1)]),
        ),
        hs(
            "MOP-9007",
            &[Mainline],
            GlobalValueNumberingC2,
            crash,
            Fixed,
            P4,
            all([n(AlgebraicSimplify, 4), n(Unroll, 1), n(Inline, 1)]),
        ),
        hs(
            "MOP-9008",
            &[V17],
            GlobalValueNumberingC2,
            mis(Corruption::AddBecomesSub),
            Fixed,
            P3,
            all([n(GvnHit, 2), n(StoreEliminate, 1)]),
        ),
        hs(
            "MOP-9009",
            &[V21],
            GlobalValueNumberingC2,
            crash,
            Duplicate,
            P4,
            all([n(ConstFold, 8), n(DceRemove, 2)]),
        ),
        hs(
            "MOP-9010",
            &[V17, V21, Mainline],
            GlobalValueNumberingC2,
            crash,
            InProgress,
            P4,
            all([n(GvnHit, 2), n(AutoboxEliminate, 1)]),
        ),
        // --- Ideal Loop Optimization, C2 (7) ---
        hs(
            "MOP-9011",
            &[V8],
            IdealLoopOptimizationC2,
            crash,
            NotBackportable,
            P4,
            all([n(Unroll, 2), n(Peel, 2)]),
        ),
        hs(
            "MOP-9012",
            &[V8],
            IdealLoopOptimizationC2,
            crash,
            NotBackportable,
            P4,
            all([n(Unswitch, 2), n(Unroll, 1)]),
        ),
        hs(
            "MOP-9013",
            &[V8, V11],
            IdealLoopOptimizationC2,
            crash,
            InProgress,
            P3,
            all([n(Peel, 2), n(Unswitch, 1), n(Inline, 1)]),
        ),
        hs(
            "MOP-9014",
            &[V17, V21, Mainline],
            IdealLoopOptimizationC2,
            crash,
            InProgress,
            P3,
            all([n(Unroll, 3), n(NestedLock, 1)]),
        ),
        hs(
            "MOP-9015",
            &[Mainline],
            IdealLoopOptimizationC2,
            crash,
            InProgress,
            P2,
            all([n(Unroll, 2), n(Deopt, 1), n(UncommonTrap, 2)]),
        ),
        hs(
            "MOP-9016",
            &[V21],
            IdealLoopOptimizationC2,
            crash,
            Fixed,
            P4,
            all([n(Peel, 3), n(DceRemove, 1)]),
        ),
        hs(
            "MOP-9017",
            &[V8, V17],
            IdealLoopOptimizationC2,
            crash,
            Duplicate,
            P4,
            all([n(Unroll, 2), n(Unswitch, 1), n(ConstFold, 1)]),
        ),
        // --- Code Generation, C2 (7) ---
        hs(
            "MOP-9018",
            &[V8],
            CodeGenerationC2,
            crash,
            NotBackportable,
            P4,
            all([n(StoreEliminate, 2), n(Unroll, 1)]),
        ),
        hs(
            "MOP-9019",
            &[V8],
            CodeGenerationC2,
            crash,
            NotBackportable,
            P4,
            all([n(Inline, 2), n(StoreEliminate, 1), n(GvnHit, 1)]),
        ),
        hs(
            "MOP-9020",
            &[V8, V11],
            CodeGenerationC2,
            mis(Corruption::NegateFirstGuard),
            InProgress,
            P4,
            all([n(AutoboxEliminate, 2), n(Unroll, 1)]),
        ),
        hs(
            "MOP-9021",
            &[V17, V21, Mainline],
            CodeGenerationC2,
            crash,
            InProgress,
            P3,
            all([n(StoreEliminate, 1), n(LockCoarsen, 1)]),
        ),
        hs(
            "MOP-9022",
            &[Mainline],
            CodeGenerationC2,
            mis(Corruption::DropLastStore),
            InProgress,
            P3,
            all([n(StoreEliminate, 2), n(Peel, 1)]),
        ),
        hs(
            "MOP-9023",
            &[V17],
            CodeGenerationC2,
            crash,
            Fixed,
            P4,
            all([n(Inline, 3), n(Unroll, 2)]),
        ),
        hs(
            "MOP-9024",
            &[V21],
            CodeGenerationC2,
            crash,
            Duplicate,
            P4,
            all([n(StoreEliminate, 1), n(DceRemove, 2), n(ConstFold, 1)]),
        ),
        // --- Ideal Graph Building, C2 (5) ---
        hs(
            "MOP-9025",
            &[V8],
            IdealGraphBuildingC2,
            crash,
            NotBackportable,
            P4,
            all([n(Inline, 2), n(NestedLock, 1)]),
        ),
        hs(
            "MOP-9026",
            &[V8],
            IdealGraphBuildingC2,
            crash,
            NotBackportable,
            P4,
            all([n(InlineReject, 1), n(Inline, 2)]),
        ),
        hs(
            "MOP-9027",
            &[V8, V11],
            IdealGraphBuildingC2,
            crash,
            InProgress,
            P3,
            all([n(Inline, 2), n(EaArgEscape, 1), n(Peel, 1)]),
        ),
        hs(
            "MOP-9028",
            &[V8, V17],
            IdealGraphBuildingC2,
            crash,
            Duplicate,
            P4,
            all([n(Inline, 1), n(Unswitch, 1), n(GvnHit, 1)]),
        ),
        hs(
            "MOP-9029",
            &[V17, V21, Mainline],
            IdealGraphBuildingC2,
            crash,
            Fixed,
            P3,
            all([n(Inline, 4), n(UncommonTrap, 1)]),
        ),
        // --- Macro Expansion, C2 (4) ---
        // The analogue of JDK-8312744 (the paper's motivating crash): lock
        // coarsening after loop unrolling over a nested monitor region.
        hs(
            "MOP-8312744",
            &[Mainline],
            MacroExpansionC2,
            crash,
            InProgress,
            P3,
            all([n(LockCoarsen, 1), n(Unroll, 2), n(NestedLock, 1)]),
        ),
        // The analogue of JDK-8324174: three nested locks (a 3-deep nest
        // produces two nested-monitor reports: depths 3 and 2).
        hs(
            "MOP-8324174",
            &[V17, V21, Mainline],
            MacroExpansionC2,
            crash,
            InProgress,
            P3,
            all([n(NestedLock, 2), n(LockEliminate, 1)]),
        ),
        hs(
            "MOP-9032",
            &[V8],
            MacroExpansionC2,
            crash,
            NotBackportable,
            P4,
            all([n(ScalarReplace, 1), n(LockEliminate, 1), n(Unroll, 1)]),
        ),
        // The analogue of JDK-8322743: loops + lock nesting + inlining +
        // escape analysis + autobox + deopt interplay.
        hs(
            "MOP-8322743",
            &[Mainline],
            MacroExpansionC2,
            crash,
            InProgress,
            P3,
            all([
                n(EaNoEscape, 1),
                n(LockEliminate, 1),
                n(AutoboxEliminate, 1),
                n(Deopt, 1),
            ]),
        ),
        // --- Conditional Constant Propagation, C2 (1) ---
        hs(
            "MOP-9034",
            &[V11],
            CondConstPropagationC2,
            mis(Corruption::NegateFirstGuard),
            InProgress,
            P3,
            all([n(ConstFold, 3), n(Unswitch, 1)]),
        ),
        // --- Runtime (4) ---
        hs(
            "MOP-9035",
            &[V8],
            HotSpurRuntime,
            crash,
            NotBackportable,
            P4,
            all([n(Deopt, 2), n(Inline, 1)]),
        ),
        hs(
            "MOP-9036",
            &[V8, V11],
            HotSpurRuntime,
            crash,
            NotBackportable,
            P4,
            all([n(UncommonTrap, 2), n(LockEliminate, 1)]),
        ),
        hs(
            "MOP-9037",
            &[V8],
            HotSpurRuntime,
            crash,
            InProgress,
            P3,
            all([n(Deopt, 1), n(NestedLock, 2)]),
        ),
        hs(
            "MOP-9038",
            &[V8, V11],
            HotSpurRuntime,
            mis(Corruption::OffByOneLoop),
            InProgress,
            P4,
            all([n(UncommonTrap, 1), n(Peel, 2)]),
        ),
        // --- Other JIT components (7) ---
        hs(
            "MOP-9039",
            &[V8],
            OtherJit,
            crash,
            NotBackportable,
            P4,
            all([n(AutoboxEliminate, 1), n(EaNoEscape, 2)]),
        ),
        hs(
            "MOP-9040",
            &[V8, V11],
            OtherJit,
            crash,
            NotBackportable,
            P4,
            all([n(EaArgEscape, 2), n(Unroll, 1)]),
        ),
        hs(
            "MOP-9041",
            &[V8],
            OtherJit,
            crash,
            Fixed,
            P4,
            all([n(AutoboxEliminate, 2), n(StoreEliminate, 1)]),
        ),
        hs(
            "MOP-9042",
            &[V11],
            OtherJit,
            mis(Corruption::AddBecomesSub),
            InProgress,
            P4,
            all([n(Dereflect, 1), n(Inline, 1)]),
        ),
        hs(
            "MOP-9043",
            &[V8, V17],
            OtherJit,
            crash,
            Fixed,
            P4,
            all([n(ScalarReplace, 2), n(DceRemove, 1)]),
        ),
        hs(
            "MOP-9044",
            &[V8, V17],
            OtherJit,
            crash,
            Duplicate,
            P4,
            all([n(EaNoEscape, 3), n(GvnHit, 1)]),
        ),
        hs(
            "MOP-9045",
            &[V8],
            OtherJit,
            crash,
            NotBackportable,
            P4,
            all([n(AlgebraicSimplify, 5), n(Peel, 1), n(StoreEliminate, 1)]),
        ),
    ]
}

fn j9_bugs() -> Vec<InjectedBug> {
    use Component::*;
    use OptEventKind::*;
    use ReportStatus::*;
    use Version::*;

    let j9 = |id: &'static str,
              affected: &[Version],
              component: Component,
              kind: BugKind,
              status: ReportStatus,
              trigger: Trigger| InjectedBug {
        id,
        family: Family::J9,
        affected: affected.to_vec(),
        component,
        kind,
        status,
        priority: None,
        trigger,
    };
    let crash = BugKind::Crash;
    let mis = BugKind::Miscompile;

    vec![
        j9(
            "MOP-J101",
            &[V8, V11, V17],
            RedundancyElimination,
            mis(Corruption::DropLastStore),
            InProgress,
            all([n(StoreEliminate, 2), n(GvnHit, 1)]),
        ),
        j9(
            "MOP-J102",
            &[V11, V17],
            RedundancyElimination,
            mis(Corruption::DropLastStore),
            InProgress,
            all([n(StoreEliminate, 1), n(DceRemove, 2)]),
        ),
        j9(
            "MOP-J103",
            &[V17],
            RedundancyElimination,
            mis(Corruption::AddBecomesSub),
            Fixed,
            all([n(StoreEliminate, 2), n(Unroll, 1)]),
        ),
        j9(
            "MOP-J104",
            &[V8],
            RedundancyElimination,
            mis(Corruption::DropLastStore),
            InProgress,
            all([n(StoreEliminate, 3)]),
        ),
        j9(
            "MOP-J105",
            &[V8, V11],
            LoopOptimization,
            crash,
            InProgress,
            all([n(Unroll, 2), n(Peel, 1), n(NestedLock, 1)]),
        ),
        j9(
            "MOP-J106",
            &[V17],
            LoopOptimization,
            mis(Corruption::OffByOneLoop),
            InProgress,
            all([n(Peel, 2), n(Unswitch, 1)]),
        ),
        j9(
            "MOP-J107",
            &[V11],
            LoopOptimization,
            mis(Corruption::OffByOneLoop),
            Fixed,
            all([n(Unroll, 3), n(ConstFold, 2)]),
        ),
        j9(
            "MOP-J108",
            &[V8, V11, V17],
            PatternRecognition,
            mis(Corruption::NegateFirstGuard),
            InProgress,
            all([n(AlgebraicSimplify, 3), n(Unswitch, 1)]),
        ),
        j9(
            "MOP-J109",
            &[V17],
            PatternRecognition,
            mis(Corruption::AddBecomesSub),
            Fixed,
            all([n(AlgebraicSimplify, 2), n(AutoboxEliminate, 1)]),
        ),
        j9(
            "MOP-J110",
            &[V8, V11, V17],
            DeadCodeElimination,
            mis(Corruption::DropLastStore),
            InProgress,
            all([n(DceRemove, 3), n(Inline, 1)]),
        ),
        j9(
            "MOP-J111",
            &[V17],
            EscapeAnalysisJ9,
            mis(Corruption::NegateFirstGuard),
            InProgress,
            all([n(EaNoEscape, 2), n(ScalarReplace, 1), n(LockEliminate, 1)]),
        ),
        j9(
            "MOP-J112",
            &[V11, V17],
            SimdSupport,
            crash,
            Duplicate,
            all([n(Unroll, 4), n(StoreEliminate, 1)]),
        ),
        j9(
            "MOP-J113",
            &[V8],
            ValuePropagation,
            mis(Corruption::NegateFirstGuard),
            Fixed,
            all([n(ConstFold, 5), n(Unswitch, 1)]),
        ),
        j9(
            "MOP-J114",
            &[V8, V11, V17],
            J9Runtime,
            mis(Corruption::OffByOneLoop),
            InProgress,
            all([n(Deopt, 1), n(UncommonTrap, 1), n(Peel, 1)]),
        ),
    ]
}

/// Applies a miscompilation's corruption to the optimized method body.
/// Returns true if the pattern was found and corrupted.
pub fn apply_corruption(method: &mut mjava::Method, corruption: Corruption) -> bool {
    use mjava::{Block, Expr, Stmt};
    match corruption {
        Corruption::DropLastStore => drop_last_store(&mut method.body),
        Corruption::AddBecomesSub => {
            let mut done = false;
            jopt::analysis::map_exprs_in_block(&mut method.body, &mut |e| {
                if done {
                    return;
                }
                if let Expr::Binary(op, _, _) = e {
                    if *op == mjava::BinOp::Add {
                        *op = mjava::BinOp::Sub;
                        done = true;
                    }
                }
            });
            done
        }
        Corruption::NegateFirstGuard => negate_first_guard(&mut method.body),
        Corruption::OffByOneLoop => {
            fn walk(block: &mut Block) -> bool {
                for stmt in &mut block.0 {
                    let hit = match stmt {
                        Stmt::For { cond, body, .. } => {
                            if let Expr::Binary(op, _, _) = cond {
                                if *op == mjava::BinOp::Lt {
                                    *op = mjava::BinOp::Le;
                                    return true;
                                }
                            }
                            walk(body)
                        }
                        Stmt::While { body, .. } | Stmt::Sync { body, .. } | Stmt::Block(body) => {
                            walk(body)
                        }
                        Stmt::If { then_b, else_b, .. } => {
                            walk(then_b) || else_b.as_mut().is_some_and(walk)
                        }
                        _ => false,
                    };
                    if hit {
                        return true;
                    }
                }
                false
            }
            walk(&mut method.body)
        }
    }
}

fn drop_last_store(block: &mut mjava::Block) -> bool {
    use mjava::Stmt;
    // Depth-first from the end: remove the last assignment statement.
    for i in (0..block.0.len()).rev() {
        let removed = match &mut block.0[i] {
            Stmt::Assign { .. } => {
                block.0.remove(i);
                return true;
            }
            Stmt::If { then_b, else_b, .. } => {
                if let Some(e) = else_b {
                    if drop_last_store(e) {
                        return true;
                    }
                }
                drop_last_store(then_b)
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } | Stmt::Sync { body, .. } => {
                drop_last_store(body)
            }
            Stmt::Block(b) => drop_last_store(b),
            _ => false,
        };
        if removed {
            return true;
        }
    }
    false
}

fn negate_first_guard(block: &mut mjava::Block) -> bool {
    use mjava::{Expr, Stmt, UnOp};
    for stmt in &mut block.0 {
        let negated = match stmt {
            Stmt::If { cond, .. } => {
                let old = cond.clone();
                *cond = Expr::Unary(UnOp::Not, Box::new(old));
                true
            }
            Stmt::While { body, .. }
            | Stmt::For { body, .. }
            | Stmt::Sync { body, .. }
            | Stmt::Block(body) => negate_first_guard(body),
            _ => false,
        };
        if negated {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Component;
    use crate::spec::{Family, Version};

    #[test]
    fn library_has_59_bugs_matching_table2() {
        let lib = library();
        assert_eq!(lib.len(), 59);
        let hotspur: Vec<_> = lib.iter().filter(|b| b.family == Family::HotSpur).collect();
        let j9: Vec<_> = lib.iter().filter(|b| b.family == Family::J9).collect();
        assert_eq!(hotspur.len(), 45);
        assert_eq!(j9.len(), 14);

        let status =
            |bugs: &[&InjectedBug], s: ReportStatus| bugs.iter().filter(|b| b.status == s).count();
        // Table 2, OpenJDK column.
        assert_eq!(status(&hotspur, ReportStatus::InProgress), 19);
        assert_eq!(status(&hotspur, ReportStatus::Fixed), 7);
        assert_eq!(status(&hotspur, ReportStatus::Duplicate), 5);
        assert_eq!(status(&hotspur, ReportStatus::NotBackportable), 14);
        // Table 2, OpenJ9 column.
        assert_eq!(status(&j9, ReportStatus::InProgress), 9);
        assert_eq!(status(&j9, ReportStatus::Fixed), 4);
        assert_eq!(status(&j9, ReportStatus::Duplicate), 1);
        assert_eq!(status(&j9, ReportStatus::NotBackportable), 0);

        // Crash/miscompile split.
        let crashes = |bugs: &[&InjectedBug]| {
            bugs.iter()
                .filter(|b| matches!(b.kind, BugKind::Crash))
                .count()
        };
        assert_eq!(crashes(&hotspur), 39);
        assert_eq!(crashes(&j9), 2);
    }

    #[test]
    fn version_distribution_matches_table3() {
        let lib = library();
        let per_version = |v: Version| {
            lib.iter()
                .filter(|b| b.family == Family::HotSpur && b.affected.contains(&v))
                .count()
        };
        assert_eq!(per_version(Version::V8), 26);
        assert_eq!(per_version(Version::V11), 9);
        assert_eq!(per_version(Version::V17), 13);
        assert_eq!(per_version(Version::V21), 9);
        assert_eq!(per_version(Version::Mainline), 12);
        // Not-backportable: 12 in V8-only, 2 reaching V11.
        let nb: Vec<_> = lib
            .iter()
            .filter(|b| b.status == ReportStatus::NotBackportable)
            .collect();
        assert_eq!(nb.len(), 14);
        assert_eq!(
            nb.iter()
                .filter(|b| b.affected.contains(&Version::V11))
                .count(),
            2
        );
    }

    #[test]
    fn component_distribution_matches_table4() {
        let lib = library();
        let per = |c: Component| lib.iter().filter(|b| b.component == c).count();
        assert_eq!(per(Component::GlobalValueNumberingC2), 10);
        assert_eq!(per(Component::IdealLoopOptimizationC2), 7);
        assert_eq!(per(Component::CodeGenerationC2), 7);
        assert_eq!(per(Component::IdealGraphBuildingC2), 5);
        assert_eq!(per(Component::MacroExpansionC2), 4);
        assert_eq!(per(Component::CondConstPropagationC2), 1);
        assert_eq!(per(Component::HotSpurRuntime), 4);
        assert_eq!(per(Component::OtherJit), 7);
        assert_eq!(per(Component::RedundancyElimination), 4);
        assert_eq!(per(Component::LoopOptimization), 3);
        assert_eq!(per(Component::PatternRecognition), 2);
        assert_eq!(per(Component::DeadCodeElimination), 1);
        assert_eq!(per(Component::EscapeAnalysisJ9), 1);
        assert_eq!(per(Component::SimdSupport), 1);
        assert_eq!(per(Component::ValuePropagation), 1);
        assert_eq!(per(Component::J9Runtime), 1);
    }

    #[test]
    fn priorities_match_paper() {
        let lib = library();
        let per = |p: Priority| lib.iter().filter(|b| b.priority == Some(p)).count();
        assert_eq!(per(Priority::P2), 2);
        assert_eq!(per(Priority::P3), 13);
        assert_eq!(per(Priority::P4), 30);
        assert!(lib
            .iter()
            .filter(|b| b.family == Family::J9)
            .all(|b| b.priority.is_none()));
    }

    #[test]
    fn bug_ids_are_unique() {
        let lib = library();
        let mut ids: Vec<_> = lib.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 59);
    }

    #[test]
    fn every_trigger_requires_interaction_or_high_frequency() {
        // Core claim: each bug needs either several distinct behaviours or
        // an unusually high count of one (e.g. three nested locks).
        for bug in library() {
            let kinds = bug.trigger.kinds();
            let max_count = max_required(&bug.trigger);
            assert!(
                kinds.len() >= 2 || max_count >= 3,
                "{} is too easy: {:?}",
                bug.id,
                bug.trigger
            );
        }
    }

    fn max_required(t: &Trigger) -> u64 {
        match t {
            Trigger::AtLeast(_, n) => *n,
            Trigger::All(s) | Trigger::Any(s) => s.iter().map(max_required).max().unwrap_or(0),
        }
    }

    #[test]
    fn trigger_eval_semantics() {
        use jopt::OptEventKind::*;
        let t = all([n(Unroll, 2), n(LockCoarsen, 1)]);
        let mut counts = HashMap::new();
        counts.insert(Unroll, 2);
        assert!(!t.eval(&counts));
        counts.insert(LockCoarsen, 1);
        assert!(t.eval(&counts));
        let any = Trigger::Any(vec![n(Peel, 1), n(Unroll, 1)]);
        assert!(any.eval(&counts));
    }

    #[test]
    fn corruptions_change_programs() {
        let p = mjava::parse(
            r#"
            class T {
                static int s;
                static void main() {
                    if (s < 3) { s = 1 + 2; }
                    for (int i = 0; i < 4; i++) { s = s + i; }
                    System.out.println(s);
                }
            }
            "#,
        )
        .unwrap();
        for c in [
            Corruption::DropLastStore,
            Corruption::AddBecomesSub,
            Corruption::NegateFirstGuard,
            Corruption::OffByOneLoop,
        ] {
            let mut m = p.classes[0].methods[0].clone();
            assert!(apply_corruption(&mut m, c), "{c:?} found no pattern");
            assert_ne!(m.body, p.classes[0].methods[0].body, "{c:?} was a no-op");
        }
    }

    #[test]
    fn bugs_for_filters_by_family_and_version() {
        let v8 = bugs_for(Family::HotSpur, Version::V8);
        assert_eq!(v8.len(), 26);
        let j9_17 = bugs_for(Family::J9, Version::V17);
        assert!(j9_17.iter().all(|b| b.family == Family::J9));
        assert!(!j9_17.is_empty());
    }
}
