//! Block-coverage accounting over the four JVM areas.
//!
//! The substitute for the paper's `--enable-native-coverage` builds: every
//! optimizer phase and runtime facility owns a range of block ids; an
//! execution marks the blocks it touches, and campaigns union the maps.

use crate::component::Area;
use std::collections::HashSet;

/// Coverage over the four areas (C1, C2, Runtime, GC).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    c1: HashSet<u32>,
    c2: HashSet<u32>,
    runtime: HashSet<u32>,
    gc: HashSet<u32>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Marks one block of an area.
    pub fn mark(&mut self, area: Area, block: u32) {
        self.set_mut(area).insert(block % area_cap(area));
    }

    /// Marks many blocks of an area.
    pub fn mark_all(&mut self, area: Area, blocks: impl IntoIterator<Item = u32>) {
        for b in blocks {
            self.mark(area, b);
        }
    }

    /// Unions another map into this one.
    pub fn merge(&mut self, other: &CoverageMap) {
        self.c1.extend(&other.c1);
        self.c2.extend(&other.c2);
        self.runtime.extend(&other.runtime);
        self.gc.extend(&other.gc);
    }

    /// Number of covered blocks in an area.
    pub fn covered(&self, area: Area) -> u32 {
        self.set(area).len() as u32
    }

    /// Covered fraction of an area, in percent.
    pub fn percent(&self, area: Area) -> f64 {
        100.0 * self.covered(area) as f64 / area.total_blocks() as f64
    }

    /// Average percentage over the four areas — the paper's "Summary" bar.
    pub fn summary_percent(&self) -> f64 {
        Area::ALL.iter().map(|&a| self.percent(a)).sum::<f64>() / Area::ALL.len() as f64
    }

    /// The covered blocks of an area in ascending order — a stable
    /// enumeration for serialization (journal checkpoints).
    pub fn blocks(&self, area: Area) -> Vec<u32> {
        let mut v: Vec<u32> = self.set(area).iter().copied().collect();
        v.sort_unstable();
        v
    }

    fn set(&self, area: Area) -> &HashSet<u32> {
        match area {
            Area::C1 => &self.c1,
            Area::C2 => &self.c2,
            Area::Runtime => &self.runtime,
            Area::Gc => &self.gc,
        }
    }

    fn set_mut(&mut self, area: Area) -> &mut HashSet<u32> {
        match area {
            Area::C1 => &mut self.c1,
            Area::C2 => &mut self.c2,
            Area::Runtime => &mut self.runtime,
            Area::Gc => &mut self.gc,
        }
    }
}

/// Blocks are clamped into the area's instrumented range so percentages
/// never exceed 100.
fn area_cap(area: Area) -> u32 {
    area.total_blocks()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_percent() {
        let mut m = CoverageMap::new();
        m.mark(Area::Runtime, 0);
        m.mark(Area::Runtime, 1);
        m.mark(Area::Runtime, 1); // duplicate
        assert_eq!(m.covered(Area::Runtime), 2);
        let expected = 100.0 * 2.0 / Area::Runtime.total_blocks() as f64;
        assert!((m.percent(Area::Runtime) - expected).abs() < 1e-9);
    }

    #[test]
    fn blocks_wrap_into_range() {
        let mut m = CoverageMap::new();
        m.mark(Area::Gc, Area::Gc.total_blocks() + 5);
        m.mark(Area::Gc, 5);
        assert_eq!(m.covered(Area::Gc), 1);
    }

    #[test]
    fn merge_unions() {
        let mut a = CoverageMap::new();
        a.mark(Area::C2, 1);
        let mut b = CoverageMap::new();
        b.mark(Area::C2, 2);
        b.mark(Area::C1, 3);
        a.merge(&b);
        assert_eq!(a.covered(Area::C2), 2);
        assert_eq!(a.covered(Area::C1), 1);
    }

    #[test]
    fn blocks_enumerates_sorted() {
        let mut m = CoverageMap::new();
        m.mark(Area::C2, 9);
        m.mark(Area::C2, 2);
        m.mark(Area::C2, 5);
        assert_eq!(m.blocks(Area::C2), vec![2, 5, 9]);
        let mut copy = CoverageMap::new();
        for a in Area::ALL {
            copy.mark_all(a, m.blocks(a));
        }
        assert_eq!(copy, m);
    }

    #[test]
    fn summary_averages_areas() {
        let mut m = CoverageMap::new();
        m.mark_all(Area::Gc, 0..Area::Gc.total_blocks());
        assert!((m.percent(Area::Gc) - 100.0).abs() < 1e-9);
        assert!((m.summary_percent() - 25.0).abs() < 1e-9);
    }
}
