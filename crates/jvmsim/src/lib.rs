//! # jvmsim — simulated JVM implementations
//!
//! The reproduction's stand-in for production JVMs: two families
//! ([`Family::HotSpur`] ≈ HotSpot/OpenJDK across LTS versions 8–21 plus
//! the mainline, [`Family::J9`] ≈ OpenJ9) executing MiniJava with tiered
//! compilation — interpret ([`jexec`]), profile, JIT-compile hot methods
//! ([`jopt`]), re-run.
//!
//! What makes these JVMs *testable* is the [`bugs`] module: a library of
//! 59 injected defects matching the paper's reported-bug distributions
//! (Tables 2–4), each firing only when one method compilation performs a
//! *conjunction* of optimization behaviours — the optimization
//! interactions MopFuzzer maximizes. Crash bugs abort with an
//! `hs_err`-style [`CrashReport`]; miscompile bugs corrupt the emitted
//! code for the differential oracle to find.
//!
//! # Examples
//!
//! ```
//! use jvmsim::{run_jvm, JvmSpec, RunOptions, Version};
//!
//! let program = mjava::parse(r#"
//!     class T {
//!         static int s;
//!         static void main() {
//!             for (int i = 0; i < 2_000; i++) { s = s + i % 5; }
//!             System.out.println(s);
//!         }
//!     }
//! "#).unwrap();
//! let run = run_jvm(&program, &JvmSpec::hotspur(Version::V17), &RunOptions::fuzzing());
//! assert_eq!(run.observable().unwrap(), vec!["4000"]);
//! assert!(!run.log.is_empty()); // profile data under -XX:+Trace* flags
//! ```

pub mod bugs;
pub mod component;
pub mod coverage;
pub mod fault;
pub mod run;
pub mod spec;

pub use bugs::{BugKind, Corruption, InjectedBug, Priority, ReportStatus, Trigger};
pub use component::{Area, Component};
pub use coverage::CoverageMap;
pub use fault::{FaultPlan, VmFault};
pub use run::{run_jvm, run_jvm_with_image, CacheLog, CrashReport, JvmRun, RunOptions, Verdict};
pub use spec::{Family, JvmSpec, Version};
