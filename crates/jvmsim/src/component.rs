//! JIT-component taxonomy for bug attribution and coverage accounting.
//!
//! The component lists mirror the paper's Table 4 (HotSpot components on
//! the left, OpenJ9 on the right) plus the four coarse coverage components
//! of Figure 2 (C1, C2, Runtime, GC).

use std::fmt;

/// A coarse JVM area used for coverage accounting (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Area {
    /// The client compiler tier.
    C1,
    /// The server compiler tier.
    C2,
    /// Interpreter + VM runtime.
    Runtime,
    /// Garbage collection.
    Gc,
}

impl Area {
    /// All four areas in display order.
    pub const ALL: [Area; 4] = [Area::C1, Area::C2, Area::Runtime, Area::Gc];

    /// Total instrumented blocks of the area (the denominator of the
    /// coverage percentage).
    pub fn total_blocks(&self) -> u32 {
        match self {
            Area::C1 => 320,
            Area::C2 => 1000,
            Area::Runtime => 96,
            Area::Gc => 72,
        }
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Area::C1 => "C1",
            Area::C2 => "C2",
            Area::Runtime => "Runtime",
            Area::Gc => "GC",
        };
        write!(f, "{s}")
    }
}

/// A fine-grained JIT component, the unit of bug attribution (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    // HotSpur (HotSpot-analogue) components.
    GlobalValueNumberingC2,
    IdealLoopOptimizationC2,
    CodeGenerationC2,
    IdealGraphBuildingC2,
    MacroExpansionC2,
    CondConstPropagationC2,
    RegisterAllocationC2,
    ValueMappingC1,
    HotSpurRuntime,
    OtherJit,
    // J9 components.
    RedundancyElimination,
    LoopOptimization,
    PatternRecognition,
    DeadCodeElimination,
    EscapeAnalysisJ9,
    SimdSupport,
    ValuePropagation,
    J9Runtime,
}

impl Component {
    /// All components in declaration order. Display labels are not unique
    /// (both runtimes are labelled "Runtime"), so serialization code
    /// round-trips components through their `Debug` names instead.
    pub const ALL: [Component; 18] = [
        Component::GlobalValueNumberingC2,
        Component::IdealLoopOptimizationC2,
        Component::CodeGenerationC2,
        Component::IdealGraphBuildingC2,
        Component::MacroExpansionC2,
        Component::CondConstPropagationC2,
        Component::RegisterAllocationC2,
        Component::ValueMappingC1,
        Component::HotSpurRuntime,
        Component::OtherJit,
        Component::RedundancyElimination,
        Component::LoopOptimization,
        Component::PatternRecognition,
        Component::DeadCodeElimination,
        Component::EscapeAnalysisJ9,
        Component::SimdSupport,
        Component::ValuePropagation,
        Component::J9Runtime,
    ];

    /// Inverse of the `Debug` formatting, for journal round-trips.
    pub fn from_debug_name(name: &str) -> Option<Component> {
        Component::ALL
            .into_iter()
            .find(|c| format!("{c:?}") == name)
    }

    /// Paper-style display name.
    pub fn label(&self) -> &'static str {
        match self {
            Component::GlobalValueNumberingC2 => "Global Value Number., C2",
            Component::IdealLoopOptimizationC2 => "Ideal Loop Optimizat., C2",
            Component::CodeGenerationC2 => "Code Generation, C2",
            Component::IdealGraphBuildingC2 => "Ideal Graph Building, C2",
            Component::MacroExpansionC2 => "Macro Expansion, C2",
            Component::CondConstPropagationC2 => "Cond. Const. Prop., C2",
            Component::RegisterAllocationC2 => "Register Allocation, C2",
            Component::ValueMappingC1 => "Value Mapping, C1",
            Component::HotSpurRuntime => "Runtime",
            Component::OtherJit => "Other JIT Compone.",
            Component::RedundancyElimination => "Redundancy Elimination",
            Component::LoopOptimization => "Loop Optimization",
            Component::PatternRecognition => "Pattern Recognition",
            Component::DeadCodeElimination => "Dead Code Elimination",
            Component::EscapeAnalysisJ9 => "Escape Analysis",
            Component::SimdSupport => "SIMD Support",
            Component::ValuePropagation => "Value propagation",
            Component::J9Runtime => "Runtime",
        }
    }

    /// True for components of the HotSpur family.
    pub fn is_hotspur(&self) -> bool {
        matches!(
            self,
            Component::GlobalValueNumberingC2
                | Component::IdealLoopOptimizationC2
                | Component::CodeGenerationC2
                | Component::IdealGraphBuildingC2
                | Component::MacroExpansionC2
                | Component::CondConstPropagationC2
                | Component::RegisterAllocationC2
                | Component::ValueMappingC1
                | Component::HotSpurRuntime
                | Component::OtherJit
        )
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_have_positive_totals() {
        for a in Area::ALL {
            assert!(a.total_blocks() > 0, "{a}");
        }
    }

    #[test]
    fn component_family_split() {
        assert!(Component::MacroExpansionC2.is_hotspur());
        assert!(!Component::RedundancyElimination.is_hotspur());
    }

    #[test]
    fn debug_names_roundtrip() {
        for c in Component::ALL {
            assert_eq!(Component::from_debug_name(&format!("{c:?}")), Some(c));
        }
        assert_eq!(Component::from_debug_name("NotAComponent"), None);
    }

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(
            Component::GlobalValueNumberingC2.label(),
            "Global Value Number., C2"
        );
        assert_eq!(Component::J9Runtime.label(), "Runtime");
    }
}
