//! MopFuzzer variants for the ablation study (paper §4.4).

use std::fmt;

/// Which configuration of MopFuzzer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The full system: fixed mutation point + profile-data guidance.
    Full,
    /// MopFuzzer_g: mutators chosen uniformly at random (no profile-data
    /// guidance).
    NoGuidance,
    /// MopFuzzer_r: a fresh random statement is mutated each iteration
    /// (no fixed mutation point), so inserted code neither nests nor
    /// adjoins previous insertions.
    RandomMp,
}

impl Variant {
    /// All variants in display order.
    pub const ALL: [Variant; 3] = [Variant::Full, Variant::NoGuidance, Variant::RandomMp];
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Variant::Full => write!(f, "MopFuzzer"),
            Variant::NoGuidance => write!(f, "MopFuzzer_g"),
            Variant::RandomMp => write!(f, "MopFuzzer_r"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_match_paper_names() {
        assert_eq!(Variant::Full.to_string(), "MopFuzzer");
        assert_eq!(Variant::NoGuidance.to_string(), "MopFuzzer_g");
        assert_eq!(Variant::RandomMp.to_string(), "MopFuzzer_r");
        assert_eq!(Variant::ALL.len(), 3);
    }
}
