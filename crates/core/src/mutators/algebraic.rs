//! AlgebraicSimplification-evoke: wraps the MP's first `int` expression in
//! a value-preserving algebraic identity (`e * 1 + 0`, `e ^ 0`, `e << 0`,
//! `e | 0`, `e / 1`) for the simplifier to fold away.

use super::util;
use super::{Mutation, Mutator, MutatorKind};
use mjava::{BinOp, Expr, Program, StmtPath};
use rand::rngs::SmallRng;
use rand::Rng as _;

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlgebraicSimplificationEvoke;

fn identity(e: Expr, choice: u8) -> Expr {
    match choice {
        0 => Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, e, Expr::Int(1)),
            Expr::Int(0),
        ),
        1 => Expr::bin(BinOp::BitXor, e, Expr::Int(0)),
        2 => Expr::bin(BinOp::Shl, e, Expr::Int(0)),
        3 => Expr::bin(BinOp::BitOr, e, Expr::Int(0)),
        _ => Expr::bin(BinOp::Div, e, Expr::Int(1)),
    }
}

impl Mutator for AlgebraicSimplificationEvoke {
    fn kind(&self) -> MutatorKind {
        MutatorKind::AlgebraicSimplification
    }

    fn is_applicable(&self, program: &Program, mp: &StmtPath) -> bool {
        util::has_int_expr(program, mp)
    }

    fn apply(&self, program: &Program, mp: &StmtPath, rng: &mut SmallRng) -> Option<Mutation> {
        let mut stmt = util::stmt_at(program, mp)?;
        let choice = rng.gen_range(0..5u8);
        if !util::rewrite_first_int_expr(program, mp, &mut stmt, |e| identity(e, choice)) {
            return None;
        }
        let mut mutant = program.clone();
        if !mjava::path::replace_stmt(&mut mutant, mp, vec![stmt]) {
            return None;
        }
        Some(Mutation {
            program: mutant,
            mp: mp.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{apply_checked, program_and_mp};
    use super::*;
    use rand::SeedableRng as _;

    const SRC: &str = r#"
        class T {
            static void main() {
                int a = 6;
                int m = a * 7;
                System.out.println(m);
            }
        }
    "#;

    #[test]
    fn wraps_expression_value_preserving() {
        let (program, mp) = program_and_mp(SRC, "int m = a * 7;");
        // Try every identity variant deterministically.
        for seed in 0..10u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mutation = AlgebraicSimplificationEvoke
                .apply(&program, &mp, &mut rng)
                .unwrap();
            let out = jexec::run_program(&mutation.program, &jexec::ExecConfig::default()).unwrap();
            assert_eq!(out.output, vec!["42"], "identity changed value");
        }
    }

    #[test]
    fn evokes_simplification_on_jvm() {
        let (program, mp) = program_and_mp(SRC, "int m = a * 7;");
        let mutation = apply_checked(&AlgebraicSimplificationEvoke, &program, &mp);
        let run = jvmsim::run_jvm(
            &mutation.program,
            &jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs(),
            &jvmsim::RunOptions::fuzzing(),
        );
        assert!(
            run.events
                .iter()
                .any(|e| e.kind == jopt::OptEventKind::AlgebraicSimplify),
            "no simplification events: {:?}",
            run.events
        );
    }

    #[test]
    fn not_applicable_without_int_expr() {
        let (program, mp) = program_and_mp(
            "class T { static void main() { boolean b = false; System.out.println(b); } }",
            "boolean b = false;",
        );
        assert!(!AlgebraicSimplificationEvoke.is_applicable(&program, &mp));
    }
}
