//! LoopUnrolling-evoke (paper Table 1): inserts a counted loop wrapping a
//! copy of the MP *before* the MP. The copy is not used as the new MP, so
//! repeated applications produce adjacent — not nested — loops (the
//! paper's performance consideration).

use super::util;
use super::{Mutation, Mutator, MutatorKind};
use mjava::{BinOp, Block, Expr, Program, Stmt, StmtPath, Type};
use rand::rngs::SmallRng;

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopUnrollingEvoke;

impl Mutator for LoopUnrollingEvoke {
    fn kind(&self) -> MutatorKind {
        MutatorKind::LoopUnrolling
    }

    fn is_applicable(&self, program: &Program, mp: &StmtPath) -> bool {
        mjava::path::stmt_at(program, mp).is_some()
    }

    fn apply(&self, program: &Program, mp: &StmtPath, rng: &mut SmallRng) -> Option<Mutation> {
        let stmt = util::stmt_at(program, mp)?;
        let mut mutant = program.clone();
        let trip = util::loop_trip(rng);
        let var = mutant.fresh_name("i");
        // A copied `return` would exit the method on iteration one; loop
        // with an empty body instead (still a loop to unroll).
        let body = if matches!(stmt, Stmt::Return(_)) {
            Block::new()
        } else {
            Block(vec![stmt])
        };
        let loop_stmt = Stmt::For {
            init: Some(Box::new(Stmt::Decl {
                name: var.clone(),
                ty: Type::Int,
                init: Some(Expr::Int(0)),
            })),
            cond: Expr::bin(BinOp::Lt, Expr::var(var.clone()), Expr::Int(trip)),
            update: Some(Box::new(Stmt::Assign {
                target: mjava::LValue::Var(var.clone()),
                value: Expr::bin(BinOp::Add, Expr::var(var), Expr::Int(1)),
            })),
            body,
        };
        let new_mp = mjava::path::insert_before(&mut mutant, mp, vec![loop_stmt])?;
        Some(Mutation {
            program: mutant,
            mp: new_mp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{apply_checked, program_and_mp};
    use super::*;

    const SRC: &str = r#"
        class T {
            int f;
            static void main() {
                T t = new T();
                t.foo(3);
                System.out.println(t.f);
            }
            void foo(int i) { f = f + i; }
        }
    "#;

    #[test]
    fn inserts_loop_before_mp() {
        let (program, mp) = program_and_mp(SRC, "t.foo(3);");
        let mutation = apply_checked(&LoopUnrollingEvoke, &program, &mp);
        let printed = mjava::print(&mutation.program);
        assert!(printed.contains("for (int i0 = 0;"), "{printed}");
        // The MP itself is still the original call, after the loop.
        let stmt = mjava::path::stmt_at(&mutation.program, &mutation.mp).unwrap();
        assert_eq!(mjava::print_stmt(stmt).trim(), "t.foo(3);");
    }

    #[test]
    fn repeated_application_produces_adjacent_loops() {
        let (program, mp) = program_and_mp(SRC, "t.foo(3);");
        let m1 = apply_checked(&LoopUnrollingEvoke, &program, &mp);
        let m2 = apply_checked(&LoopUnrollingEvoke, &m1.program, &m1.mp);
        let printed = mjava::print(&m2.program);
        // Two loops at the same nesting level, not one inside the other.
        let main = &m2.program.classes[0].methods[0].body;
        let loops = main
            .0
            .iter()
            .filter(|s| matches!(s, Stmt::For { .. }))
            .count();
        assert_eq!(loops, 2, "{printed}");
    }

    #[test]
    fn return_mp_gets_empty_loop_body() {
        let (program, mp) = program_and_mp(
            "class T { static int g() { return 4; } static void main() { System.out.println(T.g()); } }",
            "return 4;",
        );
        let mutation = apply_checked(&LoopUnrollingEvoke, &program, &mp);
        let outcome = jexec::run_program(&mutation.program, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(outcome.output, vec!["4"]);
    }

    #[test]
    fn evokes_unroll_events_on_jvm() {
        let (program, mp) = program_and_mp(SRC, "f = f + i;");
        let mut current = Mutation {
            program: program.clone(),
            mp: mp.clone(),
        };
        for _ in 0..2 {
            current = apply_checked(&LoopUnrollingEvoke, &current.program, &current.mp);
        }
        let run = jvmsim::run_jvm(
            &current.program,
            &jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs(),
            &jvmsim::RunOptions::fuzzing(),
        );
        assert!(
            run.events
                .iter()
                .any(|e| e.kind == jopt::OptEventKind::Unroll
                    || e.kind == jopt::OptEventKind::Peel),
            "no loop events: {:?}",
            run.events
        );
    }
}
