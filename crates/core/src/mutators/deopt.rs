//! Deoptimization-evoke: guards a copy of the MP with an equality check
//! against an improbable constant — the branch-profile heuristic marks it
//! rarely-taken and the compiler plants an uncommon trap (and, inside
//! loops, a planned deoptimization).

use super::util;
use super::{Mutation, Mutator, MutatorKind};
use mjava::{BinOp, Block, Expr, Program, Stmt, StmtPath, Type};
use rand::rngs::SmallRng;
use rand::Rng as _;

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeoptimizationEvoke;

fn int_vars(program: &Program, mp: &StmtPath) -> Vec<String> {
    let Some((scope, _)) = util::typing(program, mp) else {
        return Vec::new();
    };
    scope
        .vars_of_type(&Type::Int)
        .into_iter()
        .map(str::to_string)
        .collect()
}

impl Mutator for DeoptimizationEvoke {
    fn kind(&self) -> MutatorKind {
        MutatorKind::Deoptimization
    }

    fn is_applicable(&self, program: &Program, mp: &StmtPath) -> bool {
        !int_vars(program, mp).is_empty()
    }

    fn apply(&self, program: &Program, mp: &StmtPath, rng: &mut SmallRng) -> Option<Mutation> {
        let stmt = util::stmt_at(program, mp)?;
        let vars = int_vars(program, mp);
        if vars.is_empty() {
            return None;
        }
        let var = vars[rng.gen_range(0..vars.len())].clone();
        let sentinel = 1_000_003 + rng.gen_range(0..1_000) * 7;
        let guarded = if matches!(stmt, Stmt::Return(_)) {
            Block::new()
        } else {
            Block(vec![stmt])
        };
        let guard = Stmt::If {
            cond: Expr::bin(BinOp::Eq, Expr::var(var), Expr::Int(sentinel)),
            then_b: guarded,
            else_b: None,
        };
        let mut mutant = program.clone();
        let new_mp = mjava::path::insert_before(&mut mutant, mp, vec![guard])?;
        Some(Mutation {
            program: mutant,
            mp: new_mp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{apply_checked, program_and_mp, rng};
    use super::*;

    const SRC: &str = r#"
        class T {
            static int s;
            static void main() {
                for (int i = 0; i < 500; i++) {
                    s = s + i % 3;
                }
                System.out.println(s);
            }
        }
    "#;

    #[test]
    fn guards_copy_with_rare_equality() {
        let (program, mp) = program_and_mp(SRC, "s = s + i % 3;");
        let mutation = apply_checked(&DeoptimizationEvoke, &program, &mp);
        let printed = mjava::print(&mutation.program);
        assert!(
            printed.contains("== 100"),
            "rare constant expected: {printed}"
        );
        // The guard never fires at runtime, so output is unchanged.
        let before = jexec::run_program(&program, &jexec::ExecConfig::default()).unwrap();
        let after = jexec::run_program(&mutation.program, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(before.output, after.output);
    }

    #[test]
    fn requires_int_var_in_scope() {
        let (program, mp) = program_and_mp(
            "class T { static void main() { System.out.println(1); } }",
            "println",
        );
        assert!(!DeoptimizationEvoke.is_applicable(&program, &mp));
        assert!(DeoptimizationEvoke
            .apply(&program, &mp, &mut rng())
            .is_none());
    }

    #[test]
    fn evokes_uncommon_trap_and_deopt_on_jvm() {
        let (program, mp) = program_and_mp(SRC, "s = s + i % 3;");
        let mutation = apply_checked(&DeoptimizationEvoke, &program, &mp);
        let run = jvmsim::run_jvm(
            &mutation.program,
            &jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs(),
            &jvmsim::RunOptions::fuzzing(),
        );
        assert!(
            run.events
                .iter()
                .any(|e| e.kind == jopt::OptEventKind::UncommonTrap),
            "no trap events: {:?}",
            run.events
        );
        assert!(
            run.events
                .iter()
                .any(|e| e.kind == jopt::OptEventKind::Deopt),
            "guard is inside a loop, deopt expected: {:?}",
            run.events
        );
    }
}
