//! LoopUnswitching-evoke: inserts before the MP a loop whose body is a
//! single branch on a loop-invariant boolean — the exact shape loop
//! unswitching hoists out of the loop.

use super::util;
use super::{Mutation, Mutator, MutatorKind};
use mjava::{BinOp, Block, Expr, LValue, Program, Stmt, StmtPath, Type};
use rand::rngs::SmallRng;
use rand::Rng as _;

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopUnswitchingEvoke;

impl Mutator for LoopUnswitchingEvoke {
    fn kind(&self) -> MutatorKind {
        MutatorKind::LoopUnswitching
    }

    fn is_applicable(&self, program: &Program, mp: &StmtPath) -> bool {
        mjava::path::stmt_at(program, mp).is_some()
    }

    fn apply(&self, program: &Program, mp: &StmtPath, rng: &mut SmallRng) -> Option<Mutation> {
        let stmt = util::stmt_at(program, mp)?;
        let mut mutant = program.clone();
        let trip = util::loop_trip(rng);
        let flag = mutant.fresh_name("b");
        let var = mutant.fresh_name("i");
        let copy_body = if matches!(stmt, Stmt::Return(_)) {
            Block::new()
        } else {
            Block(vec![stmt])
        };
        let decl_flag = Stmt::Decl {
            name: flag.clone(),
            ty: Type::Bool,
            init: Some(Expr::Bool(rng.gen())),
        };
        let loop_stmt = Stmt::For {
            init: Some(Box::new(Stmt::Decl {
                name: var.clone(),
                ty: Type::Int,
                init: Some(Expr::Int(0)),
            })),
            cond: Expr::bin(BinOp::Lt, Expr::var(var.clone()), Expr::Int(trip)),
            update: Some(Box::new(Stmt::Assign {
                target: LValue::Var(var.clone()),
                value: Expr::bin(BinOp::Add, Expr::var(var), Expr::Int(1)),
            })),
            body: Block(vec![Stmt::If {
                cond: Expr::var(flag),
                then_b: copy_body,
                else_b: None,
            }]),
        };
        let new_mp = mjava::path::insert_before(&mut mutant, mp, vec![decl_flag, loop_stmt])?;
        Some(Mutation {
            program: mutant,
            mp: new_mp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{apply_checked, program_and_mp};
    use super::*;

    const SRC: &str = r#"
        class T {
            static int s;
            static void main() {
                s = s + 1;
                System.out.println(s);
            }
        }
    "#;

    #[test]
    fn inserts_invariant_branch_loop() {
        let (program, mp) = program_and_mp(SRC, "s = s + 1;");
        let mutation = apply_checked(&LoopUnswitchingEvoke, &program, &mp);
        let printed = mjava::print(&mutation.program);
        assert!(printed.contains("boolean b0 ="), "{printed}");
        assert!(printed.contains("if (b0)"), "{printed}");
    }

    #[test]
    fn evokes_unswitching_on_jvm() {
        let (program, mp) = program_and_mp(SRC, "s = s + 1;");
        let mutation = apply_checked(&LoopUnswitchingEvoke, &program, &mp);
        let run = jvmsim::run_jvm(
            &mutation.program,
            &jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs(),
            &jvmsim::RunOptions::fuzzing(),
        );
        assert!(
            run.events
                .iter()
                .any(|e| e.kind == jopt::OptEventKind::Unswitch),
            "no unswitch events: {:?}",
            run.events
        );
    }
}
