//! DeadCodeElimination-evoke: surrounds the MP with writes to a fresh,
//! never-read variable — straightforward food for dead code elimination.

use super::{Mutation, Mutator, MutatorKind};
use mjava::{Expr, LValue, Program, Stmt, StmtPath, Type};
use rand::rngs::SmallRng;
use rand::Rng as _;

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadCodeEliminationEvoke;

impl Mutator for DeadCodeEliminationEvoke {
    fn kind(&self) -> MutatorKind {
        MutatorKind::DeadCodeElimination
    }

    fn is_applicable(&self, program: &Program, mp: &StmtPath) -> bool {
        mjava::path::stmt_at(program, mp).is_some()
    }

    fn apply(&self, program: &Program, mp: &StmtPath, rng: &mut SmallRng) -> Option<Mutation> {
        let mut mutant = program.clone();
        let dead = mutant.fresh_name("d");
        let insert = vec![
            Stmt::Decl {
                name: dead.clone(),
                ty: Type::Int,
                init: Some(Expr::Int(rng.gen_range(0..100))),
            },
            Stmt::Assign {
                target: LValue::Var(dead),
                value: Expr::Int(rng.gen_range(100..200)),
            },
        ];
        let new_mp = mjava::path::insert_before(&mut mutant, mp, insert)?;
        Some(Mutation {
            program: mutant,
            mp: new_mp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{apply_checked, program_and_mp};
    use super::*;

    const SRC: &str = r#"
        class T {
            static void main() {
                int x = 7;
                System.out.println(x);
            }
        }
    "#;

    #[test]
    fn inserts_never_read_variable() {
        let (program, mp) = program_and_mp(SRC, "System.out.println");
        let mutation = apply_checked(&DeadCodeEliminationEvoke, &program, &mp);
        let printed = mjava::print(&mutation.program);
        assert!(printed.contains("int d0 ="), "{printed}");
        let out = jexec::run_program(&mutation.program, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(out.output, vec!["7"]);
    }

    #[test]
    fn evokes_dce_on_jvm() {
        let (program, mp) = program_and_mp(SRC, "System.out.println");
        let mutation = apply_checked(&DeadCodeEliminationEvoke, &program, &mp);
        let run = jvmsim::run_jvm(
            &mutation.program,
            &jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs(),
            &jvmsim::RunOptions::fuzzing(),
        );
        assert!(
            run.events
                .iter()
                .any(|e| e.kind == jopt::OptEventKind::DceRemove),
            "no DCE events: {:?}",
            run.events
        );
    }

    #[test]
    fn repeated_application_uses_fresh_names() {
        let (program, mp) = program_and_mp(SRC, "System.out.println");
        let m1 = apply_checked(&DeadCodeEliminationEvoke, &program, &mp);
        let m2 = apply_checked(&DeadCodeEliminationEvoke, &m1.program, &m1.mp);
        let printed = mjava::print(&m2.program);
        assert!(
            printed.contains("int d0 =") && printed.contains("int d1 ="),
            "{printed}"
        );
    }
}
