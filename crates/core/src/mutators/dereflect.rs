//! DeReflection-evoke (paper Table 1): replaces the MP's first direct
//! method call with a `Class.forName(..).getDeclaredMethod(..).invoke(..)`
//! chain, forcing the JVM through the reflection slow path that
//! de-reflection then removes.
//!
//! Deviation from the paper: Table 1 also allows converting *field
//! accesses* to reflection; MiniJava models reflective method invocation
//! only, so this mutator is restricted to calls (documented in DESIGN.md).

use super::util;
use super::{Mutation, Mutator, MutatorKind};
use mjava::scope::infer_expr;
use mjava::visit::rewrite_first_expr_in_stmt;
use mjava::{CallTarget, Expr, Program, Reflect, StmtPath, Type};
use rand::rngs::SmallRng;

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeReflectionEvoke;

impl DeReflectionEvoke {
    /// Resolves the target class of a direct call at the MP, if the call
    /// is convertible to reflection.
    fn convertible(program: &Program, mp: &StmtPath, e: &Expr) -> Option<(String, Option<Expr>)> {
        let Expr::Call(call) = e else {
            return None;
        };
        match &call.target {
            CallTarget::Static(class) => {
                program.class(class)?.method(&call.method)?;
                Some((class.clone(), None))
            }
            CallTarget::Instance(recv) => {
                let (scope, ctx) = util::typing(program, mp)?;
                match infer_expr(&ctx, &scope, recv)? {
                    Type::Ref(class) => {
                        program.class(&class)?.method(&call.method)?;
                        Some((class, Some(recv.as_ref().clone())))
                    }
                    _ => None,
                }
            }
        }
    }
}

impl Mutator for DeReflectionEvoke {
    fn kind(&self) -> MutatorKind {
        MutatorKind::DeReflection
    }

    fn is_applicable(&self, program: &Program, mp: &StmtPath) -> bool {
        let Some(stmt) = mjava::path::stmt_at(program, mp) else {
            return false;
        };
        let mut found = false;
        mjava::visit::for_each_expr_in_stmt(stmt, &mut |e| {
            if !found && Self::convertible(program, mp, e).is_some() {
                found = true;
            }
        });
        found
    }

    fn apply(&self, program: &Program, mp: &StmtPath, _rng: &mut SmallRng) -> Option<Mutation> {
        let mut stmt = util::stmt_at(program, mp)?;
        let mut changed = false;
        rewrite_first_expr_in_stmt(&mut stmt, &mut |e| {
            let Some((class, receiver)) = Self::convertible(program, mp, e) else {
                return false;
            };
            let Expr::Call(call) = e else {
                return false;
            };
            *e = Expr::Reflect(Reflect {
                class,
                method: call.method.clone(),
                receiver: receiver.map(Box::new),
                args: call.args.clone(),
            });
            changed = true;
            true
        });
        if !changed {
            return None;
        }
        let mut mutant = program.clone();
        if !mjava::path::replace_stmt(&mut mutant, mp, vec![stmt]) {
            return None;
        }
        Some(Mutation {
            program: mutant,
            mp: mp.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{apply_checked, program_and_mp};
    use super::*;

    const SRC: &str = r#"
        class T {
            int f;
            int g(int d) { return f + d; }
            static int h(int v) { return v * 2; }
            static void main() {
                T t = new T();
                t.f = 4;
                int m = t.g(2);
                int k = T.h(m);
                System.out.println(k);
            }
        }
    "#;

    #[test]
    fn converts_instance_call_to_reflection() {
        let (program, mp) = program_and_mp(SRC, "int m = t.g(2);");
        let mutation = apply_checked(&DeReflectionEvoke, &program, &mp);
        let stmt = mjava::path::stmt_at(&mutation.program, &mutation.mp).unwrap();
        let printed = mjava::print_stmt(stmt);
        assert!(
            printed.contains("Class.forName(\"T\").getDeclaredMethod(\"g\").invoke(t, 2)"),
            "{printed}"
        );
        let out = jexec::run_program(&mutation.program, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(out.output, vec!["12"]);
        assert_eq!(out.stats.reflective_calls, 1);
    }

    #[test]
    fn converts_static_call_with_null_receiver() {
        let (program, mp) = program_and_mp(SRC, "int k = T.h(m);");
        let mutation = apply_checked(&DeReflectionEvoke, &program, &mp);
        let printed =
            mjava::print_stmt(mjava::path::stmt_at(&mutation.program, &mutation.mp).unwrap());
        assert!(printed.contains(".invoke(null, m)"), "{printed}");
    }

    #[test]
    fn not_applicable_without_calls() {
        let (program, mp) = program_and_mp(SRC, "t.f = 4;");
        assert!(!DeReflectionEvoke.is_applicable(&program, &mp));
    }

    #[test]
    fn dereflection_phase_restores_direct_call() {
        let (program, mp) = program_and_mp(SRC, "int m = t.g(2);");
        let mutation = apply_checked(&DeReflectionEvoke, &program, &mp);
        let run = jvmsim::run_jvm(
            &mutation.program,
            &jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs(),
            &jvmsim::RunOptions::fuzzing(),
        );
        assert!(
            run.events
                .iter()
                .any(|e| e.kind == jopt::OptEventKind::Dereflect),
            "no dereflect events: {:?}",
            run.events
        );
    }
}
