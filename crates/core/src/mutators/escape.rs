//! EscapeAnalysis-evoke: plants a fresh, provably non-escaping allocation
//! next to the MP, with field traffic for scalar replacement to consume.
//! If the enclosing class has no `int` instance field, one is added.

use super::util;
use super::{Mutation, Mutator, MutatorKind};
use mjava::{BinOp, Expr, Field, LValue, Program, Stmt, StmtPath, Type};
use rand::rngs::SmallRng;
use rand::Rng as _;

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct EscapeAnalysisEvoke;

impl Mutator for EscapeAnalysisEvoke {
    fn kind(&self) -> MutatorKind {
        MutatorKind::EscapeAnalysis
    }

    fn is_applicable(&self, program: &Program, mp: &StmtPath) -> bool {
        mjava::path::stmt_at(program, mp).is_some()
    }

    fn apply(&self, program: &Program, mp: &StmtPath, rng: &mut SmallRng) -> Option<Mutation> {
        let class_name = util::enclosing_class(program, mp)?;
        let mut mutant = program.clone();
        // Ensure an int instance field exists to talk to.
        let field_name = {
            let class = mutant.class(&class_name)?;
            match class
                .fields
                .iter()
                .find(|f| !f.is_static && f.ty == Type::Int)
            {
                Some(f) => f.name.clone(),
                None => {
                    let name = mutant.fresh_name("v");
                    mutant.classes[mp.class].fields.push(Field {
                        name: name.clone(),
                        ty: Type::Int,
                        is_static: false,
                        init: None,
                    });
                    name
                }
            }
        };
        let obj = mutant.fresh_name("o");
        let tmp = mutant.fresh_name("g");
        let k = rng.gen_range(1..50);
        let insert = vec![
            // o = new C();          (non-escaping)
            Stmt::Decl {
                name: obj.clone(),
                ty: Type::Ref(class_name),
                init: Some(Expr::New(mutant.classes[mp.class].name.clone())),
            },
            // o.v = k;
            Stmt::Assign {
                target: LValue::Field(Expr::var(obj.clone()), field_name.clone()),
                value: Expr::Int(k),
            },
            // int g = o.v + 1;
            Stmt::Decl {
                name: tmp.clone(),
                ty: Type::Int,
                init: Some(Expr::bin(
                    BinOp::Add,
                    Expr::Field(Box::new(Expr::var(obj.clone())), field_name.clone()),
                    Expr::Int(1),
                )),
            },
            // o.v = g;              (keeps g live, object still local)
            Stmt::Assign {
                target: LValue::Field(Expr::var(obj), field_name),
                value: Expr::var(tmp),
            },
        ];
        let new_mp = mjava::path::insert_before(&mut mutant, mp, insert)?;
        Some(Mutation {
            program: mutant,
            mp: new_mp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{apply_checked, program_and_mp};
    use super::*;

    const SRC: &str = r#"
        class T {
            static int s;
            static void main() {
                s = s + 3;
                System.out.println(s);
            }
        }
    "#;

    #[test]
    fn inserts_local_allocation_with_field_traffic() {
        let (program, mp) = program_and_mp(SRC, "s = s + 3;");
        let mutation = apply_checked(&EscapeAnalysisEvoke, &program, &mp);
        let printed = mjava::print(&mutation.program);
        assert!(printed.contains("new T()"), "{printed}");
        // T had no int instance field; one was added.
        assert!(mutation.program.classes[0]
            .fields
            .iter()
            .any(|f| !f.is_static && f.ty == Type::Int));
        let out = jexec::run_program(&mutation.program, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(out.output, vec!["3"]);
    }

    #[test]
    fn reuses_existing_int_field() {
        let src = r#"
            class T {
                int w;
                static void main() {
                    System.out.println(9);
                }
            }
        "#;
        let (program, mp) = program_and_mp(src, "println");
        let mutation = apply_checked(&EscapeAnalysisEvoke, &program, &mp);
        assert_eq!(
            mutation.program.classes[0]
                .fields
                .iter()
                .filter(|f| !f.is_static)
                .count(),
            1,
            "no extra field should be added"
        );
    }

    #[test]
    fn evokes_escape_analysis_and_scalar_replacement() {
        let (program, mp) = program_and_mp(SRC, "s = s + 3;");
        let mutation = apply_checked(&EscapeAnalysisEvoke, &program, &mp);
        let run = jvmsim::run_jvm(
            &mutation.program,
            &jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs(),
            &jvmsim::RunOptions::fuzzing(),
        );
        assert!(
            run.events
                .iter()
                .any(|e| e.kind == jopt::OptEventKind::EaNoEscape),
            "no EA events: {:?}",
            run.events
        );
        assert!(
            run.events
                .iter()
                .any(|e| e.kind == jopt::OptEventKind::ScalarReplace),
            "no scalar-replacement events: {:?}",
            run.events
        );
    }
}
