//! LoopPeeling-evoke: inserts before the MP a variable-bound loop whose
//! first iteration is special-cased — the shape loop peeling hoists.
//! The bound is a local variable (not a constant), so the loop cannot be
//! fully unrolled and must go through the peeling path.

use super::util;
use super::{Mutation, Mutator, MutatorKind};
use mjava::{BinOp, Block, Expr, LValue, Program, Stmt, StmtPath, Type};
use rand::rngs::SmallRng;

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopPeelingEvoke;

impl Mutator for LoopPeelingEvoke {
    fn kind(&self) -> MutatorKind {
        MutatorKind::LoopPeeling
    }

    fn is_applicable(&self, program: &Program, mp: &StmtPath) -> bool {
        mjava::path::stmt_at(program, mp).is_some()
    }

    fn apply(&self, program: &Program, mp: &StmtPath, rng: &mut SmallRng) -> Option<Mutation> {
        let stmt = util::stmt_at(program, mp)?;
        let mut mutant = program.clone();
        let trip = util::loop_trip(rng);
        let bound = mutant.fresh_name("n");
        let var = mutant.fresh_name("i");
        let first_iter_body = if matches!(stmt, Stmt::Return(_)) {
            Block::new()
        } else {
            Block(vec![stmt])
        };
        let decl_bound = Stmt::Decl {
            name: bound.clone(),
            ty: Type::Int,
            init: Some(Expr::Int(trip)),
        };
        let loop_stmt = Stmt::For {
            init: Some(Box::new(Stmt::Decl {
                name: var.clone(),
                ty: Type::Int,
                init: Some(Expr::Int(0)),
            })),
            cond: Expr::bin(BinOp::Lt, Expr::var(var.clone()), Expr::var(bound)),
            update: Some(Box::new(Stmt::Assign {
                target: LValue::Var(var.clone()),
                value: Expr::bin(BinOp::Add, Expr::var(var.clone()), Expr::Int(1)),
            })),
            body: Block(vec![Stmt::If {
                cond: Expr::bin(BinOp::Eq, Expr::var(var), Expr::Int(0)),
                then_b: first_iter_body,
                else_b: None,
            }]),
        };
        let new_mp = mjava::path::insert_before(&mut mutant, mp, vec![decl_bound, loop_stmt])?;
        Some(Mutation {
            program: mutant,
            mp: new_mp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{apply_checked, program_and_mp};
    use super::*;

    const SRC: &str = r#"
        class T {
            static int s;
            static void main() {
                s = s + 2;
                System.out.println(s);
            }
        }
    "#;

    #[test]
    fn inserts_variable_bound_loop() {
        let (program, mp) = program_and_mp(SRC, "s = s + 2;");
        let mutation = apply_checked(&LoopPeelingEvoke, &program, &mp);
        let printed = mjava::print(&mutation.program);
        assert!(printed.contains("i0 < n0"), "{printed}");
        assert!(printed.contains("if (i0 == 0)"), "{printed}");
        // First-iteration body contains a copy of the MP; copy runs once.
        let out = jexec::run_program(&mutation.program, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(out.output, vec!["4"]); // s bumped by copy, then by MP
    }

    #[test]
    fn evokes_peeling_on_jvm() {
        let (program, mp) = program_and_mp(SRC, "s = s + 2;");
        let mutation = apply_checked(&LoopPeelingEvoke, &program, &mp);
        let run = jvmsim::run_jvm(
            &mutation.program,
            &jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs(),
            &jvmsim::RunOptions::fuzzing(),
        );
        assert!(
            run.events
                .iter()
                .any(|e| e.kind == jopt::OptEventKind::Peel),
            "no peel events: {:?}",
            run.events
        );
    }

    #[test]
    fn mp_remains_the_original_statement() {
        let (program, mp) = program_and_mp(SRC, "s = s + 2;");
        let mutation = apply_checked(&LoopPeelingEvoke, &program, &mp);
        let stmt = mjava::path::stmt_at(&mutation.program, &mutation.mp).unwrap();
        assert_eq!(mjava::print_stmt(stmt).trim(), "s = s + 2;");
    }
}
