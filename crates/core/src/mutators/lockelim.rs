//! LockElimination-evoke (paper Table 1): wraps the MP in a
//! `synchronized` body. The lock object is a fresh thread-local object
//! (provably eliminable), `this`, or the class constant, chosen at
//! random; nested applications produce the nested monitor regions the
//! lock phases must then handle.

use super::util;
use super::{Mutation, Mutator, MutatorKind};
use mjava::path::Region;
use mjava::{Block, Expr, Program, Stmt, StmtPath, Type};
use rand::rngs::SmallRng;
use rand::Rng as _;

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct LockEliminationEvoke;

impl Mutator for LockEliminationEvoke {
    fn kind(&self) -> MutatorKind {
        MutatorKind::LockElimination
    }

    fn is_applicable(&self, program: &Program, mp: &StmtPath) -> bool {
        mjava::path::stmt_at(program, mp).is_some()
    }

    fn apply(&self, program: &Program, mp: &StmtPath, rng: &mut SmallRng) -> Option<Mutation> {
        let stmt = util::stmt_at(program, mp)?;
        let class = util::enclosing_class(program, mp)?;
        let mut mutant = program.clone();

        // Wrapping a declaration would hide it from later statements.
        if matches!(stmt, Stmt::Decl { .. }) {
            return None;
        }

        let use_this = !util::in_static_method(program, mp);
        let (prefix, lock): (Option<Stmt>, Expr) = match rng.gen_range(0..3u8) {
            0 => {
                let name = mutant.fresh_name("l");
                let decl = Stmt::Decl {
                    name: name.clone(),
                    ty: Type::Ref(class.clone()),
                    init: Some(Expr::New(class.clone())),
                };
                (Some(decl), Expr::var(name))
            }
            1 if use_this => (None, Expr::This),
            _ => (None, Expr::ClassLit(class)),
        };
        let sync = Stmt::Sync {
            lock,
            body: Block(vec![stmt]),
        };
        let replacement: Vec<Stmt> = prefix.into_iter().chain([sync]).collect();
        let offset = replacement.len() - 1;
        if !mjava::path::replace_stmt(&mut mutant, mp, replacement) {
            return None;
        }
        // The MP moves inside the synchronized body.
        let mut new_mp = mp.clone();
        new_mp.steps.last_mut().expect("non-empty path").index += offset;
        let new_mp = new_mp.child(Region::Body, 0);
        Some(Mutation {
            program: mutant,
            mp: new_mp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{apply_checked, program_and_mp, rng};
    use super::*;

    const SRC: &str = r#"
        class T {
            int f;
            static void main() {
                T t = new T();
                t.foo(5);
                System.out.println(t.f);
            }
            void foo(int i) { f = f + i; }
        }
    "#;

    #[test]
    fn wraps_mp_in_synchronized() {
        let (program, mp) = program_and_mp(SRC, "f = f + i;");
        let mutation = apply_checked(&LockEliminationEvoke, &program, &mp);
        let stmt = mjava::path::stmt_at(&mutation.program, &mutation.mp).unwrap();
        assert_eq!(mjava::print_stmt(stmt).trim(), "f = f + i;");
        assert!(
            mjava::path::enclosing_sync(&mutation.program, &mutation.mp).is_some(),
            "MP must now be inside a synchronized body"
        );
    }

    #[test]
    fn nested_application_creates_nested_monitors() {
        let (program, mp) = program_and_mp(SRC, "f = f + i;");
        let m1 = apply_checked(&LockEliminationEvoke, &program, &mp);
        let m2 = apply_checked(&LockEliminationEvoke, &m1.program, &m1.mp);
        let m3 = apply_checked(&LockEliminationEvoke, &m2.program, &m2.mp);
        assert_eq!(mjava::path::sync_nesting_depth(&m3.program, &m3.mp), 3);
    }

    #[test]
    fn declaration_mp_is_rejected() {
        let (program, mp) = program_and_mp(SRC, "T t = new T();");
        let mut r = rng();
        assert!(LockEliminationEvoke.apply(&program, &mp, &mut r).is_none());
    }

    #[test]
    fn semantics_of_output_unchanged() {
        // Wrapping in a monitor must not change observable behaviour.
        let (program, mp) = program_and_mp(SRC, "t.foo(5);");
        let before = jexec::run_program(&program, &jexec::ExecConfig::default())
            .unwrap()
            .observable();
        let mutation = apply_checked(&LockEliminationEvoke, &program, &mp);
        let after = jexec::run_program(&mutation.program, &jexec::ExecConfig::default())
            .unwrap()
            .observable();
        assert_eq!(before, after);
    }
}
