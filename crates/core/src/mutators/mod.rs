//! The 13 optimization-evoking mutators (paper §3.2, Table 1).
//!
//! Every mutator targets the *same* mutation point across iterations: the
//! code it inserts is adjacent to or nested around the MP, which is the
//! paper's strategy for maximizing optimization interactions. Six
//! mutators are unconditional; seven require the MP (or its context) to
//! contain specific code elements.

mod algebraic;
mod autobox;
mod deadcode;
mod deopt;
mod dereflect;
mod escape;
mod inline;
mod lockcoarsen;
mod lockelim;
mod looppeel;
mod loopunroll;
mod loopunswitch;
mod store;

use mjava::{Program, StmtPath};
use rand::rngs::SmallRng;
use std::fmt;

/// Identifies one of the 13 mutators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MutatorKind {
    LoopUnrolling,
    LockElimination,
    LockCoarsening,
    Inlining,
    DeReflection,
    LoopPeeling,
    LoopUnswitching,
    Deoptimization,
    AutoboxElimination,
    RedundantStoreElimination,
    AlgebraicSimplification,
    EscapeAnalysis,
    DeadCodeElimination,
}

impl MutatorKind {
    /// All 13 kinds in a stable order.
    pub const ALL: [MutatorKind; 13] = [
        MutatorKind::LoopUnrolling,
        MutatorKind::LockElimination,
        MutatorKind::LockCoarsening,
        MutatorKind::Inlining,
        MutatorKind::DeReflection,
        MutatorKind::LoopPeeling,
        MutatorKind::LoopUnswitching,
        MutatorKind::Deoptimization,
        MutatorKind::AutoboxElimination,
        MutatorKind::RedundantStoreElimination,
        MutatorKind::AlgebraicSimplification,
        MutatorKind::EscapeAnalysis,
        MutatorKind::DeadCodeElimination,
    ];

    /// Inverse of the `Debug` formatting — used to attribute injected
    /// mutator panics and to round-trip journal records.
    pub fn from_debug_name(name: &str) -> Option<MutatorKind> {
        MutatorKind::ALL
            .into_iter()
            .find(|k| format!("{k:?}") == name)
    }

    /// The paper's "-evoke" display name.
    pub fn label(&self) -> &'static str {
        match self {
            MutatorKind::LoopUnrolling => "LoopUnrolling-evoke",
            MutatorKind::LockElimination => "LockElimination-evoke",
            MutatorKind::LockCoarsening => "LockCoarsening-evoke",
            MutatorKind::Inlining => "Inlining-evoke",
            MutatorKind::DeReflection => "DeReflection-evoke",
            MutatorKind::LoopPeeling => "LoopPeeling-evoke",
            MutatorKind::LoopUnswitching => "LoopUnswitching-evoke",
            MutatorKind::Deoptimization => "Deoptimization-evoke",
            MutatorKind::AutoboxElimination => "AutoboxElimination-evoke",
            MutatorKind::RedundantStoreElimination => "RedundantStoreElim-evoke",
            MutatorKind::AlgebraicSimplification => "AlgebraicSimplif-evoke",
            MutatorKind::EscapeAnalysis => "EscapeAnalysis-evoke",
            MutatorKind::DeadCodeElimination => "DeadCodeElim-evoke",
        }
    }
}

impl fmt::Display for MutatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The result of one mutator application: the mutant and the updated
/// mutation point (`MPₙ` in the paper's Table 1).
#[derive(Debug, Clone)]
pub struct Mutation {
    /// The mutated program.
    pub program: Program,
    /// Where subsequent iterations mutate.
    pub mp: StmtPath,
}

/// An optimization-evoking mutator.
pub trait Mutator: Send + Sync {
    /// Which of the 13 this is.
    fn kind(&self) -> MutatorKind;

    /// Whether the mutator's condition holds at the MP (paper §3.3).
    /// Unconditional mutators return true for any valid MP.
    fn is_applicable(&self, program: &Program, mp: &StmtPath) -> bool;

    /// Applies the mutator, returning the mutant and updated MP, or `None`
    /// when the transformation turns out to be impossible despite
    /// `is_applicable` (applicability is a cheap approximation).
    fn apply(&self, program: &Program, mp: &StmtPath, rng: &mut SmallRng) -> Option<Mutation>;
}

/// All 13 mutators.
pub fn all_mutators() -> Vec<Box<dyn Mutator>> {
    vec![
        Box::new(loopunroll::LoopUnrollingEvoke),
        Box::new(lockelim::LockEliminationEvoke),
        Box::new(lockcoarsen::LockCoarseningEvoke),
        Box::new(inline::InliningEvoke),
        Box::new(dereflect::DeReflectionEvoke),
        Box::new(looppeel::LoopPeelingEvoke),
        Box::new(loopunswitch::LoopUnswitchingEvoke),
        Box::new(deopt::DeoptimizationEvoke),
        Box::new(autobox::AutoboxEliminationEvoke),
        Box::new(store::RedundantStoreEliminationEvoke),
        Box::new(algebraic::AlgebraicSimplificationEvoke),
        Box::new(escape::EscapeAnalysisEvoke),
        Box::new(deadcode::DeadCodeEliminationEvoke),
    ]
}

// ---- shared helpers used by the mutator implementations ----

pub(crate) mod util {
    use mjava::scope::{infer_expr, scope_at, Scope, TypeCtx};
    use mjava::visit::rewrite_first_expr_in_stmt;
    use mjava::{Expr, Program, Stmt, StmtPath, Type};

    /// The statement at the MP, cloned.
    pub fn stmt_at(program: &Program, mp: &StmtPath) -> Option<Stmt> {
        mjava::path::stmt_at(program, mp).cloned()
    }

    /// Name of the class enclosing the MP.
    pub fn enclosing_class(program: &Program, mp: &StmtPath) -> Option<String> {
        program.classes.get(mp.class).map(|c| c.name.clone())
    }

    /// True if the enclosing method of the MP is static.
    pub fn in_static_method(program: &Program, mp: &StmtPath) -> bool {
        program
            .classes
            .get(mp.class)
            .and_then(|c| c.methods.get(mp.method))
            .is_none_or(|m| m.is_static)
    }

    /// Scope and type context at the MP.
    pub fn typing<'p>(program: &'p Program, mp: &StmtPath) -> Option<(Scope, TypeCtx<'p>)> {
        let scope = scope_at(program, mp)?;
        let ctx = TypeCtx::for_path(program, mp)?;
        Some((scope, ctx))
    }

    /// True when the MP statement contains an `int`-typed sub-expression
    /// that is not a bare literal.
    pub fn has_int_expr(program: &Program, mp: &StmtPath) -> bool {
        let Some(stmt) = mjava::path::stmt_at(program, mp) else {
            return false;
        };
        let Some((scope, ctx)) = typing(program, mp) else {
            return false;
        };
        let mut found = false;
        mjava::visit::for_each_expr_in_stmt(stmt, &mut |e| {
            if !found && !e.is_literal() && infer_expr(&ctx, &scope, e) == Some(Type::Int) {
                found = true;
            }
        });
        found
    }

    /// Rewrites (in place) the first `int`-typed non-literal expression of
    /// the MP statement using `make`. Returns true on success.
    pub fn rewrite_first_int_expr(
        program: &Program,
        mp: &StmtPath,
        stmt: &mut Stmt,
        make: impl Fn(Expr) -> Expr,
    ) -> bool {
        let Some((scope, ctx)) = typing(program, mp) else {
            return false;
        };
        rewrite_first_expr_in_stmt(stmt, &mut |e| {
            if !e.is_literal() && infer_expr(&ctx, &scope, e) == Some(Type::Int) {
                let old = e.clone();
                *e = make(old);
                true
            } else {
                false
            }
        })
    }

    /// A loop-iteration count for inserted loops — kept modest so mutants
    /// stay within the execution budget even after many iterations (the
    /// paper caps iterations at 50 for the same reason).
    pub fn loop_trip(rng: &mut rand::rngs::SmallRng) -> i64 {
        use rand::Rng as _;
        *[4i64, 6, 8, 16, 32, 64]
            .get(rng.gen_range(0..6))
            .expect("index in range")
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use rand::SeedableRng as _;

    /// Parses a program, picks the statement path whose printed form
    /// contains `marker`, and returns both.
    pub fn program_and_mp(src: &str, marker: &str) -> (Program, StmtPath) {
        let program = mjava::parse(src).unwrap();
        let mp = mjava::path::all_paths(&program)
            .into_iter()
            .find(|p| {
                mjava::path::stmt_at(&program, p)
                    .map(mjava::print_stmt)
                    .is_some_and(|s| s.lines().next().unwrap_or("").contains(marker))
            })
            .unwrap_or_else(|| panic!("no statement matching {marker:?}"));
        (program, mp)
    }

    pub fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    /// Applies a mutator and validates the core invariants every mutation
    /// must uphold: the mutant reparses (print→parse round-trip), the new
    /// MP resolves, and the mutant still builds and executes on the
    /// reference interpreter.
    pub fn apply_checked(mutator: &dyn Mutator, program: &Program, mp: &StmtPath) -> Mutation {
        let mut rng = rng();
        assert!(mutator.is_applicable(program, mp), "not applicable");
        let mutation = mutator
            .apply(program, mp, &mut rng)
            .expect("applicable mutator must apply");
        let printed = mjava::print(&mutation.program);
        let reparsed = mjava::parse(&printed)
            .unwrap_or_else(|e| panic!("mutant does not reparse: {e}\n{printed}"));
        assert_eq!(reparsed, mutation.program, "print/parse mismatch");
        assert!(
            mjava::path::stmt_at(&mutation.program, &mutation.mp).is_some(),
            "updated MP is stale\n{printed}"
        );
        let outcome = jexec::run_program(&mutation.program, &jexec::ExecConfig::default())
            .unwrap_or_else(|e| panic!("mutant does not build: {e}\n{printed}"));
        assert!(
            outcome.error.is_none() || outcome.error.as_ref().is_some_and(|e| e.is_program_level()),
            "mutant hit a VM-level error {:?}\n{printed}",
            outcome.error
        );
        mutation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_mutators_with_unique_kinds() {
        let mutators = all_mutators();
        assert_eq!(mutators.len(), 13);
        let mut kinds: Vec<_> = mutators.iter().map(|m| m.kind()).collect();
        kinds.sort();
        kinds.dedup();
        assert_eq!(kinds.len(), 13);
    }

    #[test]
    fn six_mutators_are_unconditional() {
        // §3.3: six of the 13 are unconditional — applicable at any MP,
        // including the most barren statement imaginable.
        let (program, mp) =
            testutil::program_and_mp("class T { static void main() { return; } }", "return");
        let applicable: Vec<_> = all_mutators()
            .into_iter()
            .filter(|m| m.is_applicable(&program, &mp))
            .map(|m| m.kind())
            .collect();
        assert_eq!(applicable.len(), 6, "{applicable:?}");
        for kind in [
            MutatorKind::LoopUnrolling,
            MutatorKind::LockElimination,
            MutatorKind::LoopPeeling,
            MutatorKind::LoopUnswitching,
            MutatorKind::EscapeAnalysis,
            MutatorKind::DeadCodeElimination,
        ] {
            assert!(applicable.contains(&kind), "{kind} should be unconditional");
        }
    }

    #[test]
    fn labels_are_unique_and_evoke_suffixed() {
        let mut labels: Vec<_> = MutatorKind::ALL.iter().map(|k| k.label()).collect();
        assert!(labels.iter().all(|l| l.ends_with("-evoke")));
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 13);
    }
}
