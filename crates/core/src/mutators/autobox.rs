//! AutoboxElimination-evoke: routes the MP's first `int` expression
//! through a box/unbox round-trip (`Integer.valueOf(e).intValue()`), the
//! pattern autobox elimination removes.

use super::util;
use super::{Mutation, Mutator, MutatorKind};
use mjava::{Expr, Program, StmtPath};
use rand::rngs::SmallRng;

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct AutoboxEliminationEvoke;

impl Mutator for AutoboxEliminationEvoke {
    fn kind(&self) -> MutatorKind {
        MutatorKind::AutoboxElimination
    }

    fn is_applicable(&self, program: &Program, mp: &StmtPath) -> bool {
        util::has_int_expr(program, mp)
    }

    fn apply(&self, program: &Program, mp: &StmtPath, _rng: &mut SmallRng) -> Option<Mutation> {
        let mut stmt = util::stmt_at(program, mp)?;
        if !util::rewrite_first_int_expr(program, mp, &mut stmt, |e| {
            Expr::UnboxInt(Box::new(Expr::BoxInt(Box::new(e))))
        }) {
            return None;
        }
        let mut mutant = program.clone();
        if !mjava::path::replace_stmt(&mut mutant, mp, vec![stmt]) {
            return None;
        }
        Some(Mutation {
            program: mutant,
            mp: mp.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{apply_checked, program_and_mp};
    use super::*;

    const SRC: &str = r#"
        class T {
            static void main() {
                int a = 4;
                int m = a * 5;
                System.out.println(m);
            }
        }
    "#;

    #[test]
    fn wraps_int_expr_in_roundtrip() {
        let (program, mp) = program_and_mp(SRC, "int m = a * 5;");
        let mutation = apply_checked(&AutoboxEliminationEvoke, &program, &mp);
        let printed =
            mjava::print_stmt(mjava::path::stmt_at(&mutation.program, &mutation.mp).unwrap());
        assert!(printed.contains("Integer.valueOf("), "{printed}");
        assert!(printed.contains(".intValue()"), "{printed}");
        let out = jexec::run_program(&mutation.program, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(out.output, vec!["20"]);
    }

    #[test]
    fn not_applicable_without_int_expr() {
        let (program, mp) = program_and_mp(
            "class T { static void main() { boolean b = true; System.out.println(b); } }",
            "boolean b = true;",
        );
        assert!(!AutoboxEliminationEvoke.is_applicable(&program, &mp));
    }

    #[test]
    fn evokes_autobox_elimination_on_jvm() {
        let (program, mp) = program_and_mp(SRC, "int m = a * 5;");
        let mutation = apply_checked(&AutoboxEliminationEvoke, &program, &mp);
        let run = jvmsim::run_jvm(
            &mutation.program,
            &jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs(),
            &jvmsim::RunOptions::fuzzing(),
        );
        assert!(
            run.events
                .iter()
                .any(|e| e.kind == jopt::OptEventKind::AutoboxEliminate),
            "no autobox events: {:?}",
            run.events
        );
    }

    #[test]
    fn stacking_roundtrips_composes() {
        let (program, mp) = program_and_mp(SRC, "int m = a * 5;");
        let m1 = apply_checked(&AutoboxEliminationEvoke, &program, &mp);
        let m2 = apply_checked(&AutoboxEliminationEvoke, &m1.program, &m1.mp);
        let out = jexec::run_program(&m2.program, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(out.output, vec!["20"]);
    }
}
