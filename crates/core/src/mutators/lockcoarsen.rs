//! LockCoarsening-evoke (paper Table 1): splits the `synchronized` body
//! enclosing the MP into two adjacent bodies over the same lock object —
//! the shape lock coarsening exists to merge back.

use super::{Mutation, Mutator, MutatorKind};
use mjava::path::{enclosing_sync, stmt_at};
use mjava::{Block, Program, Stmt, StmtPath};
use rand::rngs::SmallRng;

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct LockCoarseningEvoke;

impl Mutator for LockCoarseningEvoke {
    fn kind(&self) -> MutatorKind {
        MutatorKind::LockCoarsening
    }

    fn is_applicable(&self, program: &Program, mp: &StmtPath) -> bool {
        enclosing_sync(program, mp).is_some()
    }

    fn apply(&self, program: &Program, mp: &StmtPath, _rng: &mut SmallRng) -> Option<Mutation> {
        let sync_path = enclosing_sync(program, mp)?;
        let Some(Stmt::Sync { lock, body }) = stmt_at(program, &sync_path) else {
            return None;
        };
        let (lock, body) = (lock.clone(), body.clone());
        // The statement index within the sync body on the MP's path.
        let level = sync_path.steps.len();
        let split_at = mp.steps.get(level)?.index;
        let (first, second) = body.0.split_at(split_at);
        // Splitting must not separate a declaration from its uses.
        let first_block = Block(first.to_vec());
        let second_block = Block(second.to_vec());
        let declared = jopt::analysis::declared_names(&first_block);
        if !declared.is_empty() {
            let mut used = false;
            for stmt in &second_block.0 {
                let mut reads = std::collections::HashSet::new();
                collect_idents(stmt, &mut reads);
                if reads.iter().any(|r| declared.contains(r)) {
                    used = true;
                    break;
                }
            }
            if used {
                return None;
            }
        }
        let replacement = vec![
            Stmt::Sync {
                lock: lock.clone(),
                body: Block(first.to_vec()),
            },
            Stmt::Sync {
                lock,
                body: Block(second.to_vec()),
            },
        ];
        let mut mutant = program.clone();
        if !mjava::path::replace_stmt(&mut mutant, &sync_path, replacement) {
            return None;
        }
        // MP: same path, but the enclosing sync is now the *second* one
        // and the in-body index is rebased to the split point.
        let mut new_mp = mp.clone();
        new_mp.steps[level - 1].index += 1;
        new_mp.steps[level].index -= split_at;
        Some(Mutation {
            program: mutant,
            mp: new_mp,
        })
    }
}

/// All identifiers a statement reads or writes (any nesting level).
fn collect_idents(stmt: &Stmt, out: &mut std::collections::HashSet<String>) {
    let block = Block(vec![stmt.clone()]);
    jopt::analysis::map_exprs_in_block_ref(&block, &mut |e| {
        if let mjava::Expr::Var(v) = e {
            out.insert(v.clone());
        }
    });
    out.extend(jopt::analysis::assigned_vars(&block));
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{apply_checked, program_and_mp, rng};
    use super::*;

    const SRC: &str = r#"
        class T {
            static int s;
            static void main() {
                synchronized (T.class) {
                    s = s + 1;
                    s = s + 2;
                    s = s + 3;
                }
                System.out.println(s);
            }
        }
    "#;

    #[test]
    fn splits_sync_body_at_mp() {
        let (program, mp) = program_and_mp(SRC, "s = s + 2;");
        let mutation = apply_checked(&LockCoarseningEvoke, &program, &mp);
        let printed = mjava::print(&mutation.program);
        assert_eq!(
            printed.matches("synchronized (T.class)").count(),
            2,
            "{printed}"
        );
        let stmt = mjava::path::stmt_at(&mutation.program, &mutation.mp).unwrap();
        assert_eq!(mjava::print_stmt(stmt).trim(), "s = s + 2;");
        // Output preserved.
        let out = jexec::run_program(&mutation.program, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(out.output, vec!["6"]);
    }

    #[test]
    fn split_at_first_statement_gives_empty_first_region() {
        let (program, mp) = program_and_mp(SRC, "s = s + 1;");
        let mutation = apply_checked(&LockCoarseningEvoke, &program, &mp);
        let printed = mjava::print(&mutation.program);
        assert_eq!(printed.matches("synchronized").count(), 2, "{printed}");
    }

    #[test]
    fn not_applicable_outside_sync() {
        let (program, mp) = program_and_mp(SRC, "System.out.println");
        assert!(!LockCoarseningEvoke.is_applicable(&program, &mp));
        assert!(LockCoarseningEvoke
            .apply(&program, &mp, &mut rng())
            .is_none());
    }

    #[test]
    fn applies_to_deeply_nested_mp() {
        let src = r#"
            class T {
                static int s;
                static void main() {
                    synchronized (T.class) {
                        if (s < 10) {
                            s = s + 7;
                        }
                    }
                    System.out.println(s);
                }
            }
        "#;
        let (program, mp) = program_and_mp(src, "s = s + 7;");
        let mutation = apply_checked(&LockCoarseningEvoke, &program, &mp);
        // MP still resolves to the same statement inside the second region.
        let stmt = mjava::path::stmt_at(&mutation.program, &mutation.mp).unwrap();
        assert_eq!(mjava::print_stmt(stmt).trim(), "s = s + 7;");
    }

    #[test]
    fn evokes_coarsening_on_jvm() {
        let (program, mp) = program_and_mp(SRC, "s = s + 2;");
        let mutation = apply_checked(&LockCoarseningEvoke, &program, &mp);
        let run = jvmsim::run_jvm(
            &mutation.program,
            &jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs(),
            &jvmsim::RunOptions::fuzzing(),
        );
        assert!(
            run.events
                .iter()
                .any(|e| e.kind == jopt::OptEventKind::LockCoarsen),
            "no coarsening events: {:?}",
            run.events
        );
    }
}
