//! RedundantStoreElim-evoke: inserts a dead store to the MP's assignment
//! target immediately before the MP, creating the
//! store-immediately-overwritten pattern redundant-store elimination
//! removes.

use super::util;
use super::{Mutation, Mutator, MutatorKind};
use mjava::scope::infer_expr;
use mjava::{Expr, LValue, Program, Stmt, StmtPath, Type};
use rand::rngs::SmallRng;
use rand::Rng as _;

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RedundantStoreEliminationEvoke;

/// The type of the MP's assignment target, when the MP is an assignment
/// to a primitive-typed location.
fn target_type(program: &Program, mp: &StmtPath) -> Option<Type> {
    let Stmt::Assign { target, .. } = mjava::path::stmt_at(program, mp)? else {
        return None;
    };
    let (scope, ctx) = util::typing(program, mp)?;
    let ty = match target {
        LValue::Var(name) => scope.lookup(name).cloned().or_else(|| {
            // Bare names may resolve to fields of the enclosing class.
            let class = program.classes.get(mp.class)?;
            class.field(name).map(|f| f.ty.clone())
        })?,
        LValue::StaticField(class, name) => program.class(class)?.field(name)?.ty.clone(),
        LValue::Field(obj, name) => match infer_expr(&ctx, &scope, obj)? {
            Type::Ref(class) => program.class(&class)?.field(name)?.ty.clone(),
            _ => return None,
        },
    };
    ty.is_numeric().then_some(ty.clone()).or(match ty {
        Type::Bool => Some(Type::Bool),
        _ => None,
    })
}

/// Whether evaluating `expr` may read the location `target`. The inserted
/// store is only dead if the MP's own right-hand side never observes it —
/// `i = i + 1` reads `i`, so a store to `i` before it is live (and, on a
/// loop counter, makes the loop infinite). Conservative: method calls are
/// assumed to read any field target.
fn reads_target(expr: &Expr, target: &LValue) -> bool {
    let reads_here = match (expr, target) {
        (Expr::Var(name), LValue::Var(t)) => name == t,
        (Expr::StaticField(class, field), LValue::StaticField(tc, tf)) => {
            class == tc && field == tf
        }
        (Expr::Field(_, field), LValue::Field(_, tf)) => field == tf,
        (Expr::Call(_) | Expr::Reflect(_), LValue::StaticField(..) | LValue::Field(..)) => true,
        _ => false,
    };
    if reads_here {
        return true;
    }
    match expr {
        Expr::Unary(_, inner) | Expr::BoxInt(inner) | Expr::UnboxInt(inner) => {
            reads_target(inner, target)
        }
        Expr::Binary(_, lhs, rhs) => reads_target(lhs, target) || reads_target(rhs, target),
        Expr::Call(call) => {
            let receiver_reads = match &call.target {
                mjava::CallTarget::Instance(recv) => reads_target(recv, target),
                mjava::CallTarget::Static(_) => false,
            };
            receiver_reads || call.args.iter().any(|a| reads_target(a, target))
        }
        Expr::Reflect(reflect) => {
            reflect
                .receiver
                .as_deref()
                .is_some_and(|r| reads_target(r, target))
                || reflect.args.iter().any(|a| reads_target(a, target))
        }
        Expr::Field(obj, _) => reads_target(obj, target),
        _ => false,
    }
}

/// The MP's assignment, when the inserted store would genuinely be dead.
fn dead_store_site<'p>(program: &'p Program, mp: &StmtPath) -> Option<(&'p LValue, Type)> {
    let ty = target_type(program, mp)?;
    let Stmt::Assign { target, value } = mjava::path::stmt_at(program, mp)? else {
        return None;
    };
    (!reads_target(value, target)).then_some((target, ty))
}

impl Mutator for RedundantStoreEliminationEvoke {
    fn kind(&self) -> MutatorKind {
        MutatorKind::RedundantStoreElimination
    }

    fn is_applicable(&self, program: &Program, mp: &StmtPath) -> bool {
        dead_store_site(program, mp).is_some()
    }

    fn apply(&self, program: &Program, mp: &StmtPath, rng: &mut SmallRng) -> Option<Mutation> {
        let (target, ty) = dead_store_site(program, mp)?;
        let value = match ty {
            Type::Int => Expr::Int(rng.gen_range(0..100)),
            Type::Long => Expr::Long(rng.gen_range(0..100)),
            Type::Bool => Expr::Bool(rng.gen()),
            _ => return None,
        };
        let dead_store = Stmt::Assign {
            target: target.clone(),
            value,
        };
        let mut mutant = program.clone();
        let new_mp = mjava::path::insert_before(&mut mutant, mp, vec![dead_store])?;
        Some(Mutation {
            program: mutant,
            mp: new_mp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{apply_checked, program_and_mp};
    use super::*;

    const SRC: &str = r#"
        class T {
            static int s;
            static void main() {
                s = 41;
                System.out.println(s + 1);
            }
        }
    "#;

    #[test]
    fn inserts_dead_store_before_assignment() {
        let (program, mp) = program_and_mp(SRC, "s = 41;");
        let mutation = apply_checked(&RedundantStoreEliminationEvoke, &program, &mp);
        // The dead store is overwritten by the MP, so output is unchanged.
        let out = jexec::run_program(&mutation.program, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(out.output, vec!["42"]);
        // Two consecutive stores to `s` now exist.
        let main = &mutation.program.classes[0].methods[0].body;
        let stores = main
            .0
            .iter()
            .filter(|s| matches!(s, Stmt::Assign { .. }))
            .count();
        assert_eq!(stores, 2);
    }

    #[test]
    fn not_applicable_when_rhs_reads_target() {
        // `s = s + 1` reads its own target: a store inserted before it is
        // live, not dead (on a loop counter it makes the loop infinite).
        let src = r#"
            class T {
                static int s;
                static void main() {
                    s = 41;
                    s = s + 1;
                    System.out.println(s);
                }
            }
        "#;
        let (program, mp) = program_and_mp(src, "s = s + 1;");
        assert!(!RedundantStoreEliminationEvoke.is_applicable(&program, &mp));
    }

    #[test]
    fn not_applicable_to_non_assignment() {
        let (program, mp) = program_and_mp(SRC, "System.out.println");
        assert!(!RedundantStoreEliminationEvoke.is_applicable(&program, &mp));
    }

    #[test]
    fn evokes_store_elimination_on_jvm() {
        let (program, mp) = program_and_mp(SRC, "s = 41;");
        let mutation = apply_checked(&RedundantStoreEliminationEvoke, &program, &mp);
        let run = jvmsim::run_jvm(
            &mutation.program,
            &jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs(),
            &jvmsim::RunOptions::fuzzing(),
        );
        assert!(
            run.events
                .iter()
                .any(|e| e.kind == jopt::OptEventKind::StoreEliminate),
            "no store-elimination events: {:?}",
            run.events
        );
    }

    #[test]
    fn works_on_instance_field_targets() {
        let src = r#"
            class T {
                int f;
                void set() { f = 9; }
                static void main() {
                    T t = new T();
                    t.set();
                    System.out.println(t.f);
                }
            }
        "#;
        let (program, mp) = program_and_mp(src, "f = 9;");
        let mutation = apply_checked(&RedundantStoreEliminationEvoke, &program, &mp);
        let out = jexec::run_program(&mutation.program, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(out.output, vec!["9"]);
    }
}
