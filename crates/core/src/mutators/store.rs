//! RedundantStoreElim-evoke: inserts a dead store to the MP's assignment
//! target immediately before the MP, creating the
//! store-immediately-overwritten pattern redundant-store elimination
//! removes.

use super::util;
use super::{Mutation, Mutator, MutatorKind};
use mjava::scope::infer_expr;
use mjava::{Expr, LValue, Program, Stmt, StmtPath, Type};
use rand::rngs::SmallRng;
use rand::Rng as _;

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RedundantStoreEliminationEvoke;

/// The type of the MP's assignment target, when the MP is an assignment
/// to a primitive-typed location.
fn target_type(program: &Program, mp: &StmtPath) -> Option<Type> {
    let Stmt::Assign { target, .. } = mjava::path::stmt_at(program, mp)? else {
        return None;
    };
    let (scope, ctx) = util::typing(program, mp)?;
    let ty = match target {
        LValue::Var(name) => scope.lookup(name).cloned().or_else(|| {
            // Bare names may resolve to fields of the enclosing class.
            let class = program.classes.get(mp.class)?;
            class.field(name).map(|f| f.ty.clone())
        })?,
        LValue::StaticField(class, name) => program.class(class)?.field(name)?.ty.clone(),
        LValue::Field(obj, name) => match infer_expr(&ctx, &scope, obj)? {
            Type::Ref(class) => program.class(&class)?.field(name)?.ty.clone(),
            _ => return None,
        },
    };
    ty.is_numeric().then_some(ty.clone()).or(match ty {
        Type::Bool => Some(Type::Bool),
        _ => None,
    })
}

impl Mutator for RedundantStoreEliminationEvoke {
    fn kind(&self) -> MutatorKind {
        MutatorKind::RedundantStoreElimination
    }

    fn is_applicable(&self, program: &Program, mp: &StmtPath) -> bool {
        target_type(program, mp).is_some()
    }

    fn apply(&self, program: &Program, mp: &StmtPath, rng: &mut SmallRng) -> Option<Mutation> {
        let ty = target_type(program, mp)?;
        let Some(Stmt::Assign { target, .. }) = mjava::path::stmt_at(program, mp) else {
            return None;
        };
        let value = match ty {
            Type::Int => Expr::Int(rng.gen_range(0..100)),
            Type::Long => Expr::Long(rng.gen_range(0..100)),
            Type::Bool => Expr::Bool(rng.gen()),
            _ => return None,
        };
        let dead_store = Stmt::Assign {
            target: target.clone(),
            value,
        };
        let mut mutant = program.clone();
        let new_mp = mjava::path::insert_before(&mut mutant, mp, vec![dead_store])?;
        Some(Mutation {
            program: mutant,
            mp: new_mp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{apply_checked, program_and_mp};
    use super::*;

    const SRC: &str = r#"
        class T {
            static int s;
            static void main() {
                s = 41;
                System.out.println(s + 1);
            }
        }
    "#;

    #[test]
    fn inserts_dead_store_before_assignment() {
        let (program, mp) = program_and_mp(SRC, "s = 41;");
        let mutation = apply_checked(&RedundantStoreEliminationEvoke, &program, &mp);
        // The dead store is overwritten by the MP, so output is unchanged.
        let out = jexec::run_program(&mutation.program, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(out.output, vec!["42"]);
        // Two consecutive stores to `s` now exist.
        let main = &mutation.program.classes[0].methods[0].body;
        let stores = main
            .0
            .iter()
            .filter(|s| matches!(s, Stmt::Assign { .. }))
            .count();
        assert_eq!(stores, 2);
    }

    #[test]
    fn not_applicable_to_non_assignment() {
        let (program, mp) = program_and_mp(SRC, "System.out.println");
        assert!(!RedundantStoreEliminationEvoke.is_applicable(&program, &mp));
    }

    #[test]
    fn evokes_store_elimination_on_jvm() {
        let (program, mp) = program_and_mp(SRC, "s = 41;");
        let mutation = apply_checked(&RedundantStoreEliminationEvoke, &program, &mp);
        let run = jvmsim::run_jvm(
            &mutation.program,
            &jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs(),
            &jvmsim::RunOptions::fuzzing(),
        );
        assert!(
            run.events
                .iter()
                .any(|e| e.kind == jopt::OptEventKind::StoreEliminate),
            "no store-elimination events: {:?}",
            run.events
        );
    }

    #[test]
    fn works_on_instance_field_targets() {
        let src = r#"
            class T {
                int f;
                void set() { f = 9; }
                static void main() {
                    T t = new T();
                    t.set();
                    System.out.println(t.f);
                }
            }
        "#;
        let (program, mp) = program_and_mp(src, "f = 9;");
        let mutation = apply_checked(&RedundantStoreEliminationEvoke, &program, &mp);
        let out = jexec::run_program(&mutation.program, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(out.output, vec!["9"]);
    }
}
