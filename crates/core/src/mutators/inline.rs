//! Inlining-evoke (paper Table 1): extracts the first binary expression of
//! the MP into a fresh small static method, replacing it with a call —
//! exactly the shape the JIT's inliner will fold back in, exercising the
//! inlining machinery.

use super::util;
use super::{Mutation, Mutator, MutatorKind};
use mjava::scope::infer_expr;
use mjava::visit::rewrite_first_expr_in_stmt;
use mjava::{BinOp, Block, Call, CallTarget, Expr, Method, Param, Program, Stmt, StmtPath, Type};
use rand::rngs::SmallRng;

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct InliningEvoke;

fn numeric(ty: &Option<Type>) -> bool {
    matches!(ty, Some(Type::Int) | Some(Type::Long))
}

impl Mutator for InliningEvoke {
    fn kind(&self) -> MutatorKind {
        MutatorKind::Inlining
    }

    fn is_applicable(&self, program: &Program, mp: &StmtPath) -> bool {
        let Some(stmt) = mjava::path::stmt_at(program, mp) else {
            return false;
        };
        let Some((scope, ctx)) = util::typing(program, mp) else {
            return false;
        };
        let mut found = false;
        mjava::visit::for_each_expr_in_stmt(stmt, &mut |e| {
            if found {
                return;
            }
            if let Expr::Binary(op, lhs, rhs) = e {
                if op.is_arithmetic()
                    && numeric(&infer_expr(&ctx, &scope, lhs))
                    && numeric(&infer_expr(&ctx, &scope, rhs))
                {
                    found = true;
                }
            }
        });
        found
    }

    fn apply(&self, program: &Program, mp: &StmtPath, _rng: &mut SmallRng) -> Option<Mutation> {
        let mut stmt = util::stmt_at(program, mp)?;
        let class_name = util::enclosing_class(program, mp)?;
        let (scope, ctx) = util::typing(program, mp)?;
        let method_name = program.fresh_name("foo");

        let mut extracted: Option<(BinOp, Type, Type)> = None;
        rewrite_first_expr_in_stmt(&mut stmt, &mut |e| {
            if extracted.is_some() {
                return false;
            }
            let Expr::Binary(op, lhs, rhs) = e else {
                return false;
            };
            if !op.is_arithmetic() {
                return false;
            }
            let (lt, rt) = (infer_expr(&ctx, &scope, lhs), infer_expr(&ctx, &scope, rhs));
            if !(numeric(&lt) && numeric(&rt)) {
                return false;
            }
            let (lt, rt) = (lt.expect("numeric"), rt.expect("numeric"));
            extracted = Some((*op, lt.clone(), rt.clone()));
            let (lhs, rhs) = (lhs.as_ref().clone(), rhs.as_ref().clone());
            *e = Expr::Call(Call {
                target: CallTarget::Static(class_name.clone()),
                method: method_name.clone(),
                args: vec![lhs, rhs],
            });
            true
        });
        let (op, lt, rt) = extracted?;
        let ret = if lt == Type::Long || rt == Type::Long {
            Type::Long
        } else {
            Type::Int
        };
        let helper = Method {
            name: method_name,
            params: vec![
                Param {
                    name: "x".into(),
                    ty: lt,
                },
                Param {
                    name: "y".into(),
                    ty: rt,
                },
            ],
            ret,
            is_static: true,
            is_sync: false,
            body: Block(vec![Stmt::Return(Some(Expr::bin(
                op,
                Expr::var("x"),
                Expr::var("y"),
            )))]),
        };
        let mut mutant = program.clone();
        if !mjava::path::replace_stmt(&mut mutant, mp, vec![stmt]) {
            return None;
        }
        mutant.classes[mp.class].methods.push(helper);
        Some(Mutation {
            program: mutant,
            mp: mp.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{apply_checked, program_and_mp};
    use super::*;

    const SRC: &str = r#"
        class T {
            int f;
            int g() { return f + 1; }
            static void main() {
                T t = new T();
                int a = 3;
                int m = a + t.g();
                System.out.println(m);
            }
        }
    "#;

    #[test]
    fn replaces_binary_with_call_and_adds_helper() {
        // The paper's running example: m = a + t.g() → m = foo0(a, t.g()).
        let (program, mp) = program_and_mp(SRC, "int m = a + t.g();");
        let mutation = apply_checked(&InliningEvoke, &program, &mp);
        let stmt = mjava::path::stmt_at(&mutation.program, &mutation.mp).unwrap();
        let printed = mjava::print_stmt(stmt);
        assert!(printed.contains("T.foo0(a, t.g())"), "{printed}");
        assert!(mutation.program.classes[0].method("foo0").is_some());
        let out = jexec::run_program(&mutation.program, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(out.output, vec!["4"]);
    }

    #[test]
    fn not_applicable_without_binary_expression() {
        let (program, mp) = program_and_mp(SRC, "T t = new T();");
        assert!(!InliningEvoke.is_applicable(&program, &mp));
    }

    #[test]
    fn long_operands_widen_helper_signature() {
        let src = r#"
            class T {
                static void main() {
                    long a = 5L;
                    long m = a * 3L;
                    System.out.println(m);
                }
            }
        "#;
        let (program, mp) = program_and_mp(src, "long m = a * 3L;");
        let mutation = apply_checked(&InliningEvoke, &program, &mp);
        let helper = mutation.program.classes[0].method("foo0").unwrap();
        assert_eq!(helper.ret, Type::Long);
        let out = jexec::run_program(&mutation.program, &jexec::ExecConfig::default()).unwrap();
        assert_eq!(out.output, vec!["15"]);
    }

    #[test]
    fn repeated_application_nests_calls() {
        let (program, mp) = program_and_mp(SRC, "int m = a + t.g();");
        let m1 = apply_checked(&InliningEvoke, &program, &mp);
        // After the first extraction the MP no longer contains a binary
        // expression at the top — but the helper body does; applicability
        // on the MP depends on what remains.
        let printed = mjava::print(&m1.program);
        assert!(printed.contains("foo0"), "{printed}");
    }

    #[test]
    fn evokes_inlining_on_jvm() {
        let (program, mp) = program_and_mp(SRC, "int m = a + t.g();");
        let mutation = apply_checked(&InliningEvoke, &program, &mp);
        let run = jvmsim::run_jvm(
            &mutation.program,
            &jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs(),
            &jvmsim::RunOptions::fuzzing(),
        );
        assert!(
            run.events
                .iter()
                .any(|e| e.kind == jopt::OptEventKind::Inline),
            "no inline events: {:?}",
            run.events
        );
    }
}
