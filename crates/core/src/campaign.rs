//! Campaign driver: many fuzzing rounds over a seed corpus, bug
//! collection with root-cause deduplication, coverage accumulation, and a
//! simulated clock (interpreter steps stand in for wall-clock time).

use crate::corpus::Seed;
use crate::fuzzer::{fuzz, FuzzConfig};
use crate::mutators::MutatorKind;
use crate::oracle::{differential, OracleVerdict};
use crate::variant::Variant;
use jvmsim::{Component, CoverageMap, JvmSpec, RunOptions};
use mjava::Program;
use std::collections::HashSet;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Mutation iterations per seed (paper: 50).
    pub iterations_per_seed: usize,
    /// Variant under test.
    pub variant: Variant,
    /// Number of fuzzing rounds (each round fuzzes one seed to completion
    /// and differential-tests the final mutant).
    pub rounds: usize,
    /// The differential pool (§3.5).
    pub pool: Vec<JvmSpec>,
    /// Base RNG seed; round `r` derives its own seed from it.
    pub rng_seed: u64,
}

impl CampaignConfig {
    /// A small default campaign against the full pool.
    pub fn new(rounds: usize) -> CampaignConfig {
        CampaignConfig {
            iterations_per_seed: 50,
            variant: Variant::Full,
            rounds,
            pool: JvmSpec::differential_pool(),
            rng_seed: 2024,
        }
    }
}

/// One deduplicated bug discovery.
#[derive(Debug, Clone)]
pub struct FoundBug {
    /// The injected bug's id — the root cause (two findings with the same
    /// id are the same bug, as in the paper's Fig. 5b analysis).
    pub id: String,
    /// The affected JIT component.
    pub component: Component,
    /// True for crashes, false for miscompilations.
    pub is_crash: bool,
    /// The JVM the bug was first observed on.
    pub jvm: String,
    /// The seed whose mutation chain found it.
    pub seed: String,
    /// Mutators applied to the seed up to the finding.
    pub mutators: Vec<MutatorKind>,
    /// Cumulative JVM executions when found.
    pub at_execs: u64,
    /// Cumulative simulated time (interpreter steps) when found.
    pub at_steps: u64,
    /// The bug-triggering mutant.
    pub mutant: Program,
}

/// The result of one campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignResult {
    /// Deduplicated bugs in discovery order.
    pub bugs: Vec<FoundBug>,
    /// Total JVM executions.
    pub executions: u64,
    /// Total simulated time.
    pub steps: u64,
    /// Coverage over all executions.
    pub coverage: CoverageMap,
    /// Final-mutant Δ for every completed round (Figures 3/4 data).
    pub final_deltas: Vec<f64>,
}

impl CampaignResult {
    /// Median of the final deltas.
    pub fn median_delta(&self) -> f64 {
        crate::stats::median(&self.final_deltas)
    }
}

fn component_of_miscompile(id: &str) -> Option<Component> {
    jvmsim::bugs::library()
        .into_iter()
        .find(|b| b.id == id)
        .map(|b| b.component)
}

/// Runs a fuzzing campaign.
pub fn run_campaign(seeds: &[Seed], config: &CampaignConfig) -> CampaignResult {
    let mut result = CampaignResult::default();
    let mut seen: HashSet<String> = HashSet::new();
    if seeds.is_empty() || config.pool.is_empty() {
        return result;
    }
    for round in 0..config.rounds {
        let seed = &seeds[round % seeds.len()];
        let guidance = config.pool[round % config.pool.len()].clone();
        let fuzz_config = FuzzConfig {
            max_iterations: config.iterations_per_seed,
            variant: config.variant,
            guidance,
            rng_seed: config
                .rng_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(round as u64),
            weight_scheme: Default::default(),
        };
        let outcome = fuzz(&seed.program, &fuzz_config);
        result.executions += outcome.executions;
        result.steps += outcome.steps;
        result.coverage.merge(&outcome.coverage);
        result.final_deltas.push(outcome.final_delta());

        // Crash during guidance runs (Algorithm 1's early exit).
        if let Some(report) = &outcome.crash {
            if seen.insert(report.bug_id.clone()) {
                result.bugs.push(FoundBug {
                    id: report.bug_id.clone(),
                    component: report.component,
                    is_crash: true,
                    jvm: fuzz_config.guidance.name(),
                    seed: seed.name.clone(),
                    mutators: outcome.mutator_history(),
                    at_execs: result.executions,
                    at_steps: result.steps,
                    mutant: outcome.final_mutant.clone(),
                });
            }
            continue;
        }

        // Differential testing of the final mutant over the whole pool.
        let diff = differential(&outcome.final_mutant, &config.pool, &RunOptions::fuzzing());
        result.executions += diff.executions;
        result.steps += diff.steps;
        result.coverage.merge(&diff.coverage);
        match diff.verdict {
            OracleVerdict::Crash { jvm, report } => {
                if seen.insert(report.bug_id.clone()) {
                    result.bugs.push(FoundBug {
                        id: report.bug_id.clone(),
                        component: report.component,
                        is_crash: true,
                        jvm,
                        seed: seed.name.clone(),
                        mutators: outcome.mutator_history(),
                        at_execs: result.executions,
                        at_steps: result.steps,
                        mutant: outcome.final_mutant.clone(),
                    });
                }
            }
            OracleVerdict::Miscompile { outputs, culprits } => {
                for id in culprits {
                    if seen.insert(id.clone()) {
                        let component = component_of_miscompile(&id)
                            .unwrap_or(Component::OtherJit);
                        result.bugs.push(FoundBug {
                            id,
                            component,
                            is_crash: false,
                            jvm: outputs
                                .first()
                                .map(|(j, _)| j.clone())
                                .unwrap_or_default(),
                            seed: seed.name.clone(),
                            mutators: outcome.mutator_history(),
                            at_execs: result.executions,
                            at_steps: result.steps,
                            mutant: outcome.final_mutant.clone(),
                        });
                    }
                }
            }
            OracleVerdict::Pass | OracleVerdict::Inconclusive(_) => {}
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn small_campaign_finds_at_least_one_bug() {
        let seeds = corpus::builtin();
        let config = CampaignConfig {
            iterations_per_seed: 25,
            rounds: 6,
            ..CampaignConfig::new(6)
        };
        let result = run_campaign(&seeds, &config);
        assert!(result.executions > 0);
        assert!(
            !result.bugs.is_empty(),
            "a guided campaign over the corpus should find something"
        );
        // Dedup: ids unique.
        let mut ids: Vec<_> = result.bugs.iter().map(|b| b.id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), result.bugs.len());
    }

    #[test]
    fn campaigns_are_deterministic() {
        let seeds = corpus::builtin();
        let config = CampaignConfig {
            iterations_per_seed: 10,
            rounds: 3,
            ..CampaignConfig::new(3)
        };
        let a = run_campaign(&seeds, &config);
        let b = run_campaign(&seeds, &config);
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.final_deltas, b.final_deltas);
        assert_eq!(
            a.bugs.iter().map(|x| x.id.clone()).collect::<Vec<_>>(),
            b.bugs.iter().map(|x| x.id.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_inputs_yield_empty_result() {
        let result = run_campaign(&[], &CampaignConfig::new(2));
        assert!(result.bugs.is_empty());
        assert_eq!(result.executions, 0);
    }

    #[test]
    fn bug_discovery_times_are_monotone() {
        let seeds = corpus::builtin();
        let config = CampaignConfig {
            iterations_per_seed: 25,
            rounds: 8,
            ..CampaignConfig::new(8)
        };
        let result = run_campaign(&seeds, &config);
        let times: Vec<u64> = result.bugs.iter().map(|b| b.at_steps).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    }
}
