//! Campaign driver: many fuzzing rounds over a seed corpus, bug
//! collection with root-cause deduplication, coverage accumulation, and a
//! simulated clock (interpreter steps stand in for wall-clock time).
//!
//! Since the supervisor rework, every round runs inside a fault boundary
//! (see [`crate::supervisor`]): panics are contained and classified,
//! faulting rounds are retried and eventually quarantined, budgets stop
//! the campaign gracefully, and an optional JSONL journal makes a killed
//! campaign resumable with bit-identical results.

use crate::corpus::Seed;
use crate::journal::{self, BaselineEntry, CorpusHeader, JournalWriter};
use crate::mutators::MutatorKind;
use crate::supervisor::{run_supervised, CorpusCtx, RoundFailure, SupervisorConfig};
use crate::variant::Variant;
use jcorpus::Vfs;
use jvmsim::{Component, CoverageMap, FaultPlan, JvmSpec};
use mjava::Program;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Mutation iterations per seed (paper: 50).
    pub iterations_per_seed: usize,
    /// Variant under test.
    pub variant: Variant,
    /// Number of fuzzing rounds (each round fuzzes one seed to completion
    /// and differential-tests the final mutant).
    pub rounds: usize,
    /// The differential pool (§3.5).
    pub pool: Vec<JvmSpec>,
    /// Base RNG seed; round `r` derives its own seed from it.
    pub rng_seed: u64,
    /// Fault-handling policy: retries, quarantine, budgets.
    pub supervisor: SupervisorConfig,
    /// Optional deterministic fault injection (robustness testing).
    pub fault: Option<FaultPlan>,
    /// Worker threads executing rounds (1 = the classic serial loop).
    /// Any value produces bit-identical journals and results: workers
    /// speculate rounds ahead and the coordinator merges them in strict
    /// round order (see `supervisor`), so `jobs` buys wall-clock time
    /// only. Not journaled — a journal resumes at any worker count.
    pub jobs: usize,
    /// Concurrent JVM executions inside each differential round
    /// (`--oracle-jobs`; 1 = the classic serial pool loop). Shares one
    /// process-wide worker pool with `jobs`, so the two multiply coverage
    /// of the pipeline without oversubscribing threads. Like `jobs`, any
    /// value is bit-identical (see [`crate::oracle::differential_jobs`])
    /// and it is not journaled.
    pub oracle_jobs: usize,
}

impl CampaignConfig {
    /// A small default campaign against the full pool.
    pub fn new(rounds: usize) -> CampaignConfig {
        CampaignConfig {
            iterations_per_seed: 50,
            variant: Variant::Full,
            rounds,
            pool: JvmSpec::differential_pool(),
            rng_seed: 2024,
            supervisor: SupervisorConfig::default(),
            fault: None,
            jobs: 1,
            oracle_jobs: 1,
        }
    }
}

/// One deduplicated bug discovery.
#[derive(Debug, Clone, PartialEq)]
pub struct FoundBug {
    /// The injected bug's id — the root cause (two findings with the same
    /// id are the same bug, as in the paper's Fig. 5b analysis).
    pub id: String,
    /// The affected JIT component.
    pub component: Component,
    /// True for crashes, false for miscompilations.
    pub is_crash: bool,
    /// The JVM the bug was first observed on.
    pub jvm: String,
    /// The seed whose mutation chain found it.
    pub seed: String,
    /// Mutators applied to the seed up to the finding.
    pub mutators: Vec<MutatorKind>,
    /// Cumulative JVM executions when found.
    pub at_execs: u64,
    /// Cumulative simulated time (interpreter steps) when found.
    pub at_steps: u64,
    /// The bug-triggering mutant.
    pub mutant: Program,
}

/// The result of one campaign.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignResult {
    /// Deduplicated bugs in discovery order.
    pub bugs: Vec<FoundBug>,
    /// Total JVM executions by attempts that completed (productive work).
    pub executions: u64,
    /// Total simulated time spent by completed attempts (productive work).
    pub steps: u64,
    /// Simulated time burned by attempts that faulted and were retried or
    /// given up on. Kept apart from [`CampaignResult::steps`] so retry
    /// overhead is visible rather than silently inflating throughput;
    /// budgets meter the sum of both.
    pub wasted_steps: u64,
    /// JVM executions completed inside attempts that ultimately faulted.
    pub wasted_execs: u64,
    /// Coverage over all executions.
    pub coverage: CoverageMap,
    /// Final-mutant Δ for every completed round (Figures 3/4 data).
    pub final_deltas: Vec<f64>,
    /// Rounds whose differential verdict was inconclusive (fewer than two
    /// comparable outputs).
    pub inconclusive_rounds: u64,
    /// Rounds that exhausted every retry and contributed nothing.
    pub errored_rounds: u64,
    /// Rounds skipped because their seed was quarantined whole.
    pub skipped_rounds: u64,
    /// Total extra attempts spent retrying faulted rounds.
    pub retried_attempts: u64,
    /// Every classified failure, in occurrence order.
    pub round_errors: Vec<RoundFailure>,
    /// `(seed, mutator)` pairs quarantined during the campaign; a `None`
    /// mutator means the seed as a whole.
    pub quarantined: Vec<(String, Option<MutatorKind>)>,
    /// Set when a campaign-wide budget stopped the campaign early.
    pub stopped: Option<RoundFailure>,
    /// Names of corpus entries promoted during the campaign (corpus mode
    /// only), in promotion order.
    pub promotions: Vec<String>,
    /// True when the campaign stopped at a round boundary because a
    /// graceful interrupt (SIGINT/SIGTERM in the CLI) was requested. The
    /// journal written so far resumes bit-identically.
    pub interrupted: bool,
}

impl CampaignResult {
    /// Median of the final deltas.
    pub fn median_delta(&self) -> f64 {
        crate::stats::median(&self.final_deltas)
    }

    /// Rounds that completed normally (executed, not errored or skipped).
    pub fn completed_rounds(&self) -> usize {
        self.final_deltas.len()
    }
}

pub(crate) fn component_of_miscompile(id: &str) -> Option<Component> {
    jvmsim::bugs::library()
        .into_iter()
        .find(|b| b.id == id)
        .map(|b| b.component)
}

/// Live-progress hook: the supervisor calls [`round_finished`] after every
/// executed (non-replayed) round. The CLI uses it to refresh metrics files
/// and the TTY status line mid-campaign.
///
/// [`round_finished`]: CampaignObserver::round_finished
pub trait CampaignObserver {
    /// Called once per live round, after the round's record has been
    /// folded into `result` (and after the gauges were updated).
    fn round_finished(&mut self, round: usize, result: &CampaignResult);
}

/// Runs a fuzzing campaign under the fault supervisor.
pub fn run_campaign(seeds: &[Seed], config: &CampaignConfig) -> CampaignResult {
    run_supervised(seeds, config, None, &[], None, None)
}

/// [`run_campaign`] with a live-progress observer.
pub fn run_campaign_observed(
    seeds: &[Seed],
    config: &CampaignConfig,
    observer: &mut dyn CampaignObserver,
) -> CampaignResult {
    run_supervised(seeds, config, None, &[], Some(observer), None)
}

/// Runs a campaign while checkpointing every round to a JSONL journal at
/// `path` (created or truncated). The journal is self-contained:
/// [`resume_campaign`] needs nothing else.
pub fn run_campaign_with_journal(
    seeds: &[Seed],
    config: &CampaignConfig,
    path: &Path,
) -> Result<CampaignResult, String> {
    run_campaign_with_journal_observed(seeds, config, path, None)
}

/// [`run_campaign_with_journal`] with an optional live-progress observer.
pub fn run_campaign_with_journal_observed(
    seeds: &[Seed],
    config: &CampaignConfig,
    path: &Path,
    observer: Option<&mut dyn CampaignObserver>,
) -> Result<CampaignResult, String> {
    let mut writer = JournalWriter::create(path, config, seeds, None)?;
    Ok(run_supervised(
        seeds,
        config,
        Some(&mut writer),
        &[],
        observer,
        None,
    ))
}

/// Corpus-mode knobs (everything else rides on [`CampaignConfig`]).
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// Final-mutant OBV delta at or above which a round's mutant is
    /// promoted (minimized and admitted as a first-class seed). Bug-finding
    /// rounds promote regardless of delta.
    pub promote_threshold: f64,
    /// When set, run corpus GC after the campaign's flush: entries whose
    /// scheduler energy stayed clamped at the floor for this many
    /// consecutive campaigns are tombstoned (see [`jcorpus::Store::gc`]).
    pub gc_streak: Option<u64>,
}

impl Default for CorpusOptions {
    fn default() -> CorpusOptions {
        CorpusOptions {
            promote_threshold: 20.0,
            gc_streak: None,
        }
    }
}

/// Builds the journal header's corpus section from the store's pre-campaign
/// state. The header (not the live store) is the scheduler baseline on
/// resume, which is what keeps resumption bit-identical.
fn corpus_header(store: &jcorpus::Store, opts: &CorpusOptions) -> Result<CorpusHeader, String> {
    let mut preq = Vec::new();
    for (seed, mutator) in store.quarantine() {
        let mutator = match mutator {
            None => None,
            Some(name) => Some(
                MutatorKind::from_debug_name(name)
                    .ok_or_else(|| format!("corpus quarantine names unknown mutator {name:?}"))?,
            ),
        };
        preq.push((seed.clone(), mutator));
    }
    Ok(CorpusHeader {
        dir: store.dir().display().to_string(),
        promote_threshold: opts.promote_threshold,
        baseline: store
            .entries()
            .iter()
            .map(|e| BaselineEntry {
                name: e.name.clone(),
                fingerprint: e.fingerprint,
                stats: e.stats.clone(),
                floor_streak: e.floor_streak,
            })
            .collect(),
        preq,
    })
}

/// Builds the in-memory corpus context from a journal header and the seed
/// list that accompanies it. `seeds` must be the journal's seed snapshot
/// (live: the store's current entries; resume: the journaled seeds) so the
/// scheduler sees exactly the programs the original campaign saw.
fn build_ctx<'a>(
    store: &'a mut jcorpus::Store,
    header: &CorpusHeader,
    seeds: &[Seed],
) -> Result<CorpusCtx<'a>, String> {
    let mut scheduler = jcorpus::PowerScheduler::new();
    let mut fingerprints = HashSet::new();
    let blocked: HashSet<&str> = header
        .preq
        .iter()
        .filter(|(_, m)| m.is_none())
        .map(|(s, _)| s.as_str())
        .collect();
    for entry in &header.baseline {
        scheduler.admit(
            &entry.name,
            entry.stats.clone(),
            blocked.contains(entry.name.as_str()),
        );
        fingerprints.insert(entry.fingerprint);
    }
    let mut programs = HashMap::new();
    for seed in seeds {
        programs.insert(seed.name.clone(), seed.program.clone());
    }
    for entry in &header.baseline {
        if !programs.contains_key(&entry.name) {
            return Err(format!(
                "corpus baseline entry {:?} has no program in the journal seeds",
                entry.name
            ));
        }
    }
    let baseline_streaks = header
        .baseline
        .iter()
        .map(|e| (e.name.clone(), e.floor_streak))
        .collect();
    Ok(CorpusCtx {
        store,
        scheduler,
        programs,
        fingerprints,
        promote_threshold: header.promote_threshold,
        preq: header.preq.clone(),
        baseline_streaks,
    })
}

/// Writes the campaign's outcome back to the store: absolute per-entry
/// stats (idempotent — a resume that replays the same rounds flushes the
/// same numbers), floor streaks recomputed from the journal baseline (so
/// resume flushes the same streaks too), newly quarantined pairs, an
/// optional GC pass, and a single atomic save.
fn flush_corpus(
    ctx: CorpusCtx<'_>,
    result: &CampaignResult,
    gc_streak: Option<u64>,
) -> Result<(), String> {
    let CorpusCtx {
        store,
        scheduler,
        baseline_streaks,
        ..
    } = ctx;
    for name in scheduler.names() {
        if let Some(stats) = scheduler.stats(name) {
            let baseline = baseline_streaks.get(name).copied().unwrap_or(0);
            let streak = if stats.schedules > 0 && jcorpus::energy(stats) <= jcorpus::ENERGY_FLOOR {
                baseline + 1
            } else {
                0
            };
            store.set_stats(name, stats.clone())?;
            store.set_floor_streak(name, streak)?;
        }
    }
    let pairs: Vec<(String, Option<String>)> = result
        .quarantined
        .iter()
        .map(|(s, m)| (s.clone(), m.map(|k| format!("{k:?}"))))
        .collect();
    store.merge_quarantine(&pairs);
    if let Some(streak) = gc_streak {
        store.gc(streak);
    }
    store.save()
}

/// Runs a campaign over a persistent corpus store: the power scheduler
/// replaces round-robin seed rotation, promoted mutants are minimized and
/// admitted back into the store, and the store's quarantine carries across
/// campaigns. With a journal path the campaign checkpoints every round and
/// [`resume_campaign`] restores corpus mode from the journal header.
pub fn run_corpus_campaign(
    store: &mut jcorpus::Store,
    config: &CampaignConfig,
    opts: &CorpusOptions,
    journal: Option<&Path>,
    observer: Option<&mut dyn CampaignObserver>,
) -> Result<CampaignResult, String> {
    run_corpus_campaign_with(store, config, opts, journal, observer, jcorpus::vfs::real())
}

/// [`run_corpus_campaign`] with the *journal's* I/O routed through `fs`.
/// The store keeps whatever [`Vfs`] it was opened with, so a chaos test
/// can crash either side (or both) of a campaign's persistence.
pub fn run_corpus_campaign_with(
    store: &mut jcorpus::Store,
    config: &CampaignConfig,
    opts: &CorpusOptions,
    journal: Option<&Path>,
    observer: Option<&mut dyn CampaignObserver>,
    fs: Arc<dyn Vfs>,
) -> Result<CampaignResult, String> {
    if store.is_empty() {
        return Err(format!(
            "corpus store at {} is empty: run `corpus init` or `corpus import` first",
            store.dir().display()
        ));
    }
    let header = corpus_header(store, opts)?;
    let seeds = crate::corpus::seeds_from_store(store);
    let mut writer = match journal {
        Some(path) => Some(JournalWriter::create_with(
            path,
            config,
            &seeds,
            Some(&header),
            fs,
        )?),
        None => None,
    };
    let mut ctx = build_ctx(store, &header, &seeds)?;
    let result = run_supervised(
        &seeds,
        config,
        writer.as_mut(),
        &[],
        observer,
        Some(&mut ctx),
    );
    flush_corpus(ctx, &result, opts.gc_streak)?;
    Ok(result)
}

/// Resumes a journaled campaign: checkpointed rounds are replayed from the
/// journal (no re-execution), the rest are run and appended. The combined
/// result is bit-identical to an uninterrupted run because replay and live
/// execution share one accounting code path. A truncated trailing line
/// (killed mid-write) is dropped and its round re-executed.
pub fn resume_campaign(path: &Path) -> Result<CampaignResult, String> {
    resume_campaign_extended(path, None, None, None, None)
}

/// [`resume_campaign`] that can also *extend* a finished campaign: when
/// `rounds_override` is larger than the journaled round count, the resumed
/// campaign runs to the new total and the rewritten journal header records
/// it (so a later resume continues from the extended target). Shrinking
/// below the number of already-journaled rounds is an error — those rounds
/// happened and cannot be unhappened.
///
/// `jobs_override` and `oracle_jobs_override` pick the round- and
/// oracle-level worker counts for the remaining live rounds; the journal
/// records neither (any combination yields identical output).
pub fn resume_campaign_extended(
    path: &Path,
    rounds_override: Option<usize>,
    jobs_override: Option<usize>,
    oracle_jobs_override: Option<usize>,
    observer: Option<&mut dyn CampaignObserver>,
) -> Result<CampaignResult, String> {
    let contents = journal::read_journal(path)?;
    let mut config = contents.config;
    if let Some(jobs) = jobs_override {
        config.jobs = jobs.max(1);
    }
    if let Some(oracle_jobs) = oracle_jobs_override {
        config.oracle_jobs = oracle_jobs.max(1);
    }
    if let Some(rounds) = rounds_override {
        if rounds < contents.records.len() {
            return Err(format!(
                "cannot shrink campaign to {rounds} rounds: journal already holds {}",
                contents.records.len()
            ));
        }
        config.rounds = rounds;
    }
    // Rewrite the journal up to the last intact record so a previously
    // truncated tail can never corrupt the middle of the resumed file.
    let mut writer =
        JournalWriter::create(path, &config, &contents.seeds, contents.corpus.as_ref())?;
    for record in &contents.records {
        writer.write_round(record)?;
    }
    match &contents.corpus {
        None => Ok(run_supervised(
            &contents.seeds,
            &config,
            Some(&mut writer),
            &contents.records,
            observer,
            None,
        )),
        Some(header) => {
            // Corpus mode: reopen the store and rebuild the scheduler from
            // the *header* baseline (the store's stats may already include
            // this campaign's partial flush — the header is the pre-campaign
            // truth). Replay then re-applies every journaled round, so the
            // resumed state matches an uninterrupted run exactly.
            let mut store = jcorpus::Store::open(Path::new(&header.dir)).map_err(|e| {
                format!(
                    "cannot resume: the journal's corpus store {} is unusable ({e}); \
                     restore the store directory or rerun with a fresh --corpus",
                    header.dir
                )
            })?;
            let mut ctx = build_ctx(&mut store, header, &contents.seeds)?;
            let result = run_supervised(
                &contents.seeds,
                &config,
                Some(&mut writer),
                &contents.records,
                observer,
                Some(&mut ctx),
            );
            // Resume never auto-GCs: GC policy belongs to the live
            // invocation (`--gc-streak`), not to the journal.
            flush_corpus(ctx, &result, None)?;
            Ok(result)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use crate::supervisor::{BudgetKind, RoundError};
    use jvmsim::VmFault;

    #[test]
    fn small_campaign_finds_at_least_one_bug() {
        let seeds = corpus::builtin();
        let config = CampaignConfig {
            iterations_per_seed: 25,
            rounds: 6,
            ..CampaignConfig::new(6)
        };
        let result = run_campaign(&seeds, &config);
        assert!(result.executions > 0);
        assert!(
            !result.bugs.is_empty(),
            "a guided campaign over the corpus should find something"
        );
        // Dedup: ids unique.
        let mut ids: Vec<_> = result.bugs.iter().map(|b| b.id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), result.bugs.len());
        // A fault-free campaign reports a clean supervisor ledger.
        assert_eq!(result.errored_rounds, 0);
        assert_eq!(result.skipped_rounds, 0);
        assert!(result.round_errors.is_empty());
        assert!(result.quarantined.is_empty());
        assert!(result.stopped.is_none());
    }

    #[test]
    fn campaigns_are_deterministic() {
        let seeds = corpus::builtin();
        let config = CampaignConfig {
            iterations_per_seed: 10,
            rounds: 3,
            ..CampaignConfig::new(3)
        };
        let a = run_campaign(&seeds, &config);
        let b = run_campaign(&seeds, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_inputs_yield_empty_result() {
        let result = run_campaign(&[], &CampaignConfig::new(2));
        assert!(result.bugs.is_empty());
        assert_eq!(result.executions, 0);
    }

    #[test]
    fn bug_discovery_times_are_monotone() {
        let seeds = corpus::builtin();
        let config = CampaignConfig {
            iterations_per_seed: 25,
            rounds: 8,
            ..CampaignConfig::new(8)
        };
        let result = run_campaign(&seeds, &config);
        let times: Vec<u64> = result.bugs.iter().map(|b| b.at_steps).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    }

    #[test]
    fn execution_budget_stops_campaign_gracefully() {
        let seeds = corpus::builtin();
        let mut config = CampaignConfig {
            iterations_per_seed: 10,
            rounds: 50,
            ..CampaignConfig::new(50)
        };
        config.supervisor.max_executions = Some(1);
        let result = run_campaign(&seeds, &config);
        // Round 0 runs (budget not yet exceeded), round 1 is refused.
        assert_eq!(result.completed_rounds(), 1);
        let stopped = result.stopped.expect("campaign must report the stop");
        assert_eq!(stopped.round, 1);
        assert!(matches!(
            stopped.error,
            RoundError::BudgetExhausted {
                budget: BudgetKind::CampaignExecutions,
                ..
            }
        ));
    }

    #[test]
    fn round_deadline_faults_heavy_rounds() {
        let seeds = corpus::builtin();
        let mut config = CampaignConfig {
            iterations_per_seed: 10,
            rounds: 2,
            ..CampaignConfig::new(2)
        };
        config.supervisor.round_step_deadline = Some(1); // nothing fits
        config.supervisor.max_retries = 1;
        config.supervisor.quarantine_threshold = 1;
        let result = run_campaign(&seeds, &config);
        assert_eq!(result.completed_rounds(), 0);
        assert!(result.errored_rounds + result.skipped_rounds == 2);
        assert!(result.round_errors.iter().any(|f| matches!(
            f.error,
            RoundError::BudgetExhausted {
                budget: BudgetKind::RoundSteps,
                ..
            }
        )));
        // Deadline faults are unattributable to a mutator, so the seed as
        // a whole is quarantined and later rounds on it are skipped.
        assert!(result.quarantined.iter().any(|(_, m)| m.is_none()));
    }

    #[test]
    fn injected_build_failures_are_contained() {
        let seeds = corpus::builtin();
        let mut config = CampaignConfig {
            iterations_per_seed: 5,
            rounds: 4,
            ..CampaignConfig::new(4)
        };
        // Every VM run reports a build failure → every seed looks invalid.
        config.fault = Some(FaultPlan::new(11, 1.0).with_only(VmFault::BuildFailure));
        config.supervisor.max_retries = 1;
        config.supervisor.quarantine_threshold = 1;
        let result = run_campaign(&seeds, &config);
        assert_eq!(result.completed_rounds(), 0);
        assert!(result.errored_rounds > 0);
        assert!(result
            .round_errors
            .iter()
            .all(|f| matches!(f.error, RoundError::BuildFailure { .. })));
        assert!(result.bugs.is_empty());
    }
}
