//! Seed corpus management.
//!
//! The paper seeds from OpenJDK's regression test suites; this module
//! combines the built-in handcrafted seeds ([`mjava::samples`]) with a
//! deterministic generator of additional regression-test-shaped programs,
//! so campaigns can run over corpora of any size.

use mjava::{BinOp, Block, Class, Expr, LValue, Method, Param, Program, Stmt, Type};
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng as _};

/// A named seed.
#[derive(Debug, Clone)]
pub struct Seed {
    /// Stable name for reports.
    pub name: String,
    /// The program.
    pub program: Program,
}

/// The built-in corpus (ten handcrafted seeds).
pub fn builtin() -> Vec<Seed> {
    mjava::samples::all_seeds()
        .into_iter()
        .map(|s| Seed {
            name: s.name.to_string(),
            program: s.program,
        })
        .collect()
}

/// The built-in corpus extended with `extra` generated seeds.
pub fn corpus(extra: usize, rng_seed: u64) -> Vec<Seed> {
    let mut seeds = builtin();
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    for i in 0..extra {
        seeds.push(Seed {
            name: format!("gen_{i:03}"),
            program: generate(&mut rng, i),
        });
    }
    seeds
}

fn parsed(seeds: &[(&str, &str)]) -> Vec<Seed> {
    seeds
        .iter()
        .map(|(name, src)| Seed {
            name: (*name).to_string(),
            program: mjava::parse(src)
                .unwrap_or_else(|e| panic!("built-in seed {name} failed to parse: {e:?}")),
        })
        .collect()
}

/// Seeds biased toward 64-bit arithmetic at the representation
/// boundaries: values whose low 32 bits collide with small ints, overflow
/// wrap-around, and long-driven branches. Used by the substrate golden
/// campaigns, where the threaded executor's untagged value encoding has
/// the most room to go wrong.
pub fn long_heavy_seeds() -> Vec<Seed> {
    parsed(&[
        (
            "long_boundary_sum",
            "class L { static void main() { long acc = 2147483646L; for (int i = 0; i < 6; i++) { acc = acc + 1L; System.out.println(acc); } acc = acc * 2L; System.out.println(acc); } }",
        ),
        (
            "long_overflow_wrap",
            "class L { static long scale(long x, int k) { return x * k; } static void main() { long v = 9223372036854775807L; v = L.scale(v, 3) + 2L; System.out.println(v); System.out.println(v / 7L); System.out.println(v % 7L); } }",
        ),
        (
            "long_branchy",
            "class L { static void main() { long hi = 4294967296L; long lo = 1L; int n = 0; for (int i = 0; i < 12; i++) { if (lo < hi) { lo = lo * 4L; n = n + 1; } else { lo = lo - hi; } } System.out.println(lo); System.out.println(n); } }",
        ),
    ])
}

/// Seeds biased toward deep and dense call trees: recursion near the
/// depth limit, mutual recursion with mixed-width arguments, and hot
/// loops over tiny leaf methods right at the inline-size threshold.
pub fn deep_call_seeds() -> Vec<Seed> {
    parsed(&[
        (
            "deep_recursion",
            "class D { static long down(int n, long acc) { if (n < 1) { return acc; } return D.down(n - 1, acc + n); } static void main() { System.out.println(D.down(200, 0L)); } }",
        ),
        (
            "mutual_recursion",
            "class D { static int even(int n) { if (n < 1) { return 1; } return D.odd(n - 1); } static int odd(int n) { if (n < 1) { return 0; } return D.even(n - 1); } static void main() { System.out.println(D.even(120) + D.odd(121)); } }",
        ),
        (
            "leaf_storm",
            "class D { static int t1(int a) { return a + 1; } static int t2(int a, int b) { return a * b - 1; } static long t3(long a, int b) { return a + b; } static void main() { long s = 0L; for (int i = 0; i < 60; i++) { s = s + D.t3(s, D.t2(D.t1(i), 3)); } System.out.println(s); } }",
        ),
    ])
}

/// Seeds biased toward the reflective call path: `Class.forName` /
/// `getDeclaredMethod` / `invoke` chains on static and instance targets,
/// in loops, with boxed values crossing the reflective boundary.
pub fn reflection_heavy_seeds() -> Vec<Seed> {
    parsed(&[
        (
            "reflect_static_loop",
            "class R { static int twice(int x) { return x + x; } static void main() { int s = 1; for (int i = 0; i < 8; i++) { s = s + R.twice(s); } System.out.println(Class.forName(\"R\").getDeclaredMethod(\"twice\").invoke(null, s)); } }",
        ),
        (
            "reflect_instance_state",
            "class R { int f; int bump(int d) { f = f + d; return f; } static void main() { R r = new R(); for (int i = 0; i < 10; i++) { Class.forName(\"R\").getDeclaredMethod(\"bump\").invoke(r, i); } System.out.println(r.f); } }",
        ),
        (
            "reflect_boxed_mix",
            "class R { static int unwrap(Integer b) { return b.intValue() + 1; } static void main() { Integer b = Integer.valueOf(20); System.out.println(R.unwrap(b)); System.out.println(Class.forName(\"R\").getDeclaredMethod(\"unwrap\").invoke(null, b)); } }",
        ),
    ])
}

/// Adapts a corpus store's entries to the campaign seed list, preserving
/// store (admission) order so schedulers index entries stably.
pub fn seeds_from_store(store: &jcorpus::Store) -> Vec<Seed> {
    store
        .entries()
        .iter()
        .enumerate()
        .map(|(i, e)| Seed {
            name: e.name.clone(),
            program: store
                .program(&e.name)
                .unwrap_or_else(|| panic!("store entry {i} has no program"))
                .clone(),
        })
        .collect()
}

/// The outcome of importing seeds into a store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImportOutcome {
    /// Names admitted as fresh entries, in admission order.
    pub admitted: Vec<String>,
    /// `(candidate name, existing entry)` pairs rejected as behavioural
    /// duplicates (identical coverage/OBV fingerprint).
    pub deduped: Vec<(String, String)>,
}

/// Fingerprints and admits `seeds` into the store (skipping behavioural
/// duplicates). Fails fast on a seed the reference JVM cannot run — an
/// invalid seed in a persistent corpus would poison every later campaign.
///
/// Fingerprints are memoized by source hash: a candidate whose printed
/// source matches an existing store entry reuses that entry's recorded
/// fingerprint instead of re-executing the reference JVM, so re-importing
/// an already-imported directory costs prints, not executions.
pub fn import_seeds(
    store: &mut jcorpus::Store,
    seeds: &[Seed],
    provenance: jcorpus::Provenance,
) -> Result<ImportOutcome, String> {
    let mut outcome = ImportOutcome::default();
    for seed in seeds {
        let fingerprint = match store.memoized_fingerprint(&seed.program) {
            Some(fp) => fp,
            None => {
                jcorpus::fingerprint(&seed.program)
                    .map_err(|e| format!("seed {:?} rejected: {e}", seed.name))?
                    .fingerprint
            }
        };
        match store.admit(&seed.name, &seed.program, fingerprint, provenance, None) {
            jcorpus::Admission::Fresh(name) => outcome.admitted.push(name),
            jcorpus::Admission::Duplicate(existing) => {
                outcome.deduped.push((seed.name.clone(), existing));
            }
        }
    }
    Ok(outcome)
}

/// Generates one deterministic, regression-test-shaped program: a class
/// with a static accumulator, a small `work` method built from statement
/// templates, a hot loop in `main`, and a final print. The class name is
/// derived from `index`, not the RNG — RNG-derived names collided across
/// seeds (birthday bound on a 1000-name space), which made quarantine,
/// scheduling, and store entries ambiguous.
///
/// Seeds are rejection-sampled against the differential pool: a seed
/// that already crashes or miscompiles a JVM would make every mutant
/// derived from it "rediscover" that bug, so such candidates are
/// discarded and regenerated (still deterministic — a pure function of
/// the RNG stream).
pub fn generate(rng: &mut SmallRng, index: usize) -> Program {
    loop {
        let candidate = generate_candidate(rng, index);
        if is_clean_on_pool(&candidate) {
            return candidate;
        }
    }
}

fn is_clean_on_pool(program: &Program) -> bool {
    jvmsim::JvmSpec::differential_pool().iter().all(|spec| {
        let run = jvmsim::run_jvm(program, spec, &jvmsim::RunOptions::fuzzing());
        matches!(run.verdict, jvmsim::Verdict::Completed(_)) && run.miscompiled_by.is_empty()
    })
}

fn generate_candidate(rng: &mut SmallRng, index: usize) -> Program {
    let class_name = format!("Gen{index}");
    let mut body: Vec<Stmt> = Vec::new();
    // Local state.
    body.push(Stmt::Decl {
        name: "a".into(),
        ty: Type::Int,
        init: Some(Expr::bin(
            BinOp::Mul,
            Expr::var("i"),
            Expr::Int(rng.gen_range(2..9)),
        )),
    });
    let n_stmts = rng.gen_range(2..6);
    for k in 0..n_stmts {
        body.push(random_stmt(rng, k));
    }
    // Fold into the accumulator, keeping values bounded.
    body.push(Stmt::Assign {
        target: LValue::StaticField(class_name.clone(), "acc".into()),
        value: Expr::bin(
            BinOp::Add,
            Expr::StaticField(class_name.clone(), "acc".into()),
            Expr::bin(BinOp::Rem, Expr::var("a"), Expr::Int(rng.gen_range(5..23))),
        ),
    });
    let work = Method {
        name: "work".into(),
        params: vec![Param {
            name: "i".into(),
            ty: Type::Int,
        }],
        ret: Type::Void,
        is_static: true,
        is_sync: false,
        body: Block(body),
    };
    let trip = rng.gen_range(500..2_500);
    let main = Method {
        name: "main".into(),
        params: vec![],
        ret: Type::Void,
        is_static: true,
        is_sync: false,
        body: Block(vec![
            Stmt::For {
                init: Some(Box::new(Stmt::Decl {
                    name: "i".into(),
                    ty: Type::Int,
                    init: Some(Expr::Int(0)),
                })),
                cond: Expr::bin(BinOp::Lt, Expr::var("i"), Expr::Int(trip)),
                update: Some(Box::new(Stmt::Assign {
                    target: LValue::Var("i".into()),
                    value: Expr::bin(BinOp::Add, Expr::var("i"), Expr::Int(1)),
                })),
                body: Block(vec![Stmt::Expr(Expr::Call(mjava::Call {
                    target: mjava::CallTarget::Static(class_name.clone()),
                    method: "work".into(),
                    args: vec![Expr::var("i")],
                }))]),
            },
            Stmt::Print(Expr::StaticField(class_name.clone(), "acc".into())),
        ]),
    };
    let mut class = Class::new(class_name);
    class.fields.push(mjava::Field {
        name: "acc".into(),
        ty: Type::Int,
        is_static: true,
        init: None,
    });
    class.methods.push(work);
    class.methods.push(main);
    Program {
        classes: vec![class],
    }
}

/// A statement template over the locals `i` (param) and `a`.
fn random_stmt(rng: &mut SmallRng, k: usize) -> Stmt {
    match rng.gen_range(0..5u8) {
        0 => Stmt::Assign {
            target: LValue::Var("a".into()),
            value: Expr::bin(
                BinOp::Add,
                Expr::var("a"),
                Expr::bin(BinOp::Rem, Expr::var("i"), Expr::Int(rng.gen_range(2..12))),
            ),
        },
        1 => Stmt::If {
            cond: Expr::bin(
                BinOp::Lt,
                Expr::bin(BinOp::Rem, Expr::var("i"), Expr::Int(rng.gen_range(3..9))),
                Expr::Int(rng.gen_range(1..4)),
            ),
            then_b: Block(vec![Stmt::Assign {
                target: LValue::Var("a".into()),
                value: Expr::bin(BinOp::Add, Expr::var("a"), Expr::Int(rng.gen_range(1..9))),
            }]),
            else_b: None,
        },
        2 => Stmt::Decl {
            name: format!("t{k}"),
            ty: Type::Int,
            init: Some(Expr::bin(
                BinOp::BitAnd,
                Expr::var("a"),
                Expr::Int(rng.gen_range(1..64)),
            )),
        },
        3 => Stmt::For {
            init: Some(Box::new(Stmt::Decl {
                name: format!("j{k}"),
                ty: Type::Int,
                init: Some(Expr::Int(0)),
            })),
            cond: Expr::bin(
                BinOp::Lt,
                Expr::var(format!("j{k}")),
                Expr::Int(rng.gen_range(2..6)),
            ),
            update: Some(Box::new(Stmt::Assign {
                target: LValue::Var(format!("j{k}")),
                value: Expr::bin(BinOp::Add, Expr::var(format!("j{k}")), Expr::Int(1)),
            })),
            body: Block(vec![Stmt::Assign {
                target: LValue::Var("a".into()),
                value: Expr::bin(BinOp::Add, Expr::var("a"), Expr::var(format!("j{k}"))),
            }]),
        },
        _ => Stmt::Assign {
            target: LValue::Var("a".into()),
            value: Expr::bin(
                BinOp::BitXor,
                Expr::var("a"),
                Expr::bin(BinOp::Shr, Expr::var("i"), Expr::Int(rng.gen_range(1..4))),
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_corpus_is_nonempty() {
        assert_eq!(builtin().len(), 10);
    }

    #[test]
    fn generated_seeds_execute_cleanly_and_deterministically() {
        let mut rng = SmallRng::seed_from_u64(9);
        for i in 0..20 {
            let p = generate(&mut rng, i);
            let printed = mjava::print(&p);
            let reparsed = mjava::parse(&printed).expect("generated seed parses");
            assert_eq!(reparsed, p);
            let out = jexec::run_program(&p, &jexec::ExecConfig::default())
                .expect("generated seed builds");
            assert!(
                out.is_clean(),
                "generated seed errored: {:?}\n{printed}",
                out.error
            );
            assert_eq!(out.output.len(), 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&mut SmallRng::seed_from_u64(4), 7);
        let b = generate(&mut SmallRng::seed_from_u64(4), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn generated_class_names_are_unique_across_seeds() {
        // Regression: class names used to be drawn from a 1000-name RNG
        // space, so large corpora collided (two seeds sharing a class name).
        let mut rng = SmallRng::seed_from_u64(3);
        let mut names = std::collections::HashSet::new();
        for i in 0..100 {
            let p = generate(&mut rng, i);
            for class in &p.classes {
                assert!(
                    names.insert(class.name.clone()),
                    "duplicate class name {:?} at seed {i}",
                    class.name
                );
            }
        }
    }

    #[test]
    fn corpus_extends_builtin() {
        let c = corpus(5, 1);
        assert_eq!(c.len(), 15);
        let mut names: Vec<_> = c.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 15, "names must be unique");
    }

    #[test]
    fn generated_seeds_do_not_trigger_bugs() {
        let mut rng = SmallRng::seed_from_u64(77);
        for i in 0..6 {
            let p = generate(&mut rng, i);
            for spec in jvmsim::JvmSpec::differential_pool() {
                let run = jvmsim::run_jvm(&p, &spec, &jvmsim::RunOptions::fuzzing());
                assert!(
                    matches!(run.verdict, jvmsim::Verdict::Completed(_)),
                    "generated seed crashed {}: {}\n{}",
                    spec.name(),
                    run,
                    mjava::print(&p)
                );
                assert!(run.miscompiled_by.is_empty());
            }
        }
    }
}
