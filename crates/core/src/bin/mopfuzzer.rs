//! The MopFuzzer command-line tool — the analogue of the artifact's
//! `MopFuzzer.jar` (paper Appendix A.5).
//!
//! ```text
//! mopfuzzer --project_path benchmarks/ --target_case Test0001 \
//!           --jdk HotSpur-17,J9-17 --enable_profile_guide true \
//!           [--iterations 50] [--rng 0] [--out mutants/]
//! ```
//!
//! `--project_path` is a directory of `.java` files in the MiniJava
//! subset (or is omitted to use the built-in corpus); `--target_case`
//! picks one file/seed by name; `--jdk` names the simulated JVMs to
//! test, `family-version` style. Mutants and per-mutant logs are written
//! under `--out` (default `mutants/`), mirroring the artifact's layout.
//!
//! Passing `--rounds N` switches to supervised-campaign mode: rounds run
//! inside a fault boundary with budgets and quarantine, optionally
//! checkpointed to a JSONL journal (`--journal FILE`) that
//! `--resume FILE` continues with bit-identical results.

use jvmsim::{FaultPlan, JvmSpec, RunOptions};
use mopfuzzer::{
    differential, fuzz, resume_campaign_extended, run_campaign_observed,
    run_campaign_with_journal_observed, CampaignConfig, CampaignObserver, CampaignResult,
    FuzzConfig, OracleVerdict, SupervisorConfig, Variant,
};
use std::collections::HashMap;
use std::io::{IsTerminal, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    let outcome = if let Some(journal) = options.resume.clone() {
        run_resume(&journal, &options)
    } else if options.rounds.is_some() {
        run_campaign_mode(&options)
    } else {
        run(&options)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "MopFuzzer (Rust reproduction)\n\
         \n\
         USAGE:\n\
           mopfuzzer [--project_path DIR] [--target_case NAME]\n\
                     [--jdk SPEC[,SPEC..]] [--enable_profile_guide true|false]\n\
                     [--iterations N] [--rng SEED] [--out DIR]\n\
           mopfuzzer --rounds N [--journal FILE] [campaign options..]\n\
           mopfuzzer --resume FILE\n\
         \n\
         OPTIONS:\n\
           --project_path DIR      directory of .java seed files (MiniJava subset);\n\
                                   omitted = built-in corpus\n\
           --target_case NAME      fuzz only the named seed/file\n\
           --jdk SPEC,..           simulated JVMs, e.g. HotSpur-17,HotSpur-mainline,J9-11\n\
                                   (default: the full differential pool)\n\
           --enable_profile_guide  true (default) = Eq.1-3 guidance; false = MopFuzzer_g\n\
           --iterations N          mutation iterations per seed (default 50)\n\
           --rng SEED              RNG seed (default 0)\n\
           --out DIR               where mutants and logs are written (default mutants/)\n\
         \n\
         CAMPAIGN MODE (fault-supervised):\n\
           --rounds N              run a supervised campaign of N rounds\n\
           --journal FILE          checkpoint every round to a JSONL journal\n\
           --resume FILE           resume a journaled campaign (bit-identical);\n\
                                   with --rounds N > the journaled total, the\n\
                                   finished campaign is *extended* to N rounds\n\
           --metrics-out FILE      telemetry: append a JSONL metrics snapshot to\n\
                                   FILE after every round, keep a Prometheus\n\
                                   text export in FILE.prom, and print a\n\
                                   human-readable report at campaign end\n\
           --max-steps N           stop after N interpreter steps (simulated time)\n\
           --max-execs N           stop after N JVM executions\n\
           --round-deadline N      fail rounds exceeding N steps\n\
           --retries N             retries per faulted round (default 2)\n\
           --quarantine-threshold N  failed rounds before a (seed, mutator)\n\
                                   pair is quarantined (default 2)\n\
           --fault-rate F          inject faults at rate F (0.0-1.0; testing)\n\
           --fault-seed SEED       fault-injection seed (default 0)"
    );
}

struct CliOptions {
    project_path: Option<PathBuf>,
    target_case: Option<String>,
    jdks: Vec<JvmSpec>,
    guided: bool,
    iterations: usize,
    rng: u64,
    out: PathBuf,
    rounds: Option<usize>,
    journal: Option<PathBuf>,
    resume: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    supervisor: SupervisorConfig,
    fault: Option<FaultPlan>,
}

fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut map: HashMap<&str, &str> = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("unexpected argument {key:?}"));
        };
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        let key: &'static str = match name {
            "project_path" => "project_path",
            "target_case" => "target_case",
            "jdk" => "jdk",
            "enable_profile_guide" => "enable_profile_guide",
            "iterations" => "iterations",
            "rng" => "rng",
            "out" => "out",
            "rounds" => "rounds",
            "journal" => "journal",
            "resume" => "resume",
            "metrics-out" => "metrics-out",
            "max-steps" => "max-steps",
            "max-execs" => "max-execs",
            "round-deadline" => "round-deadline",
            "retries" => "retries",
            "quarantine-threshold" => "quarantine-threshold",
            "fault-rate" => "fault-rate",
            "fault-seed" => "fault-seed",
            other => return Err(format!("unknown option --{other}")),
        };
        map.insert(key, value);
    }
    let jdks = match map.get("jdk") {
        None => JvmSpec::differential_pool(),
        Some(spec) => spec
            .split(',')
            .map(JvmSpec::from_name)
            .collect::<Result<Vec<_>, _>>()?,
    };
    fn num<T: std::str::FromStr>(
        map: &HashMap<&str, &str>,
        key: &str,
    ) -> Result<Option<T>, String> {
        map.get(key)
            .map(|v| v.parse().map_err(|_| format!("bad --{key}")))
            .transpose()
    }
    let mut supervisor = SupervisorConfig {
        max_steps: num(&map, "max-steps")?,
        max_executions: num(&map, "max-execs")?,
        round_step_deadline: num(&map, "round-deadline")?,
        ..SupervisorConfig::default()
    };
    if let Some(retries) = num(&map, "retries")? {
        supervisor.max_retries = retries;
    }
    if let Some(threshold) = num(&map, "quarantine-threshold")? {
        supervisor.quarantine_threshold = threshold;
    }
    let fault = match num::<f64>(&map, "fault-rate")? {
        None => None,
        Some(rate) if (0.0..=1.0).contains(&rate) => {
            Some(FaultPlan::new(num(&map, "fault-seed")?.unwrap_or(0), rate))
        }
        Some(_) => return Err("bad --fault-rate (expected 0.0-1.0)".to_string()),
    };
    Ok(CliOptions {
        project_path: map.get("project_path").map(PathBuf::from),
        target_case: map.get("target_case").map(|s| s.to_string()),
        jdks,
        guided: map
            .get("enable_profile_guide")
            .is_none_or(|v| *v != "false"),
        iterations: num(&map, "iterations")?.unwrap_or(50),
        rng: num(&map, "rng")?.unwrap_or(0),
        out: map
            .get("out")
            .map_or_else(|| PathBuf::from("mutants"), PathBuf::from),
        rounds: num(&map, "rounds")?,
        journal: map.get("journal").map(PathBuf::from),
        resume: map.get("resume").map(PathBuf::from),
        metrics_out: map.get("metrics-out").map(PathBuf::from),
        supervisor,
        fault,
    })
}

fn load_seeds(options: &CliOptions) -> Result<Vec<mopfuzzer::Seed>, String> {
    let mut seeds = match &options.project_path {
        None => mopfuzzer::corpus::builtin(),
        Some(dir) => {
            let mut out = Vec::new();
            let entries = std::fs::read_dir(dir)
                .map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            let mut paths: Vec<PathBuf> = entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "java"))
                .collect();
            paths.sort();
            for path in paths {
                let src = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                let program = mjava::parse(&src).map_err(|e| format!("{}: {e}", path.display()))?;
                out.push(mopfuzzer::Seed {
                    name: path
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_else(|| "case".into()),
                    program,
                });
            }
            out
        }
    };
    if let Some(case) = &options.target_case {
        seeds.retain(|s| &s.name == case);
        if seeds.is_empty() {
            return Err(format!("no seed named {case:?}"));
        }
    }
    if seeds.is_empty() {
        return Err("no seeds to fuzz".into());
    }
    Ok(seeds)
}

/// The `--metrics-out` sink: after every round it appends one JSONL
/// telemetry snapshot to the metrics file, rewrites the Prometheus text
/// export next to it (`FILE.prom`), and — when stderr is a TTY — redraws
/// a one-line live status. Requires a `jtelemetry` session installed on
/// the campaign thread.
struct MetricsSink {
    jsonl: PathBuf,
    prom: PathBuf,
    tty_status: bool,
}

impl MetricsSink {
    fn create(path: &Path) -> Result<MetricsSink, String> {
        let mut prom = path.as_os_str().to_owned();
        prom.push(".prom");
        // Truncate up front so a rerun never appends to stale snapshots.
        std::fs::write(path, "").map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(MetricsSink {
            jsonl: path.to_path_buf(),
            prom: PathBuf::from(prom),
            tty_status: std::io::stderr().is_terminal(),
        })
    }

    fn flush(&self) {
        let Some(snap) = jtelemetry::snapshot() else {
            return;
        };
        let append = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.jsonl)
            .and_then(|mut f| writeln!(f, "{}", jtelemetry::export::jsonl_line(&snap)));
        if let Err(e) = append {
            eprintln!("warning: metrics write failed: {e}");
        }
        if let Err(e) = std::fs::write(&self.prom, jtelemetry::export::prometheus(&snap)) {
            eprintln!("warning: metrics write failed: {e}");
        }
        if self.tty_status {
            eprint!("\r{}", jtelemetry::export::status_line(&snap));
            let _ = std::io::stderr().flush();
        }
    }

    /// Final flush + report, consuming the thread's telemetry session.
    fn finish(&self) {
        self.flush();
        if self.tty_status {
            eprintln!();
        }
        if let Some(session) = jtelemetry::take() {
            println!("{}", jtelemetry::export::human_report(&session.snapshot()));
        }
    }
}

impl CampaignObserver for MetricsSink {
    fn round_finished(&mut self, _round: usize, _result: &CampaignResult) {
        self.flush();
    }
}

/// Builds the metrics sink (installing the telemetry session) when
/// `--metrics-out` was given.
fn metrics_sink(options: &CliOptions) -> Result<Option<MetricsSink>, String> {
    let Some(path) = &options.metrics_out else {
        return Ok(None);
    };
    let sink = MetricsSink::create(path)?;
    jtelemetry::install(jtelemetry::Session::new());
    println!("metrics: {} (+ {})", path.display(), sink.prom.display());
    Ok(Some(sink))
}

fn run_campaign_mode(options: &CliOptions) -> Result<(), String> {
    let seeds = load_seeds(options)?;
    let config = CampaignConfig {
        iterations_per_seed: options.iterations,
        variant: if options.guided {
            Variant::Full
        } else {
            Variant::NoGuidance
        },
        rounds: options.rounds.unwrap_or(0),
        pool: options.jdks.clone(),
        rng_seed: options.rng,
        supervisor: options.supervisor.clone(),
        fault: options.fault.clone(),
    };
    println!(
        "campaign: {} supervised rounds × {} iterations over {} seed(s), {} JVMs",
        config.rounds,
        config.iterations_per_seed,
        seeds.len(),
        config.pool.len()
    );
    let mut sink = metrics_sink(options)?;
    let observer = sink.as_mut().map(|s| s as &mut dyn CampaignObserver);
    let result = match &options.journal {
        None => run_campaign_observed_or_not(&seeds, &config, observer),
        Some(path) => {
            println!("journal: {}", path.display());
            run_campaign_with_journal_observed(&seeds, &config, path, observer)?
        }
    };
    if let Some(sink) = &sink {
        sink.finish();
    }
    print_campaign_summary(&result);
    Ok(())
}

fn run_campaign_observed_or_not(
    seeds: &[mopfuzzer::Seed],
    config: &CampaignConfig,
    observer: Option<&mut dyn CampaignObserver>,
) -> CampaignResult {
    match observer {
        Some(obs) => run_campaign_observed(seeds, config, obs),
        None => mopfuzzer::run_campaign(seeds, config),
    }
}

fn run_resume(journal: &Path, options: &CliOptions) -> Result<(), String> {
    println!("resuming campaign from {}", journal.display());
    if let Some(rounds) = options.rounds {
        println!("  extending to {rounds} total round(s)");
    }
    let mut sink = metrics_sink(options)?;
    let observer = sink.as_mut().map(|s| s as &mut dyn CampaignObserver);
    let result = resume_campaign_extended(journal, options.rounds, observer)?;
    if let Some(sink) = &sink {
        sink.finish();
    }
    print_campaign_summary(&result);
    Ok(())
}

fn print_campaign_summary(result: &CampaignResult) {
    println!(
        "done: {} bug(s), {} executions, {} steps, {} round(s) completed",
        result.bugs.len(),
        result.executions,
        result.steps,
        result.completed_rounds()
    );
    for bug in &result.bugs {
        println!(
            "  bug {} ({}) on {} via seed {}",
            bug.id,
            if bug.is_crash { "crash" } else { "miscompile" },
            bug.jvm,
            bug.seed
        );
    }
    if result.inconclusive_rounds > 0 {
        println!("  inconclusive rounds: {}", result.inconclusive_rounds);
    }
    if result.errored_rounds + result.skipped_rounds + result.retried_attempts > 0 {
        println!(
            "  faults: {} errored round(s), {} skipped, {} retried attempt(s)",
            result.errored_rounds, result.skipped_rounds, result.retried_attempts
        );
    }
    if result.wasted_steps + result.wasted_execs > 0 {
        println!(
            "  wasted on faulted attempts: {} steps, {} execution(s)",
            result.wasted_steps, result.wasted_execs
        );
    }
    for (seed, mutator) in &result.quarantined {
        match mutator {
            Some(m) => println!("  quarantined: {seed} × {m}"),
            None => println!("  quarantined: {seed} (whole seed)"),
        }
    }
    if let Some(stop) = &result.stopped {
        println!("  stopped early at round {}: {}", stop.round, stop.error);
    }
}

fn run(options: &CliOptions) -> Result<(), String> {
    let seeds = load_seeds(options)?;
    std::fs::create_dir_all(&options.out)
        .map_err(|e| format!("cannot create {}: {e}", options.out.display()))?;
    println!(
        "fuzzing {} seed(s), {} iterations each, guidance {}, JVMs: {}",
        seeds.len(),
        options.iterations,
        if options.guided {
            "on"
        } else {
            "off (MopFuzzer_g)"
        },
        options
            .jdks
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let mut bugs = 0usize;
    for (i, seed) in seeds.iter().enumerate() {
        let guidance = options.jdks[i % options.jdks.len()].clone();
        let config = FuzzConfig {
            max_iterations: options.iterations,
            variant: if options.guided {
                Variant::Full
            } else {
                Variant::NoGuidance
            },
            guidance: guidance.clone(),
            rng_seed: options.rng.wrapping_add(i as u64),
            weight_scheme: Default::default(),
            banned: Vec::new(),
            fault: None,
        };
        let outcome = fuzz(&seed.program, &config);
        let mutant_path = options.out.join(format!("{}_final.java", seed.name));
        write_text(&mutant_path, &mjava::print(&outcome.final_mutant))?;
        let mut log = Vec::new();
        log.push(format!(
            "seed: {} | guidance: {} | iterations: {} | final delta: {:.2}",
            seed.name,
            guidance.name(),
            outcome.records.len(),
            outcome.final_delta()
        ));
        for record in &outcome.records {
            log.push(format!(
                "iter {:3}: {:26} delta={:.2}",
                record.iteration,
                record.mutator.label(),
                record.delta_vs_parent
            ));
        }
        let verdict = if let Some(crash) = &outcome.crash {
            bugs += 1;
            write_text(
                &options.out.join(format!("{}_hs_err.log", seed.name)),
                &crash.hs_err,
            )?;
            format!("CRASH {} in {}", crash.bug_id, crash.component.label())
        } else {
            let diff = differential(&outcome.final_mutant, &options.jdks, &RunOptions::fuzzing());
            match diff.verdict {
                OracleVerdict::Pass => "pass".to_string(),
                OracleVerdict::Inconclusive(reason) => format!("inconclusive: {reason}"),
                OracleVerdict::Crash { jvm, report } => {
                    bugs += 1;
                    write_text(
                        &options.out.join(format!("{}_hs_err.log", seed.name)),
                        &report.hs_err,
                    )?;
                    format!("CRASH {} on {jvm}", report.bug_id)
                }
                OracleVerdict::Miscompile { outputs, .. } => {
                    bugs += 1;
                    let mut s = String::from("MISCOMPILE:\n");
                    for (jvm, obs) in outputs {
                        s.push_str(&format!("  {jvm}: {obs:?}\n"));
                    }
                    s
                }
            }
        };
        log.push(format!("verdict: {verdict}"));
        write_text(
            &options.out.join(format!("{}.log", seed.name)),
            &log.join("\n"),
        )?;
        println!("[{}/{}] {} → {}", i + 1, seeds.len(), seed.name, verdict);
    }
    println!(
        "done: {} bug-revealing case(s); mutants and logs in {}",
        bugs,
        options.out.display()
    );
    Ok(())
}

fn write_text(path: &Path, text: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}
