//! The MopFuzzer command-line tool — the analogue of the artifact's
//! `MopFuzzer.jar` (paper Appendix A.5).
//!
//! ```text
//! mopfuzzer --project_path benchmarks/ --target_case Test0001 \
//!           --jdk HotSpur-17,J9-17 --enable_profile_guide true \
//!           [--iterations 50] [--rng 0] [--out mutants/]
//! ```
//!
//! `--project_path` is a directory of `.java` files in the MiniJava
//! subset (or is omitted to use the built-in corpus); `--target_case`
//! picks one file/seed by name; `--jdk` names the simulated JVMs to
//! test, `family-version` style. Mutants and per-mutant logs are written
//! under `--out` (default `mutants/`), mirroring the artifact's layout.

use jvmsim::{JvmSpec, RunOptions, Version};
use mopfuzzer::{differential, fuzz, FuzzConfig, OracleVerdict, Variant};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "MopFuzzer (Rust reproduction)\n\
         \n\
         USAGE:\n\
           mopfuzzer [--project_path DIR] [--target_case NAME]\n\
                     [--jdk SPEC[,SPEC..]] [--enable_profile_guide true|false]\n\
                     [--iterations N] [--rng SEED] [--out DIR]\n\
         \n\
         OPTIONS:\n\
           --project_path DIR      directory of .java seed files (MiniJava subset);\n\
                                   omitted = built-in corpus\n\
           --target_case NAME      fuzz only the named seed/file\n\
           --jdk SPEC,..           simulated JVMs, e.g. HotSpur-17,HotSpur-mainline,J9-11\n\
                                   (default: the full differential pool)\n\
           --enable_profile_guide  true (default) = Eq.1-3 guidance; false = MopFuzzer_g\n\
           --iterations N          mutation iterations per seed (default 50)\n\
           --rng SEED              RNG seed (default 0)\n\
           --out DIR               where mutants and logs are written (default mutants/)"
    );
}

struct CliOptions {
    project_path: Option<PathBuf>,
    target_case: Option<String>,
    jdks: Vec<JvmSpec>,
    guided: bool,
    iterations: usize,
    rng: u64,
    out: PathBuf,
}

fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut map: HashMap<&str, &str> = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("unexpected argument {key:?}"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} needs a value"))?;
        let key: &'static str = match name {
            "project_path" => "project_path",
            "target_case" => "target_case",
            "jdk" => "jdk",
            "enable_profile_guide" => "enable_profile_guide",
            "iterations" => "iterations",
            "rng" => "rng",
            "out" => "out",
            other => return Err(format!("unknown option --{other}")),
        };
        map.insert(key, value);
    }
    let jdks = match map.get("jdk") {
        None => JvmSpec::differential_pool(),
        Some(spec) => spec
            .split(',')
            .map(parse_jvm)
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(CliOptions {
        project_path: map.get("project_path").map(PathBuf::from),
        target_case: map.get("target_case").map(|s| s.to_string()),
        jdks,
        guided: map
            .get("enable_profile_guide")
            .map_or(true, |v| *v != "false"),
        iterations: map
            .get("iterations")
            .map_or(Ok(50), |v| v.parse().map_err(|_| "bad --iterations"))?,
        rng: map
            .get("rng")
            .map_or(Ok(0), |v| v.parse().map_err(|_| "bad --rng"))?,
        out: map.get("out").map_or_else(|| PathBuf::from("mutants"), PathBuf::from),
    })
}

fn parse_jvm(spec: &str) -> Result<JvmSpec, String> {
    let (family, version) = spec
        .split_once('-')
        .ok_or_else(|| format!("bad JVM spec {spec:?} (expected e.g. HotSpur-17)"))?;
    let version = match version {
        "8" => Version::V8,
        "11" => Version::V11,
        "17" => Version::V17,
        "21" => Version::V21,
        "mainline" | "23" => Version::Mainline,
        other => return Err(format!("unknown version {other:?}")),
    };
    match family {
        "HotSpur" => Ok(JvmSpec::hotspur(version)),
        "J9" => {
            if matches!(version, Version::V21 | Version::Mainline) {
                return Err(format!("J9 ships versions 8, 11 and 17, not {version}"));
            }
            Ok(JvmSpec::j9(version))
        }
        other => Err(format!("unknown family {other:?} (HotSpur or J9)")),
    }
}

fn load_seeds(options: &CliOptions) -> Result<Vec<mopfuzzer::Seed>, String> {
    let mut seeds = match &options.project_path {
        None => mopfuzzer::corpus::builtin(),
        Some(dir) => {
            let mut out = Vec::new();
            let entries = std::fs::read_dir(dir)
                .map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            let mut paths: Vec<PathBuf> = entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "java"))
                .collect();
            paths.sort();
            for path in paths {
                let src = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                let program = mjava::parse(&src)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                out.push(mopfuzzer::Seed {
                    name: path
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_else(|| "case".into()),
                    program,
                });
            }
            out
        }
    };
    if let Some(case) = &options.target_case {
        seeds.retain(|s| &s.name == case);
        if seeds.is_empty() {
            return Err(format!("no seed named {case:?}"));
        }
    }
    if seeds.is_empty() {
        return Err("no seeds to fuzz".into());
    }
    Ok(seeds)
}

fn run(options: &CliOptions) -> Result<(), String> {
    let seeds = load_seeds(options)?;
    std::fs::create_dir_all(&options.out)
        .map_err(|e| format!("cannot create {}: {e}", options.out.display()))?;
    println!(
        "fuzzing {} seed(s), {} iterations each, guidance {}, JVMs: {}",
        seeds.len(),
        options.iterations,
        if options.guided { "on" } else { "off (MopFuzzer_g)" },
        options
            .jdks
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let mut bugs = 0usize;
    for (i, seed) in seeds.iter().enumerate() {
        let guidance = options.jdks[i % options.jdks.len()].clone();
        let config = FuzzConfig {
            max_iterations: options.iterations,
            variant: if options.guided {
                Variant::Full
            } else {
                Variant::NoGuidance
            },
            guidance: guidance.clone(),
            rng_seed: options.rng.wrapping_add(i as u64),
            weight_scheme: Default::default(),
        };
        let outcome = fuzz(&seed.program, &config);
        let mutant_path = options.out.join(format!("{}_final.java", seed.name));
        write_text(&mutant_path, &mjava::print(&outcome.final_mutant))?;
        let mut log = Vec::new();
        log.push(format!(
            "seed: {} | guidance: {} | iterations: {} | final delta: {:.2}",
            seed.name,
            guidance.name(),
            outcome.records.len(),
            outcome.final_delta()
        ));
        for record in &outcome.records {
            log.push(format!(
                "iter {:3}: {:26} delta={:.2}",
                record.iteration,
                record.mutator.label(),
                record.delta_vs_parent
            ));
        }
        let verdict = if let Some(crash) = &outcome.crash {
            bugs += 1;
            write_text(
                &options.out.join(format!("{}_hs_err.log", seed.name)),
                &crash.hs_err,
            )?;
            format!("CRASH {} in {}", crash.bug_id, crash.component.label())
        } else {
            let diff = differential(
                &outcome.final_mutant,
                &options.jdks,
                &RunOptions::fuzzing(),
            );
            match diff.verdict {
                OracleVerdict::Pass => "pass".to_string(),
                OracleVerdict::Inconclusive(reason) => format!("inconclusive: {reason}"),
                OracleVerdict::Crash { jvm, report } => {
                    bugs += 1;
                    write_text(
                        &options.out.join(format!("{}_hs_err.log", seed.name)),
                        &report.hs_err,
                    )?;
                    format!("CRASH {} on {jvm}", report.bug_id)
                }
                OracleVerdict::Miscompile { outputs, .. } => {
                    bugs += 1;
                    let mut s = String::from("MISCOMPILE:\n");
                    for (jvm, obs) in outputs {
                        s.push_str(&format!("  {jvm}: {obs:?}\n"));
                    }
                    s
                }
            }
        };
        log.push(format!("verdict: {verdict}"));
        write_text(
            &options.out.join(format!("{}.log", seed.name)),
            &log.join("\n"),
        )?;
        println!("[{}/{}] {} → {}", i + 1, seeds.len(), seed.name, verdict);
    }
    println!(
        "done: {} bug-revealing case(s); mutants and logs in {}",
        bugs,
        options.out.display()
    );
    Ok(())
}

fn write_text(path: &Path, text: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}
