//! The MopFuzzer command-line tool — the analogue of the artifact's
//! `MopFuzzer.jar` (paper Appendix A.5).
//!
//! ```text
//! mopfuzzer --project_path benchmarks/ --target_case Test0001 \
//!           --jdk HotSpur-17,J9-17 --enable_profile_guide true \
//!           [--iterations 50] [--rng 0] [--out mutants/]
//! ```
//!
//! `--project_path` is a directory of `.java` files in the MiniJava
//! subset (or is omitted to use the built-in corpus); `--target_case`
//! picks one file/seed by name; `--jdk` names the simulated JVMs to
//! test, `family-version` style. Mutants and per-mutant logs are written
//! under `--out` (default `mutants/`), mirroring the artifact's layout.
//!
//! Passing `--rounds N` switches to supervised-campaign mode: rounds run
//! inside a fault boundary with budgets and quarantine, optionally
//! checkpointed to a JSONL journal (`--journal FILE`) that
//! `--resume FILE` continues with bit-identical results.

use jvmsim::{FaultPlan, JvmSpec, RunOptions};
use mopfuzzer::{
    differential_jobs, fuzz, resume_campaign_extended, run_campaign_observed,
    run_campaign_with_journal_observed, run_corpus_campaign, CampaignConfig, CampaignObserver,
    CampaignResult, CorpusOptions, FuzzConfig, OracleVerdict, SupervisorConfig, Variant,
};
use std::collections::HashMap;
use std::io::{IsTerminal, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    mopfuzzer::interrupt::reset();
    install_signal_handlers();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    if args.first().map(String::as_str) == Some("corpus") {
        return match run_corpus_command(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("serve") {
        return match run_serve(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    // Like --jobs, the substrate choice is an execution detail: it is
    // never journaled, and results are bit-identical either way.
    jexec::set_default_exec_mode(options.exec_mode);
    let outcome = if let Some(journal) = options.resume.clone() {
        run_resume(&journal, &options)
    } else if options.rounds.is_some() {
        run_campaign_mode(&options)
    } else {
        run(&options)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// SIGINT/SIGTERM request a *graceful* stop: the campaign finishes the
/// round in flight, flushes the store, journal, and telemetry, then exits
/// successfully — a journaled campaign resumes bit-identically with
/// `--resume`. The handler only sets a flag, so it is async-signal-safe.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        mopfuzzer::interrupt::request();
    }
    // `signal(2)` declared directly: the build is offline and carries no
    // libc crate.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// `mopfuzzer serve ..` hands the whole process over to the sibling
/// `mopfuzzerd` binary (built by the same workspace next to this one),
/// so the daemon's signal handling, drain loop, and exit codes are its
/// own. On unix this is a true `exec`; elsewhere a child is spawned and
/// its exit status forwarded.
fn run_serve(args: &[String]) -> Result<ExitCode, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate mopfuzzer: {e}"))?;
    let daemon = exe
        .parent()
        .map(|dir| dir.join("mopfuzzerd"))
        .filter(|p| p.exists())
        .ok_or_else(|| {
            "mopfuzzerd binary not found next to mopfuzzer \
             (build it with `cargo build -p mopfuzzerd`)"
                .to_string()
        })?;
    let mut command = std::process::Command::new(&daemon);
    command.args(args);
    #[cfg(unix)]
    {
        use std::os::unix::process::CommandExt;
        // exec only returns on failure.
        Err(format!("exec {}: {}", daemon.display(), command.exec()))
    }
    #[cfg(not(unix))]
    {
        let status = command
            .status()
            .map_err(|e| format!("run {}: {e}", daemon.display()))?;
        Ok(if status.success() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        })
    }
}

fn print_usage() {
    eprintln!(
        "MopFuzzer (Rust reproduction)\n\
         \n\
         USAGE:\n\
           mopfuzzer [--project_path DIR] [--target_case NAME]\n\
                     [--jdk SPEC[,SPEC..]] [--enable_profile_guide true|false]\n\
                     [--iterations N] [--rng SEED] [--out DIR]\n\
           mopfuzzer --rounds N [--journal FILE] [campaign options..]\n\
           mopfuzzer --rounds N --corpus DIR [campaign options..]\n\
           mopfuzzer --resume FILE\n\
           mopfuzzer corpus init DIR [--extra N] [--rng SEED]\n\
           mopfuzzer corpus import DIR SRCDIR\n\
           mopfuzzer corpus stats DIR [--json]\n\
           mopfuzzer corpus gc DIR [--streak N]\n\
           mopfuzzer corpus fsck DIR [--repair] [--json]\n\
           mopfuzzer corpus shard DIR --shards N\n\
           mopfuzzer serve --data-dir DIR [--listen ADDR] [--max-active N] [--resume]\n\
         \n\
         OPTIONS:\n\
           --project_path DIR      directory of .java seed files (MiniJava subset);\n\
                                   omitted = built-in corpus\n\
           --target_case NAME      fuzz only the named seed/file\n\
           --jdk SPEC,..           simulated JVMs, e.g. HotSpur-17,HotSpur-mainline,J9-11\n\
                                   (default: the full differential pool)\n\
           --enable_profile_guide  true (default) = Eq.1-3 guidance; false = MopFuzzer_g\n\
           --iterations N          mutation iterations per seed (default 50)\n\
           --rng SEED              RNG seed (default 0)\n\
           --out DIR               where mutants and logs are written (default mutants/)\n\
           --exec-mode MODE        execution substrate: 'threaded' (default;\n\
                                   pre-lowered code, shared code cache) or\n\
                                   'interp' (the reference interpreter).\n\
                                   Outcomes, journals and traces are\n\
                                   bit-identical in both modes\n\
         \n\
         CAMPAIGN MODE (fault-supervised):\n\
           --rounds N              run a supervised campaign of N rounds\n\
           --journal FILE          checkpoint every round to a JSONL journal\n\
           --resume FILE           resume a journaled campaign (bit-identical);\n\
                                   with --rounds N > the journaled total, the\n\
                                   finished campaign is *extended* to N rounds\n\
           --metrics-out FILE      telemetry: append a JSONL metrics snapshot to\n\
                                   FILE after every round, keep a Prometheus\n\
                                   text export in FILE.prom, and print a\n\
                                   human-readable report at campaign end.\n\
                                   FILE of '-' streams the JSONL snapshots to\n\
                                   stdout (no .prom, no status line; the\n\
                                   report goes to stderr)\n\
           --metrics-every N       write metrics snapshots every N rounds\n\
                                   instead of every round (the final snapshot\n\
                                   is always written; default 1)\n\
           --trace-out FILE        record a causal trace of the campaign\n\
                                   (rounds, attempts, fuzz/oracle phases,\n\
                                   optimizer phases, VM executions) and write\n\
                                   it as Chrome trace-event JSON at campaign\n\
                                   end — loadable in Perfetto / chrome://\n\
                                   tracing. FILE of '-' writes to stdout\n\
           --profile [true|false]  sample the interpreter per opcode and\n\
                                   report the hottest opcodes in metrics\n\
                                   snapshots and the campaign-end report\n\
           --max-steps N           stop after N interpreter steps (simulated time)\n\
           --max-execs N           stop after N JVM executions\n\
           --round-deadline N      fail rounds exceeding N steps\n\
           --round-timeout MS      fail rounds (and retry/quarantine them)\n\
                                   exceeding MS wall-clock milliseconds; a\n\
                                   watchdog cancels the hung round so even\n\
                                   a wedged mutant cannot stall the\n\
                                   campaign. Journals stay bit-identical\n\
                                   at any --jobs x --oracle-jobs\n\
           --jobs N                worker threads executing rounds (default:\n\
                                   all hardware threads). Journals, results\n\
                                   and corpus flushes are bit-identical at\n\
                                   any worker count\n\
           --oracle-jobs N         worker threads per differential-oracle\n\
                                   invocation (default: hardware threads not\n\
                                   taken by --jobs, min 1). Shares one pool\n\
                                   with --jobs; results are bit-identical at\n\
                                   any --jobs x --oracle-jobs combination\n\
           --retries N             retries per faulted round (default 2)\n\
           --quarantine-threshold N  failed rounds before a (seed, mutator)\n\
                                   pair is quarantined (default 2)\n\
           --fault-rate F          inject faults at rate F (0.0-1.0; testing)\n\
           --fault-seed SEED       fault-injection seed (default 0)\n\
         \n\
         CORPUS MODE (persistent, feedback-driven store):\n\
           --corpus DIR            run the campaign over the corpus store at\n\
                                   DIR: power-scheduled seed choice, mutant\n\
                                   promotion, persisted quarantine\n\
           --promote-threshold F   final OBV delta at which a round's mutant\n\
                                   is minimized and promoted (default 20)\n\
           --gc-streak N           after the campaign flush, drop entries at\n\
                                   the energy floor for N consecutive campaigns\n\
           corpus init DIR         create a store seeded with the built-in\n\
                                   corpus (--extra N adds generated seeds)\n\
           corpus import DIR SRC   fingerprint + dedup .java files into DIR\n\
           corpus stats DIR        print per-entry stats and scheduler energy\n\
                                   (--json: machine-readable, schema\n\
                                   jcorpus-stats v1)\n\
           corpus gc DIR           tombstone entries whose energy sat at the\n\
                                   floor for --streak N campaigns (default 3)\n\
           corpus fsck DIR         check the store for crash damage (torn\n\
                                   manifest/quarantine tails, orphaned or\n\
                                   missing sources, stale .tmp files,\n\
                                   dangling tombstones); --repair fixes\n\
                                   what is repairable, --json emits the\n\
                                   jcorpus-fsck v1 report; sharded stores\n\
                                   are checked shard by shard\n\
           corpus shard DIR        migrate a flat store in place to the\n\
                                   sharded layout (entries spread over\n\
                                   --shards N sub-stores by fingerprint;\n\
                                   run with no campaigns active)\n\
         \n\
         FLEET MODE (multi-tenant daemon):\n\
           serve ..                start the mopfuzzerd fleet daemon: POST\n\
                                   campaign specs to /campaigns, scrape\n\
                                   /metrics, cancel per tenant; SIGTERM\n\
                                   drains at round boundaries and\n\
                                   `serve --resume` re-adopts the\n\
                                   interrupted campaigns bit-identically\n\
                                   (see mopfuzzerd --help for the API)\n\
         \n\
         SIGNALS:\n\
           SIGINT/SIGTERM          finish the round in flight, flush the\n\
                                   store/journal/metrics, and exit 0; a\n\
                                   journaled campaign resumes bit-identically\n\
                                   with --resume"
    );
}

struct CliOptions {
    project_path: Option<PathBuf>,
    target_case: Option<String>,
    jdks: Vec<JvmSpec>,
    guided: bool,
    iterations: usize,
    rng: u64,
    out: PathBuf,
    rounds: Option<usize>,
    journal: Option<PathBuf>,
    resume: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    metrics_every: usize,
    trace_out: Option<PathBuf>,
    profile: bool,
    corpus: Option<PathBuf>,
    promote_threshold: Option<f64>,
    gc_streak: Option<u64>,
    jobs: Option<usize>,
    oracle_jobs: Option<usize>,
    exec_mode: jexec::ExecMode,
    supervisor: SupervisorConfig,
    fault: Option<FaultPlan>,
}

/// `--jobs` default: every hardware thread. Campaign output is identical
/// at any worker count, so there is no correctness reason to default low.
fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// `--oracle-jobs` default: the hardware threads `--jobs` left over (at
/// least 1, i.e. a serial oracle). Both engines draw from one shared
/// process-wide pool, so this default never oversubscribes: with `--jobs`
/// saturating the machine the oracle stays serial, and with a small
/// `--jobs` the idle threads fan out differential executions instead.
fn default_oracle_jobs(jobs: usize) -> usize {
    default_jobs().saturating_sub(jobs).max(1)
}

fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut map: HashMap<&str, &str> = HashMap::new();
    let mut profile = false;
    let mut it = args.iter().peekable();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("unexpected argument {key:?}"));
        };
        if name == "profile" {
            // A bare flag, but `--profile true|false` is also accepted for
            // symmetry with --enable_profile_guide.
            profile = match it.peek().map(|v| v.as_str()) {
                Some("true") => {
                    it.next();
                    true
                }
                Some("false") => {
                    it.next();
                    false
                }
                _ => true,
            };
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        let key: &'static str = match name {
            "project_path" => "project_path",
            "target_case" => "target_case",
            "jdk" => "jdk",
            "enable_profile_guide" => "enable_profile_guide",
            "iterations" => "iterations",
            "rng" => "rng",
            "out" => "out",
            "rounds" => "rounds",
            "journal" => "journal",
            "resume" => "resume",
            "metrics-out" => "metrics-out",
            "metrics-every" => "metrics-every",
            "trace-out" => "trace-out",
            "corpus" => "corpus",
            "promote-threshold" => "promote-threshold",
            "gc-streak" => "gc-streak",
            "jobs" => "jobs",
            "oracle-jobs" => "oracle-jobs",
            "exec-mode" => "exec-mode",
            "max-steps" => "max-steps",
            "max-execs" => "max-execs",
            "round-deadline" => "round-deadline",
            "round-timeout" => "round-timeout",
            "retries" => "retries",
            "quarantine-threshold" => "quarantine-threshold",
            "fault-rate" => "fault-rate",
            "fault-seed" => "fault-seed",
            other => return Err(format!("unknown option --{other}")),
        };
        map.insert(key, value);
    }
    let jdks = match map.get("jdk") {
        None => JvmSpec::differential_pool(),
        Some(spec) => spec
            .split(',')
            .map(JvmSpec::from_name)
            .collect::<Result<Vec<_>, _>>()?,
    };
    fn num<T: std::str::FromStr>(
        map: &HashMap<&str, &str>,
        key: &str,
    ) -> Result<Option<T>, String> {
        map.get(key)
            .map(|v| v.parse().map_err(|_| format!("bad --{key}")))
            .transpose()
    }
    let mut supervisor = SupervisorConfig {
        max_steps: num(&map, "max-steps")?,
        max_executions: num(&map, "max-execs")?,
        round_step_deadline: num(&map, "round-deadline")?,
        round_wall_timeout_ms: num(&map, "round-timeout")?,
        ..SupervisorConfig::default()
    };
    if let Some(retries) = num(&map, "retries")? {
        supervisor.max_retries = retries;
    }
    if let Some(threshold) = num(&map, "quarantine-threshold")? {
        supervisor.quarantine_threshold = threshold;
    }
    let fault = match num::<f64>(&map, "fault-rate")? {
        None => None,
        Some(rate) if (0.0..=1.0).contains(&rate) => {
            Some(FaultPlan::new(num(&map, "fault-seed")?.unwrap_or(0), rate))
        }
        Some(_) => return Err("bad --fault-rate (expected 0.0-1.0)".to_string()),
    };
    if map.contains_key("corpus") && map.contains_key("project_path") {
        return Err("--corpus and --project_path are mutually exclusive".to_string());
    }
    let metrics_every = num(&map, "metrics-every")?.unwrap_or(1usize);
    if metrics_every == 0 {
        return Err("bad --metrics-every (must be >= 1)".to_string());
    }
    Ok(CliOptions {
        project_path: map.get("project_path").map(PathBuf::from),
        target_case: map.get("target_case").map(|s| s.to_string()),
        jdks,
        guided: map
            .get("enable_profile_guide")
            .is_none_or(|v| *v != "false"),
        iterations: num(&map, "iterations")?.unwrap_or(50),
        rng: num(&map, "rng")?.unwrap_or(0),
        out: map
            .get("out")
            .map_or_else(|| PathBuf::from("mutants"), PathBuf::from),
        rounds: num(&map, "rounds")?,
        journal: map.get("journal").map(PathBuf::from),
        resume: map.get("resume").map(PathBuf::from),
        metrics_out: map.get("metrics-out").map(PathBuf::from),
        metrics_every,
        trace_out: map.get("trace-out").map(PathBuf::from),
        profile,
        corpus: map.get("corpus").map(PathBuf::from),
        promote_threshold: num(&map, "promote-threshold")?,
        gc_streak: num(&map, "gc-streak")?,
        jobs: match num::<usize>(&map, "jobs")? {
            Some(0) => return Err("bad --jobs (must be >= 1)".to_string()),
            jobs => jobs,
        },
        oracle_jobs: match num::<usize>(&map, "oracle-jobs")? {
            Some(0) => return Err("bad --oracle-jobs (must be >= 1)".to_string()),
            oracle_jobs => oracle_jobs,
        },
        exec_mode: match map.get("exec-mode").copied() {
            None | Some("threaded") => jexec::ExecMode::Threaded,
            Some("interp") => jexec::ExecMode::Interp,
            Some(other) => {
                return Err(format!(
                    "bad --exec-mode {other:?} (expected 'interp' or 'threaded')"
                ))
            }
        },
        supervisor,
        fault,
    })
}

fn load_seeds(options: &CliOptions) -> Result<Vec<mopfuzzer::Seed>, String> {
    let mut seeds = match &options.project_path {
        None => mopfuzzer::corpus::builtin(),
        Some(dir) => load_java_dir(dir)?,
    };
    if let Some(case) = &options.target_case {
        seeds.retain(|s| &s.name == case);
        if seeds.is_empty() {
            return Err(format!("no seed named {case:?}"));
        }
    }
    if seeds.is_empty() {
        return Err("no seeds to fuzz".into());
    }
    Ok(seeds)
}

/// The `--metrics-out` sink: after every round it appends one JSONL
/// telemetry snapshot to the metrics file, rewrites the Prometheus text
/// export next to it (`FILE.prom`), and — when stderr is a TTY — redraws
/// a one-line live status. With `--metrics-out -` the JSONL snapshots
/// stream to stdout instead (no `.prom` page, no status line). Requires
/// True when `--metrics-out -` or `--trace-out -` claims stdout for
/// machine-readable output. Human banner/summary lines then move to
/// stderr so the stream stays parseable line-by-line.
fn stdout_is_claimed(options: &CliOptions) -> bool {
    let dash = |p: &Option<PathBuf>| p.as_deref().is_some_and(|p| p.as_os_str() == "-");
    dash(&options.metrics_out) || dash(&options.trace_out)
}

/// Prints a human-facing line to stdout, or to stderr when stdout is
/// claimed by a `-` stream (see [`stdout_is_claimed`]).
macro_rules! humanln {
    ($to_stderr:expr, $($arg:tt)*) => {
        if $to_stderr {
            eprintln!($($arg)*)
        } else {
            println!($($arg)*)
        }
    };
}

/// a `jtelemetry` session installed on the campaign thread.
struct MetricsSink {
    /// `None` streams snapshots to stdout.
    jsonl: Option<PathBuf>,
    prom: Option<PathBuf>,
    tty_status: bool,
    /// Write files every N rounds (`--metrics-every`; the TTY status line
    /// still refreshes every round, and `finish` always writes).
    every: usize,
    rounds_seen: usize,
}

impl MetricsSink {
    fn create(path: &Path, every: usize) -> Result<MetricsSink, String> {
        if path.as_os_str() == "-" {
            return Ok(MetricsSink {
                jsonl: None,
                prom: None,
                tty_status: false,
                every,
                rounds_seen: 0,
            });
        }
        let mut prom = path.as_os_str().to_owned();
        prom.push(".prom");
        // Truncate up front so a rerun never appends to stale snapshots.
        std::fs::write(path, "").map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(MetricsSink {
            jsonl: Some(path.to_path_buf()),
            prom: Some(PathBuf::from(prom)),
            tty_status: std::io::stderr().is_terminal(),
            every,
            rounds_seen: 0,
        })
    }

    fn flush(&self) {
        let Some(snap) = jtelemetry::snapshot() else {
            return;
        };
        let line = jtelemetry::export::jsonl_line(&snap);
        match &self.jsonl {
            None => println!("{line}"),
            Some(path) => {
                let append = std::fs::OpenOptions::new()
                    .append(true)
                    .open(path)
                    .and_then(|mut f| writeln!(f, "{line}"));
                if let Err(e) = append {
                    eprintln!("warning: metrics write failed: {e}");
                }
            }
        }
        if let Some(prom) = &self.prom {
            if let Err(e) = std::fs::write(prom, jtelemetry::export::prometheus(&snap)) {
                eprintln!("warning: metrics write failed: {e}");
            }
        }
        self.status(&snap);
    }

    fn status(&self, snap: &jtelemetry::MetricsSnapshot) {
        if self.tty_status {
            eprint!("\r{}", jtelemetry::export::status_line(snap));
            let _ = std::io::stderr().flush();
        }
    }

    /// Final flush (the session itself is consumed by
    /// [`finish_telemetry`], which also writes the trace and report).
    fn finish(&self) {
        self.flush();
        if self.tty_status {
            eprintln!();
        }
    }
}

impl CampaignObserver for MetricsSink {
    fn round_finished(&mut self, _round: usize, _result: &CampaignResult) {
        self.rounds_seen += 1;
        if self.rounds_seen.is_multiple_of(self.every) {
            self.flush();
        } else if let Some(snap) = jtelemetry::snapshot() {
            self.status(&snap);
        }
    }
}

/// Builds the metrics sink and installs the telemetry session when any
/// of `--metrics-out`, `--trace-out`, or `--profile` was given (tracing
/// and profiling are session capabilities, so they work without a
/// metrics file).
fn metrics_sink(options: &CliOptions) -> Result<Option<MetricsSink>, String> {
    let sink = match &options.metrics_out {
        None => None,
        Some(path) => {
            let sink = MetricsSink::create(path, options.metrics_every)?;
            match (&sink.jsonl, &sink.prom) {
                (Some(jsonl), Some(prom)) => humanln!(
                    stdout_is_claimed(options),
                    "metrics: {} (+ {})",
                    jsonl.display(),
                    prom.display()
                ),
                _ => eprintln!("metrics: streaming JSONL snapshots to stdout"),
            }
            Some(sink)
        }
    };
    if options.metrics_out.is_some() || options.trace_out.is_some() || options.profile {
        let mut session = jtelemetry::Session::new();
        if options.trace_out.is_some() {
            session = session.with_trace();
        }
        if options.profile {
            session = session.with_profile();
        }
        jtelemetry::install(session);
    }
    Ok(sink)
}

/// Campaign-end telemetry teardown: consumes the thread's session, writes
/// the `--trace-out` trace (Chrome trace-event JSON, Perfetto-loadable),
/// and prints the human report when `--metrics-out` was given. `meta`
/// lands in the trace's `otherData` for offline analysis
/// (`jtelemetry-trace` reads `jobs` and `campaign_wall_ns` from it).
fn finish_telemetry(options: &CliOptions, meta: &[(&str, String)]) -> Result<(), String> {
    let Some(session) = jtelemetry::take() else {
        return Ok(());
    };
    let streaming = stdout_is_claimed(options);
    if let Some(path) = &options.trace_out {
        let json = jtelemetry::export::trace_json(&session, meta)
            .expect("--trace-out installed a tracing session");
        if path.as_os_str() == "-" {
            println!("{json}");
        } else {
            std::fs::write(path, &json)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            humanln!(streaming, "trace: {}", path.display());
        }
    }
    if options.metrics_out.is_some() {
        let report = jtelemetry::export::human_report(&session.snapshot());
        humanln!(streaming, "{report}");
    }
    Ok(())
}

fn run_campaign_mode(options: &CliOptions) -> Result<(), String> {
    let jobs = options.jobs.unwrap_or_else(default_jobs);
    let config = CampaignConfig {
        iterations_per_seed: options.iterations,
        variant: if options.guided {
            Variant::Full
        } else {
            Variant::NoGuidance
        },
        rounds: options.rounds.unwrap_or(0),
        pool: options.jdks.clone(),
        rng_seed: options.rng,
        supervisor: options.supervisor.clone(),
        fault: options.fault.clone(),
        jobs,
        oracle_jobs: options
            .oracle_jobs
            .unwrap_or_else(|| default_oracle_jobs(jobs)),
    };
    if let Some(dir) = &options.corpus {
        return run_corpus_campaign_mode(options, &config, dir);
    }
    let seeds = load_seeds(options)?;
    let streaming = stdout_is_claimed(options);
    humanln!(
        streaming,
        "campaign: {} supervised rounds × {} iterations over {} seed(s), {} JVMs, {} worker(s)",
        config.rounds,
        config.iterations_per_seed,
        seeds.len(),
        config.pool.len(),
        config.jobs
    );
    let mut sink = metrics_sink(options)?;
    let started = std::time::Instant::now();
    let observer = sink.as_mut().map(|s| s as &mut dyn CampaignObserver);
    let result = match &options.journal {
        None => run_campaign_observed_or_not(&seeds, &config, observer),
        Some(path) => {
            humanln!(streaming, "journal: {}", path.display());
            run_campaign_with_journal_observed(&seeds, &config, path, observer)?
        }
    };
    if let Some(sink) = &sink {
        sink.finish();
    }
    finish_telemetry(
        options,
        &trace_meta(
            config.jobs,
            config.oracle_jobs,
            config.rounds,
            config.rng_seed,
            started,
        ),
    )?;
    print_campaign_summary(&result, streaming);
    maybe_print_interrupted(&result, options.journal.as_deref(), streaming);
    Ok(())
}

fn run_corpus_campaign_mode(
    options: &CliOptions,
    config: &CampaignConfig,
    dir: &Path,
) -> Result<(), String> {
    let mut store = jcorpus::Store::open(dir)?;
    let opts = CorpusOptions {
        promote_threshold: options
            .promote_threshold
            .unwrap_or(CorpusOptions::default().promote_threshold),
        gc_streak: options.gc_streak,
    };
    let streaming = stdout_is_claimed(options);
    humanln!(
        streaming,
        "campaign: {} power-scheduled rounds × {} iterations over corpus {} ({} entries), \
         {} JVMs, {} worker(s)",
        config.rounds,
        config.iterations_per_seed,
        dir.display(),
        store.len(),
        config.pool.len(),
        config.jobs
    );
    if let Some(path) = &options.journal {
        humanln!(streaming, "journal: {}", path.display());
    }
    let mut sink = metrics_sink(options)?;
    let started = std::time::Instant::now();
    let observer = sink.as_mut().map(|s| s as &mut dyn CampaignObserver);
    let result = run_corpus_campaign(
        &mut store,
        config,
        &opts,
        options.journal.as_deref(),
        observer,
    )?;
    if let Some(sink) = &sink {
        sink.finish();
    }
    finish_telemetry(
        options,
        &trace_meta(
            config.jobs,
            config.oracle_jobs,
            config.rounds,
            config.rng_seed,
            started,
        ),
    )?;
    print_campaign_summary(&result, streaming);
    maybe_print_interrupted(&result, options.journal.as_deref(), streaming);
    Ok(())
}

/// Dispatch for `mopfuzzer corpus <init|import|stats|gc|fsck> ...`.
fn run_corpus_command(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("init") => {
            let dir = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| {
                    "usage: mopfuzzer corpus init DIR [--extra N] [--rng SEED]".to_string()
                })?;
            let mut extra = 0usize;
            let mut rng = 0u64;
            let mut it = args[2..].iter();
            while let Some(flag) = it.next() {
                let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                match flag.as_str() {
                    "--extra" => extra = value.parse().map_err(|_| "bad --extra".to_string())?,
                    "--rng" => rng = value.parse().map_err(|_| "bad --rng".to_string())?,
                    other => return Err(format!("unknown option {other}")),
                }
            }
            let mut store = jcorpus::Store::init(Path::new(dir))?;
            let seeds = mopfuzzer::corpus::corpus(extra, rng);
            // The built-in seeds and the generated tail carry different
            // provenance; import in two batches.
            let builtin_count = mopfuzzer::corpus::builtin().len();
            let a = mopfuzzer::import_seeds(
                &mut store,
                &seeds[..builtin_count],
                jcorpus::Provenance::Builtin,
            )?;
            let b = mopfuzzer::import_seeds(
                &mut store,
                &seeds[builtin_count..],
                jcorpus::Provenance::Generated,
            )?;
            store.save()?;
            println!(
                "initialized {} with {} entries ({} behavioural duplicate(s) skipped)",
                dir,
                store.len(),
                a.deduped.len() + b.deduped.len()
            );
            Ok(())
        }
        Some("import") => {
            let (Some(dir), Some(src)) = (args.get(1), args.get(2)) else {
                return Err("usage: mopfuzzer corpus import DIR SRCDIR".to_string());
            };
            let mut store = jcorpus::Store::open(Path::new(dir))?;
            let seeds = load_java_dir(Path::new(src))?;
            if seeds.is_empty() {
                return Err(format!("no .java files in {src}"));
            }
            let outcome =
                mopfuzzer::import_seeds(&mut store, &seeds, jcorpus::Provenance::Imported)?;
            store.save()?;
            for name in &outcome.admitted {
                println!("admitted {name}");
            }
            for (candidate, existing) in &outcome.deduped {
                println!("skipped {candidate} (same behaviour as {existing})");
            }
            println!(
                "imported {} of {} seed(s) into {}",
                outcome.admitted.len(),
                seeds.len(),
                dir
            );
            Ok(())
        }
        Some("gc") => {
            let dir = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| "usage: mopfuzzer corpus gc DIR [--streak N]".to_string())?;
            let mut streak = 3u64;
            let mut it = args[2..].iter();
            while let Some(flag) = it.next() {
                let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                match flag.as_str() {
                    "--streak" => streak = value.parse().map_err(|_| "bad --streak".to_string())?,
                    other => return Err(format!("unknown option {other}")),
                }
            }
            let mut store = jcorpus::Store::open(Path::new(dir))?;
            let dropped = store.gc(streak);
            store.save()?;
            for name in &dropped {
                println!("dropped {name}");
            }
            println!(
                "gc: dropped {} entr(ies) at the energy floor for >= {} campaign(s); \
                 {} remain in {}",
                dropped.len(),
                streak,
                store.len(),
                dir
            );
            Ok(())
        }
        Some("stats") => {
            let dir = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| "usage: mopfuzzer corpus stats DIR [--json]".to_string())?;
            let store = jcorpus::Store::open(Path::new(dir))?;
            if args.get(2).map(String::as_str) == Some("--json") {
                println!("{}", store.stats_json());
                return Ok(());
            }
            println!(
                "corpus {}: {} entries, {} quarantined pair(s)",
                dir,
                store.len(),
                store.quarantine().len()
            );
            println!(
                "{:<6} {:<24} {:<10} {:>9} {:>9} {:>7} {:>5} {:>8}",
                "id", "name", "origin", "schedules", "yield", "faults", "bugs", "energy"
            );
            for entry in store.entries() {
                println!(
                    "{:<6} {:<24} {:<10} {:>9} {:>9.2} {:>7} {:>5} {:>8.3}",
                    entry.id,
                    entry.name,
                    entry.provenance.as_str(),
                    entry.stats.schedules,
                    entry.stats.yield_sum,
                    entry.stats.faults,
                    entry.stats.bugs,
                    jcorpus::energy(&entry.stats)
                );
            }
            for (seed, mutator) in store.quarantine() {
                match mutator {
                    Some(m) => println!("quarantined: {seed} × {m}"),
                    None => println!("quarantined: {seed} (whole seed)"),
                }
            }
            Ok(())
        }
        Some("shard") => {
            let dir = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| "usage: mopfuzzer corpus shard DIR --shards N".to_string())?;
            let mut shards = None;
            let mut it = args[2..].iter();
            while let Some(flag) = it.next() {
                let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                match flag.as_str() {
                    "--shards" => {
                        shards = Some(value.parse().map_err(|_| "bad --shards".to_string())?)
                    }
                    other => return Err(format!("unknown option {other}")),
                }
            }
            let shards = shards.ok_or_else(|| "--shards N is required".to_string())?;
            let migrated = jcorpus::shard_store(Path::new(dir), shards)?;
            println!("sharded {dir} into {shards} shard(s) ({migrated} entr(ies) migrated)");
            Ok(())
        }
        Some("fsck") => {
            let dir = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| {
                    "usage: mopfuzzer corpus fsck DIR [--repair] [--json]".to_string()
                })?;
            let mut repair = false;
            let mut json = false;
            for flag in &args[2..] {
                match flag.as_str() {
                    "--repair" => repair = true,
                    "--json" => json = true,
                    other => return Err(format!("unknown option {other}")),
                }
            }
            let report = jcorpus::fsck(Path::new(dir), repair)?;
            if json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.unrepaired() > 0 {
                return Err(format!(
                    "{} unrepaired issue(s) in {dir}{}",
                    report.unrepaired(),
                    if repair { "" } else { " (rerun with --repair)" },
                ));
            }
            Ok(())
        }
        _ => Err("usage: mopfuzzer corpus <init|import|stats|gc|fsck> ...".to_string()),
    }
}

/// Reads every `.java` file in `dir` as a named seed (sorted by path).
fn load_java_dir(dir: &Path) -> Result<Vec<mopfuzzer::Seed>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "java"))
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let program = mjava::parse(&src).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push(mopfuzzer::Seed {
            name: path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "case".into()),
            program,
        });
    }
    Ok(out)
}

/// `otherData` entries for the trace export — the campaign's identity
/// plus the wall-clock elapsed since the session was installed.
fn trace_meta(
    jobs: usize,
    oracle_jobs: usize,
    rounds: usize,
    rng_seed: u64,
    started: std::time::Instant,
) -> Vec<(&'static str, String)> {
    vec![
        ("jobs", jobs.to_string()),
        ("oracle_jobs", oracle_jobs.to_string()),
        ("rounds", rounds.to_string()),
        ("rng_seed", rng_seed.to_string()),
        ("campaign_wall_ns", started.elapsed().as_nanos().to_string()),
    ]
}

fn run_campaign_observed_or_not(
    seeds: &[mopfuzzer::Seed],
    config: &CampaignConfig,
    observer: Option<&mut dyn CampaignObserver>,
) -> CampaignResult {
    match observer {
        Some(obs) => run_campaign_observed(seeds, config, obs),
        None => mopfuzzer::run_campaign(seeds, config),
    }
}

fn run_resume(journal: &Path, options: &CliOptions) -> Result<(), String> {
    let streaming = stdout_is_claimed(options);
    humanln!(streaming, "resuming campaign from {}", journal.display());
    if let Some(rounds) = options.rounds {
        humanln!(streaming, "  extending to {rounds} total round(s)");
    }
    let mut sink = metrics_sink(options)?;
    let started = std::time::Instant::now();
    let observer = sink.as_mut().map(|s| s as &mut dyn CampaignObserver);
    let jobs = options.jobs.unwrap_or_else(default_jobs);
    let oracle_jobs = options
        .oracle_jobs
        .unwrap_or_else(|| default_oracle_jobs(jobs));
    let result = resume_campaign_extended(
        journal,
        options.rounds,
        Some(jobs),
        Some(oracle_jobs),
        observer,
    )?;
    if let Some(sink) = &sink {
        sink.finish();
    }
    finish_telemetry(
        options,
        &trace_meta(
            jobs,
            oracle_jobs,
            options.rounds.unwrap_or(0),
            options.rng,
            started,
        ),
    )?;
    print_campaign_summary(&result, streaming);
    maybe_print_interrupted(&result, Some(journal), streaming);
    Ok(())
}

/// After a SIGINT/SIGTERM stop, tell the user how to pick the campaign
/// back up. Everything durable was already flushed by the time the
/// summary printed.
fn maybe_print_interrupted(result: &CampaignResult, journal: Option<&Path>, to_stderr: bool) {
    if !result.interrupted {
        return;
    }
    match journal {
        Some(path) => humanln!(
            to_stderr,
            "interrupted: stopped at a round boundary; resume with --resume {}",
            path.display()
        ),
        None => humanln!(
            to_stderr,
            "interrupted: stopped at a round boundary (no journal to resume from)"
        ),
    }
}

fn print_campaign_summary(result: &CampaignResult, to_stderr: bool) {
    humanln!(
        to_stderr,
        "done: {} bug(s), {} executions, {} steps, {} round(s) completed",
        result.bugs.len(),
        result.executions,
        result.steps,
        result.completed_rounds()
    );
    for bug in &result.bugs {
        humanln!(
            to_stderr,
            "  bug {} ({}) on {} via seed {}",
            bug.id,
            if bug.is_crash { "crash" } else { "miscompile" },
            bug.jvm,
            bug.seed
        );
    }
    if result.inconclusive_rounds > 0 {
        humanln!(
            to_stderr,
            "  inconclusive rounds: {}",
            result.inconclusive_rounds
        );
    }
    if result.errored_rounds + result.skipped_rounds + result.retried_attempts > 0 {
        humanln!(
            to_stderr,
            "  faults: {} errored round(s), {} skipped, {} retried attempt(s)",
            result.errored_rounds,
            result.skipped_rounds,
            result.retried_attempts
        );
    }
    if result.wasted_steps + result.wasted_execs > 0 {
        humanln!(
            to_stderr,
            "  wasted on faulted attempts: {} steps, {} execution(s)",
            result.wasted_steps,
            result.wasted_execs
        );
    }
    for name in &result.promotions {
        humanln!(to_stderr, "  promoted: {name}");
    }
    for (seed, mutator) in &result.quarantined {
        match mutator {
            Some(m) => humanln!(to_stderr, "  quarantined: {seed} × {m}"),
            None => humanln!(to_stderr, "  quarantined: {seed} (whole seed)"),
        }
    }
    if let Some(stop) = &result.stopped {
        humanln!(
            to_stderr,
            "  stopped early at round {}: {}",
            stop.round,
            stop.error
        );
    }
}

fn run(options: &CliOptions) -> Result<(), String> {
    let seeds = load_seeds(options)?;
    std::fs::create_dir_all(&options.out)
        .map_err(|e| format!("cannot create {}: {e}", options.out.display()))?;
    println!(
        "fuzzing {} seed(s), {} iterations each, guidance {}, JVMs: {}",
        seeds.len(),
        options.iterations,
        if options.guided {
            "on"
        } else {
            "off (MopFuzzer_g)"
        },
        options
            .jdks
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let mut bugs = 0usize;
    for (i, seed) in seeds.iter().enumerate() {
        let guidance = options.jdks[i % options.jdks.len()].clone();
        let config = FuzzConfig {
            max_iterations: options.iterations,
            variant: if options.guided {
                Variant::Full
            } else {
                Variant::NoGuidance
            },
            guidance: guidance.clone(),
            rng_seed: options.rng.wrapping_add(i as u64),
            weight_scheme: Default::default(),
            banned: Vec::new(),
            fault: None,
        };
        let outcome = fuzz(&seed.program, &config);
        let mutant_path = options.out.join(format!("{}_final.java", seed.name));
        write_text(&mutant_path, &mjava::print(&outcome.final_mutant))?;
        let mut log = Vec::new();
        log.push(format!(
            "seed: {} | guidance: {} | iterations: {} | final delta: {:.2}",
            seed.name,
            guidance.name(),
            outcome.records.len(),
            outcome.final_delta()
        ));
        for record in &outcome.records {
            log.push(format!(
                "iter {:3}: {:26} delta={:.2}",
                record.iteration,
                record.mutator.label(),
                record.delta_vs_parent
            ));
        }
        let verdict = if let Some(crash) = &outcome.crash {
            bugs += 1;
            write_text(
                &options.out.join(format!("{}_hs_err.log", seed.name)),
                &crash.hs_err,
            )?;
            format!("CRASH {} in {}", crash.bug_id, crash.component.label())
        } else {
            // Plain mode has no round-level workers, so by default the
            // oracle may fan out across every hardware thread.
            let oracle_jobs = options.oracle_jobs.unwrap_or_else(default_jobs);
            let diff = differential_jobs(
                &outcome.final_mutant,
                &options.jdks,
                &RunOptions::fuzzing(),
                oracle_jobs,
            );
            match diff.verdict {
                OracleVerdict::Pass => "pass".to_string(),
                OracleVerdict::Inconclusive(reason) => format!("inconclusive: {reason}"),
                OracleVerdict::Crash { jvm, report } => {
                    bugs += 1;
                    write_text(
                        &options.out.join(format!("{}_hs_err.log", seed.name)),
                        &report.hs_err,
                    )?;
                    format!("CRASH {} on {jvm}", report.bug_id)
                }
                OracleVerdict::Miscompile { outputs, .. } => {
                    bugs += 1;
                    let mut s = String::from("MISCOMPILE:\n");
                    for (jvm, obs) in outputs {
                        s.push_str(&format!("  {jvm}: {obs:?}\n"));
                    }
                    s
                }
            }
        };
        log.push(format!("verdict: {verdict}"));
        write_text(
            &options.out.join(format!("{}.log", seed.name)),
            &log.join("\n"),
        )?;
        println!("[{}/{}] {} → {}", i + 1, seeds.len(), seed.name, verdict);
    }
    println!(
        "done: {} bug-revealing case(s); mutants and logs in {}",
        bugs,
        options.out.display()
    );
    Ok(())
}

fn write_text(path: &Path, text: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}
