//! Graceful-interrupt flag for campaign loops.
//!
//! The `mopfuzzer` binary installs SIGINT/SIGTERM handlers that call
//! [`request`]; nothing else happens in signal context. The campaign
//! engines poll [`requested`] at round boundaries: the in-flight round
//! (and, under `--jobs`, the whole in-flight merge) completes and is
//! journaled, the corpus store and telemetry are flushed, and the
//! campaign returns with `CampaignResult::interrupted` set — leaving a
//! journal that `--resume` continues bit-identically.
//!
//! The flag lives in the library (not the binary) so integration tests
//! can drive interruption without delivering real signals.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

/// Requests a graceful stop at the next round boundary. Async-signal-safe
/// (a single atomic store).
pub fn request() {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Whether a stop has been requested.
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Clears the flag — called at campaign start so a flag left over from a
/// previous (tested or aborted) campaign cannot stop the next one at
/// round zero.
pub fn reset() {
    REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_and_reset_clears() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }
}
