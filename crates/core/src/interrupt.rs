//! Graceful-interrupt flag for campaign loops.
//!
//! The `mopfuzzer` binary installs SIGINT/SIGTERM handlers that call
//! [`request`]; nothing else happens in signal context. The campaign
//! engines poll [`requested`] at round boundaries: the in-flight round
//! (and, under `--jobs`, the whole in-flight merge) completes and is
//! journaled, the corpus store and telemetry are flushed, and the
//! campaign returns with `CampaignResult::interrupted` set — leaving a
//! journal that `--resume` continues bit-identically.
//!
//! The flag lives in the library (not the binary) so integration tests
//! can drive interruption without delivering real signals.
//!
//! Two scopes exist. The process-wide flag ([`request`]/[`reset`]) is
//! what signal handlers touch: it stops *every* campaign in the process,
//! which is exactly right for the CLI (one campaign) and for a daemon's
//! drain (all tenants wind down at their next round boundary). A fleet
//! daemon additionally needs to cancel *one* tenant without disturbing
//! the rest; for that a campaign driver thread installs a per-campaign
//! flag with [`set_local`] — [`requested`] then answers true when either
//! scope fires. The local flag is thread-scoped because campaign engines
//! poll only from the driver thread that started them.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

static REQUESTED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static LOCAL: RefCell<Option<Arc<AtomicBool>>> = const { RefCell::new(None) };
}

/// Requests a graceful stop of every campaign in the process at its next
/// round boundary. Async-signal-safe (a single atomic store).
pub fn request() {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Whether a stop has been requested, process-wide or for the campaign
/// driven by this thread.
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
        || LOCAL.with(|local| {
            local
                .borrow()
                .as_ref()
                .is_some_and(|flag| flag.load(Ordering::SeqCst))
        })
}

/// Clears the process-wide flag — called at campaign start so a flag
/// left over from a previous (tested or aborted) campaign cannot stop
/// the next one at round zero.
pub fn reset() {
    REQUESTED.store(false, Ordering::SeqCst);
}

/// Installs a per-campaign cancel flag on this thread. Any holder of the
/// `Arc` (e.g. a daemon's cancel endpoint) stops the campaign this
/// thread drives, and only that campaign.
pub fn set_local(flag: Arc<AtomicBool>) {
    LOCAL.with(|local| *local.borrow_mut() = Some(flag));
}

/// Removes this thread's per-campaign cancel flag.
pub fn clear_local() {
    LOCAL.with(|local| *local.borrow_mut() = None);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_and_reset_clears() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }

    #[test]
    fn local_flag_stops_only_its_own_thread() {
        reset();
        let flag = Arc::new(AtomicBool::new(false));
        set_local(flag.clone());
        assert!(!requested());
        flag.store(true, Ordering::SeqCst);
        assert!(requested());
        // Another thread (another campaign) is untouched.
        std::thread::spawn(|| assert!(!requested())).join().unwrap();
        clear_local();
        assert!(!requested());
        // The process-wide flag still reaches a thread with a local one.
        set_local(Arc::new(AtomicBool::new(false)));
        request();
        assert!(requested());
        reset();
        clear_local();
    }
}
