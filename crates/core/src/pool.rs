//! The process-wide work pool shared by the round-level campaign engine
//! (`--jobs`) and the intra-round differential oracle (`--oracle-jobs`).
//!
//! One pool per process is the oversubscription guard: however many
//! campaigns, rounds and oracle scatters are in flight, the number of
//! pool threads never exceeds the largest capacity any of them asked
//! for — `--jobs N` and `--oracle-jobs M` share workers instead of
//! multiplying them.
//!
//! Two usage patterns:
//!
//! * [`submit`] — fire-and-forget jobs with their own result channel
//!   (the round engine ships [`crate::supervisor`] worker tasks this
//!   way and merges outputs in strict round order);
//! * [`scatter`] — fork/join over a task list with **caller
//!   participation**: the calling thread claims tasks alongside the
//!   pool, so a scatter always makes progress even when every pool
//!   thread is busy (or the pool has no threads at all). The pool is an
//!   accelerator, never a dependency — which is what makes sharing it
//!   between the round engine and the oracle deadlock-free by
//!   construction.
//!
//! Scatter tickets are queued *ahead* of round jobs: an oracle scatter
//! is small and unblocks a round already holding a worker, so helping
//! it first shortens the pipeline instead of lengthening it.
//!
//! Determinism: the pool moves work between threads but never reorders
//! observable effects. Scatter results are gathered by task index, and
//! every caller replays side effects (telemetry, work-meter credits) in
//! canonical order on its own thread — see [`crate::oracle`].

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock};

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}
static PANIC_HOOK: Once = Once::new();

/// Runs `f` inside a panic boundary with the default panic hook silenced
/// on this thread for the duration (the process-wide hook is wrapped
/// once; other threads keep reporting normally). The previous suppression
/// state is restored afterwards, so nesting — an oracle task contained
/// inside an already-contained round — behaves.
pub(crate) fn quiet_catch_unwind<T>(f: impl FnOnce() -> T) -> Result<T, Box<dyn Any + Send>> {
    PANIC_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                previous(info);
            }
        }));
    });
    let saved = SUPPRESS_PANIC_OUTPUT.with(|s| s.replace(true));
    let caught = panic::catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(saved));
    caught
}

type Job = Box<dyn FnOnce() + Send>;

struct PoolState {
    queue: VecDeque<Job>,
    /// Threads alive (spawned lazily, parked forever when idle).
    threads: usize,
    /// Threads currently parked waiting for work.
    idle: usize,
    /// Thread ceiling: the max capacity any caller has requested.
    capacity: usize,
}

/// The process-wide pool. Threads are spawned on demand up to the
/// requested capacity and then live for the process — an idle pool
/// costs parked threads, not CPU.
pub(crate) struct WorkPool {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

static POOL: OnceLock<WorkPool> = OnceLock::new();

/// The shared pool.
pub(crate) fn shared() -> &'static WorkPool {
    POOL.get_or_init(|| WorkPool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            threads: 0,
            idle: 0,
            capacity: 0,
        }),
        work_ready: Condvar::new(),
    })
}

impl WorkPool {
    /// Raises the thread ceiling to at least `n`. Capacities from
    /// different subsystems take the max, not the sum — that is the
    /// no-oversubscription contract.
    pub(crate) fn ensure_capacity(&self, n: usize) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.capacity = state.capacity.max(n);
    }

    /// Enqueues a job at the back of the queue (round-engine work).
    pub(crate) fn submit(&self, job: Job) {
        self.push(job, false);
    }

    /// Enqueues a job at the front of the queue (scatter tickets).
    fn submit_front(&self, job: Job) {
        self.push(job, true);
    }

    fn push(&self, job: Job, front: bool) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if front {
            state.queue.push_front(job);
        } else {
            state.queue.push_back(job);
        }
        if state.idle > 0 {
            self.work_ready.notify_one();
        } else if state.threads < state.capacity {
            state.threads += 1;
            std::thread::spawn(|| shared().worker_loop());
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(job) = state.queue.pop_front() {
                        break job;
                    }
                    state.idle += 1;
                    state = self
                        .work_ready
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                    state.idle -= 1;
                }
            };
            // A panicking job must not take the pool thread with it. Jobs
            // are expected to contain their own panics (and stay silent
            // about it); anything that escapes here already reported via
            // the panic hook.
            let _ = panic::catch_unwind(AssertUnwindSafe(job));
        }
    }
}

/// Shared fork/join state for one [`scatter`] call.
struct Scatter<I, T, F> {
    inputs: Vec<Mutex<Option<I>>>,
    cursor: Mutex<usize>,
    results: Mutex<Vec<Option<T>>>,
    done: Condvar,
    finished: Mutex<usize>,
    run: F,
}

impl<I, T, F: Fn(usize, I) -> T> Scatter<I, T, F> {
    /// Claims and runs tasks until none remain. Panics escaping `run`
    /// still mark the slot finished (empty), so the gathering caller can
    /// fail loudly instead of deadlocking.
    fn work(&self) {
        loop {
            let index = {
                let mut cursor = self.cursor.lock().unwrap_or_else(|e| e.into_inner());
                if *cursor >= self.inputs.len() {
                    return;
                }
                let i = *cursor;
                *cursor += 1;
                i
            };
            let input = self.inputs[index]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("each scatter task is claimed once");
            let result = quiet_catch_unwind(|| (self.run)(index, input));
            let mut results = self.results.lock().unwrap_or_else(|e| e.into_inner());
            if let Ok(value) = result {
                results[index] = Some(value);
            }
            drop(results);
            let mut finished = self.finished.lock().unwrap_or_else(|e| e.into_inner());
            *finished += 1;
            if *finished == self.inputs.len() {
                self.done.notify_all();
            }
        }
    }
}

/// Runs `run` over every input and returns the results in input order.
///
/// `workers` is the total concurrency *including the caller*: up to
/// `workers - 1` pool tickets are queued, and the calling thread claims
/// tasks itself until the list is empty, then blocks only for tasks
/// other threads already claimed. `workers <= 1` degenerates to a plain
/// in-order loop on the caller with no pool interaction at all.
///
/// `run` must confine its observable side effects to its return value
/// (or roll them back, e.g. via [`jtelemetry::work::isolated`]): tasks
/// execute on arbitrary threads in arbitrary order, and callers are
/// expected to replay effects at gather time in canonical order. A task
/// that panics out of `run` panics the scatter at gather time.
pub(crate) fn scatter<I, T, F>(inputs: Vec<I>, workers: usize, run: F) -> Vec<T>
where
    I: Send + 'static,
    T: Send + 'static,
    F: Fn(usize, I) -> T + Send + Sync + 'static,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    if workers <= 1 || n == 1 {
        return inputs
            .into_iter()
            .enumerate()
            .map(|(i, input)| run(i, input))
            .collect();
    }
    let state = Arc::new(Scatter {
        inputs: inputs.into_iter().map(|i| Mutex::new(Some(i))).collect(),
        cursor: Mutex::new(0),
        results: Mutex::new((0..n).map(|_| None).collect()),
        done: Condvar::new(),
        finished: Mutex::new(0),
        run,
    });
    let tickets = (workers - 1).min(n - 1);
    let pool = shared();
    pool.ensure_capacity(tickets);
    for _ in 0..tickets {
        let ticket = Arc::clone(&state);
        pool.submit_front(Box::new(move || ticket.work()));
    }
    state.work();
    let mut finished = state.finished.lock().unwrap_or_else(|e| e.into_inner());
    while *finished < n {
        finished = state.done.wait(finished).unwrap_or_else(|e| e.into_inner());
    }
    drop(finished);
    let results = std::mem::take(&mut *state.results.lock().unwrap_or_else(|e| e.into_inner()));
    results
        .into_iter()
        .map(|slot| slot.expect("a scatter task panicked; tasks must contain their panics"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_returns_results_in_input_order() {
        for workers in [1, 2, 4, 9] {
            let out = scatter((0..17u64).collect(), workers, |i, v| {
                assert_eq!(i as u64, v);
                v * 10
            });
            assert_eq!(out, (0..17u64).map(|v| v * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scatter_handles_empty_and_single() {
        assert!(scatter(Vec::<u8>::new(), 4, |_, v| v).is_empty());
        assert_eq!(scatter(vec![7u8], 4, |_, v| v), vec![7]);
    }

    #[test]
    fn scatter_caller_makes_progress_without_pool_threads() {
        // workers=2 asks for one ticket; even if no pool thread ever
        // picks it up, the caller completes every task itself.
        let out = scatter((0..64u32).collect(), 2, |_, v| v + 1);
        assert_eq!(out.len(), 64);
        assert_eq!(out[63], 64);
    }

    #[test]
    fn nested_scatter_does_not_deadlock() {
        let out = scatter((0..4u64).collect(), 4, |_, v| {
            scatter((0..3u64).collect(), 3, move |_, w| v * 10 + w)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(out, vec![3, 33, 63, 93]);
    }

    #[test]
    fn quiet_catch_unwind_contains_and_restores() {
        assert_eq!(quiet_catch_unwind(|| 5).unwrap(), 5);
        let err = quiet_catch_unwind(|| panic!("contained")).unwrap_err();
        assert_eq!(err.downcast_ref::<&str>(), Some(&"contained"));
        // Nested: inner catch must not clear the outer suppression.
        let outer = quiet_catch_unwind(|| {
            let _ = quiet_catch_unwind(|| panic!("inner"));
            assert!(SUPPRESS_PANIC_OUTPUT.with(Cell::get));
            panic!("outer");
        });
        assert!(outer.is_err());
        assert!(!SUPPRESS_PANIC_OUTPUT.with(Cell::get));
    }

    #[test]
    fn capacity_takes_the_max_of_requests() {
        let pool = shared();
        pool.ensure_capacity(2);
        pool.ensure_capacity(1);
        let state = pool.state.lock().unwrap();
        assert!(state.capacity >= 2);
    }
}
