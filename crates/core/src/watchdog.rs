//! Wall-clock watchdog for campaign rounds.
//!
//! One process-wide supervisor thread holds a list of armed deadlines,
//! each tied to a [`CancelToken`]. When a deadline passes before its
//! guard is dropped, the token is cancelled; the round's worker observes
//! the cancellation at its next poll (interpreter dispatch, oracle task
//! boundaries, the injected-hang loop) and unwinds with the timeout
//! panic marker, which the supervisor classifies as
//! `RoundError::Timeout` and feeds into the normal retry/quarantine
//! taxonomy.
//!
//! The watchdog never records *elapsed* time anywhere a journal can see:
//! timeouts carry only the configured limit, so journals stay
//! bit-identical across machines and `--jobs` settings.

use jtelemetry::cancel::CancelToken;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

struct State {
    /// Armed deadlines by id. A HashMap (not a heap) keeps disarm O(1);
    /// the watchdog thread scans for the minimum, which is fine at
    /// "a few per concurrent round" scale.
    armed: HashMap<u64, (Instant, CancelToken)>,
    next_id: u64,
}

struct Watchdog {
    state: Mutex<State>,
    changed: Condvar,
}

fn shared() -> &'static Watchdog {
    static DOG: OnceLock<&'static Watchdog> = OnceLock::new();
    DOG.get_or_init(|| {
        let dog: &'static Watchdog = Box::leak(Box::new(Watchdog {
            state: Mutex::new(State {
                armed: HashMap::new(),
                next_id: 0,
            }),
            changed: Condvar::new(),
        }));
        std::thread::Builder::new()
            .name("mop-watchdog".into())
            .spawn(move || run(dog))
            .expect("spawn watchdog thread");
        dog
    })
}

fn run(dog: &'static Watchdog) {
    let mut state = dog.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let now = Instant::now();
        let mut next: Option<Instant> = None;
        let expired: Vec<u64> = state
            .armed
            .iter()
            .filter(|(_, (deadline, _))| *deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            if let Some((_, token)) = state.armed.remove(&id) {
                token.cancel();
            }
        }
        for (deadline, _) in state.armed.values() {
            next = Some(next.map_or(*deadline, |n| n.min(*deadline)));
        }
        state = match next {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                dog.changed
                    .wait_timeout(state, wait)
                    .unwrap_or_else(|e| e.into_inner())
                    .0
            }
            None => dog.changed.wait(state).unwrap_or_else(|e| e.into_inner()),
        };
    }
}

/// Disarms its deadline on drop. Dropping after the deadline fired is
/// fine — the entry is already gone and the token already cancelled.
pub(crate) struct WatchdogGuard {
    id: u64,
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        let dog = shared();
        let mut state = dog.state.lock().unwrap_or_else(|e| e.into_inner());
        state.armed.remove(&self.id);
        dog.changed.notify_all();
    }
}

/// Arms the watchdog: `token` is cancelled `timeout` from now unless the
/// returned guard is dropped first.
pub(crate) fn arm(token: CancelToken, timeout: Duration) -> WatchdogGuard {
    let dog = shared();
    let mut state = dog.state.lock().unwrap_or_else(|e| e.into_inner());
    let id = state.next_id;
    state.next_id += 1;
    state.armed.insert(id, (Instant::now() + timeout, token));
    dog.changed.notify_all();
    WatchdogGuard { id }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_the_deadline() {
        let token = CancelToken::new();
        let _guard = arm(token.clone(), Duration::from_millis(20));
        assert!(!token.is_cancelled());
        let deadline = Instant::now() + Duration::from_secs(5);
        while !token.is_cancelled() {
            assert!(Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn disarm_prevents_the_cancellation() {
        let token = CancelToken::new();
        let guard = arm(token.clone(), Duration::from_millis(30));
        drop(guard);
        std::thread::sleep(Duration::from_millis(80));
        assert!(!token.is_cancelled(), "disarmed deadline still fired");
    }

    #[test]
    fn concurrent_deadlines_fire_independently() {
        let fast = CancelToken::new();
        let slow = CancelToken::new();
        let _f = arm(fast.clone(), Duration::from_millis(15));
        let slow_guard = arm(slow.clone(), Duration::from_secs(30));
        let deadline = Instant::now() + Duration::from_secs(5);
        while !fast.is_cancelled() {
            assert!(Instant::now() < deadline, "fast deadline never fired");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(!slow.is_cancelled());
        drop(slow_guard);
    }
}
