//! Statistics over fuzzing results: the mutator/pair involvement ratios of
//! Table 5, the Δ trajectory of Figure 1, and small numeric helpers.

use crate::campaign::FoundBug;
use crate::fuzzer::IterationRecord;
use crate::mutators::MutatorKind;
use jprofile::Obv;
use std::collections::{BTreeMap, BTreeSet};

/// Median of a sample (0 for an empty one).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN deltas"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Five-number summary (min, q1, median, q3, max) for box plots.
pub fn five_numbers(values: &[f64]) -> [f64; 5] {
    if values.is_empty() {
        return [0.0; 5];
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN deltas"));
    let q = |p: f64| -> f64 {
        let pos = p * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
        }
    };
    [q(0.0), q(0.25), q(0.5), q(0.75), q(1.0)]
}

/// Fraction of bug-triggering cases each mutator is involved in,
/// descending — Table 5's left half.
pub fn mutator_ratios(bugs: &[FoundBug]) -> Vec<(MutatorKind, f64)> {
    let total = bugs.len().max(1) as f64;
    let mut counts: BTreeMap<MutatorKind, usize> = BTreeMap::new();
    for bug in bugs {
        let distinct: BTreeSet<MutatorKind> = bug.mutators.iter().copied().collect();
        for kind in distinct {
            *counts.entry(kind).or_insert(0) += 1;
        }
    }
    let mut out: Vec<(MutatorKind, f64)> = counts
        .into_iter()
        .map(|(k, c)| (k, c as f64 / total))
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("ratios are finite"));
    out
}

/// Fraction of bug-triggering cases each unordered mutator *pair* is
/// involved in, descending — Table 5's right half.
pub fn pair_ratios(bugs: &[FoundBug]) -> Vec<((MutatorKind, MutatorKind), f64)> {
    let total = bugs.len().max(1) as f64;
    let mut counts: BTreeMap<(MutatorKind, MutatorKind), usize> = BTreeMap::new();
    for bug in bugs {
        let distinct: Vec<MutatorKind> = {
            let s: BTreeSet<MutatorKind> = bug.mutators.iter().copied().collect();
            s.into_iter().collect()
        };
        for (i, &a) in distinct.iter().enumerate() {
            for &b in &distinct[i + 1..] {
                *counts.entry((a, b)).or_insert(0) += 1;
            }
        }
    }
    let mut out: Vec<_> = counts
        .into_iter()
        .map(|(pair, c)| (pair, c as f64 / total))
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("ratios are finite"));
    out
}

/// Figure 1's curve: per-iteration Δ between the i-th mutant's OBV and
/// the original seed's.
pub fn trajectory(seed_obv: &Obv, records: &[IterationRecord]) -> Vec<f64> {
    records
        .iter()
        .map(|r| Obv::delta(seed_obv, &r.obv))
        .collect()
}

/// Indices of "large jumps" in a trajectory: iterations whose increment
/// over the previous point exceeds `threshold` (Figure 1's red marks).
pub fn large_jumps(trajectory: &[f64], threshold: f64) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 1..trajectory.len() {
        if trajectory[i] - trajectory[i - 1] > threshold {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvmsim::Component;

    fn bug(mutators: &[MutatorKind]) -> FoundBug {
        FoundBug {
            id: "X".into(),
            component: Component::OtherJit,
            is_crash: true,
            jvm: "HotSpur-17".into(),
            seed: "s".into(),
            mutators: mutators.to_vec(),
            at_execs: 0,
            at_steps: 0,
            mutant: mjava::Program::new(),
        }
    }

    #[test]
    fn median_and_quartiles() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        let f = five_numbers(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(f, [1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn mutator_ratios_count_distinct_involvement() {
        use MutatorKind::*;
        let bugs = vec![
            bug(&[LoopUnrolling, LockElimination, LoopUnrolling]),
            bug(&[LoopUnrolling]),
        ];
        let ratios = mutator_ratios(&bugs);
        assert_eq!(ratios[0], (LoopUnrolling, 1.0));
        let lock = ratios.iter().find(|(k, _)| *k == LockElimination).unwrap();
        assert!((lock.1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pair_ratios_are_unordered() {
        use MutatorKind::*;
        let bugs = vec![bug(&[LockElimination, LoopUnrolling])];
        let pairs = pair_ratios(&bugs);
        assert_eq!(pairs.len(), 1);
        assert!((pairs[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jumps_detected_above_threshold() {
        let t = vec![1.0, 1.5, 6.0, 6.2, 12.0];
        assert_eq!(large_jumps(&t, 3.0), vec![2, 4]);
    }
}
