//! Fault-isolated campaign supervisor.
//!
//! [`crate::campaign::run_campaign`] delegates every round to this module,
//! which wraps the round body (mutator applications, guidance executions,
//! differential testing) in a panic boundary and turns failures into data
//! instead of aborts:
//!
//! * **Panic containment** — a panicking mutator or simulated VM is caught
//!   with `catch_unwind` and classified into the [`RoundError`] taxonomy
//!   by its payload marker ([`jvmsim::fault`] panics are marked; anything
//!   unmarked is attributed to the VM execution layer, which dominates the
//!   round's code).
//! * **Bounded retry** — a faulted round is retried with a re-derived RNG
//!   seed up to [`SupervisorConfig::max_retries`] times; faulted attempts
//!   contribute nothing to the campaign totals (rounds are atomic).
//! * **Quarantine** — a `(seed, mutator)` pair that keeps faulting is
//!   banned from future rounds; a seed that faults without an attributable
//!   mutator is quarantined whole and its rounds are skipped.
//! * **Budgets** — campaign-wide step/execution ceilings stop the campaign
//!   gracefully, and a per-round step deadline fails runaway rounds.
//! * **Checkpointing** — when a journal is attached, every round's record
//!   is appended as one JSONL line; [`crate::campaign::resume_campaign`]
//!   replays the records through the same [`apply_record`] code path the
//!   live campaign uses, so a resumed campaign is bit-identical to an
//!   uninterrupted one.

use crate::campaign::{component_of_miscompile, CampaignConfig, CampaignResult, FoundBug};
use crate::corpus::Seed;
use crate::fuzzer::{fuzz, FuzzConfig};
use crate::journal::{
    BugSighting, Disposition, JournalWriter, PromotionReason, PromotionRecord, RoundRecord,
};
use crate::mutators::MutatorKind;
use crate::oracle::{differential_jobs, OracleVerdict};
use crate::pool;
use jprofile::Obv;
use jvmsim::fault::{MUTATOR_PANIC_MARKER, VM_PANIC_MARKER};
use jvmsim::{run_jvm, Component, JvmSpec, RunOptions, Verdict};
use mjava::Program;
use std::any::Any;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::{mpsc, Arc};

/// Which budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// One round exceeded [`SupervisorConfig::round_step_deadline`].
    RoundSteps,
    /// The campaign exceeded [`SupervisorConfig::max_steps`].
    CampaignSteps,
    /// The campaign exceeded [`SupervisorConfig::max_executions`].
    CampaignExecutions,
}

/// Why a round attempt (or the campaign) failed — the supervisor's fault
/// taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundError {
    /// A mutator panicked while generating a child. When the panic payload
    /// names the mutator (injected faults do), it is attributed.
    MutatorPanic {
        /// The offending mutator, when attributable from the payload.
        mutator: Option<MutatorKind>,
        /// The panic message.
        message: String,
    },
    /// A simulated JVM panicked mid-execution (also the fallback class for
    /// unmarked panics, which overwhelmingly originate in VM code).
    VmPanic {
        /// The panic message.
        message: String,
    },
    /// The round's seed failed class loading, so nothing could be fuzzed.
    BuildFailure {
        /// The build error.
        message: String,
    },
    /// A step or execution budget was exhausted.
    BudgetExhausted {
        /// Which budget.
        budget: BudgetKind,
        /// The configured limit.
        limit: u64,
        /// The observed value.
        used: u64,
    },
    /// The attempt exceeded [`SupervisorConfig::round_wall_timeout_ms`]
    /// and was cancelled by the watchdog. Carries only the *configured*
    /// limit — never the elapsed time — so journals stay bit-identical
    /// across machines and worker counts.
    Timeout {
        /// The configured wall-clock limit in milliseconds.
        limit_ms: u64,
    },
}

impl fmt::Display for RoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoundError::MutatorPanic {
                mutator: Some(k), ..
            } => {
                write!(f, "mutator panic in {k:?}")
            }
            RoundError::MutatorPanic { mutator: None, .. } => write!(f, "mutator panic"),
            RoundError::VmPanic { message } => write!(f, "VM panic: {message}"),
            RoundError::BuildFailure { message } => write!(f, "build failure: {message}"),
            RoundError::BudgetExhausted {
                budget,
                limit,
                used,
            } => {
                write!(f, "budget exhausted ({budget:?}): {used} > {limit}")
            }
            RoundError::Timeout { limit_ms } => {
                write!(
                    f,
                    "round timeout: exceeded the {limit_ms} ms wall-clock limit"
                )
            }
        }
    }
}

/// One recorded failure: which round, which attempt, what went wrong.
#[derive(Debug, Clone)]
pub struct RoundFailure {
    /// The round index.
    pub round: usize,
    /// The attempt within the round (0 = first try).
    pub attempt: u32,
    /// The classified error.
    pub error: RoundError,
    /// Flight-recorder dump of the failed attempt (most recent events
    /// first-to-last), naming the phases/mutators/VMs active when the
    /// attempt died. Empty when telemetry is disabled.
    pub flight: Vec<jtelemetry::FlightEvent>,
}

/// Equality ignores the flight dump: it is diagnostic context, not part
/// of a failure's identity. A campaign run with telemetry on must compare
/// equal to the same campaign run with telemetry off (and to its own
/// journal replay, whatever the replaying process's telemetry state).
impl PartialEq for RoundFailure {
    fn eq(&self, other: &RoundFailure) -> bool {
        self.round == other.round && self.attempt == other.attempt && self.error == other.error
    }
}

/// Fault-handling policy of a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Retries after a faulted round attempt (each with a fresh RNG seed).
    pub max_retries: u32,
    /// Failed rounds a `(seed, mutator)` pair may accumulate before it is
    /// quarantined.
    pub quarantine_threshold: u32,
    /// Campaign-wide interpreter-step ceiling (simulated time budget).
    pub max_steps: Option<u64>,
    /// Campaign-wide JVM-execution ceiling.
    pub max_executions: Option<u64>,
    /// Per-round step deadline; rounds exceeding it are treated as faults.
    pub round_step_deadline: Option<u64>,
    /// Wall-clock limit per round attempt, in milliseconds. A watchdog
    /// cancels attempts that exceed it; the cancelled attempt is classified
    /// as [`RoundError::Timeout`] and retried/quarantined like any fault.
    pub round_wall_timeout_ms: Option<u64>,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            max_retries: 2,
            quarantine_threshold: 2,
            max_steps: None,
            max_executions: None,
            round_step_deadline: None,
            round_wall_timeout_ms: None,
        }
    }
}

/// Repeat-offender bookkeeping. Keys are `(seed name, Some(mutator))` for
/// attributable faults and `(seed name, None)` for faults of the seed as a
/// whole (build failures, unattributed panics).
#[derive(Debug, Clone, Default)]
pub struct Quarantine {
    counts: HashMap<(String, Option<MutatorKind>), u32>,
    quarantined: Vec<(String, Option<MutatorKind>)>,
}

impl Quarantine {
    /// Records one failed round for a pair. Returns true when this failure
    /// pushes the pair over the threshold (it is newly quarantined).
    pub fn record(&mut self, threshold: u32, seed: &str, mutator: Option<MutatorKind>) -> bool {
        let key = (seed.to_string(), mutator);
        let count = self.counts.entry(key.clone()).or_insert(0);
        *count += 1;
        if *count >= threshold.max(1) && !self.quarantined.contains(&key) {
            self.quarantined.push(key);
            return true;
        }
        false
    }

    /// Mutators banned for a seed.
    pub fn banned_mutators(&self, seed: &str) -> Vec<MutatorKind> {
        self.quarantined
            .iter()
            .filter(|(s, m)| s == seed && m.is_some())
            .filter_map(|(_, m)| *m)
            .collect()
    }

    /// True when the seed itself (not just one mutator) is quarantined, so
    /// its rounds must be skipped entirely.
    pub fn seed_blocked(&self, seed: &str) -> bool {
        self.quarantined
            .iter()
            .any(|(s, m)| s == seed && m.is_none())
    }

    /// All quarantined pairs in quarantine order.
    pub fn pairs(&self) -> &[(String, Option<MutatorKind>)] {
        &self.quarantined
    }

    /// Seeds the quarantine with pairs inherited from earlier campaigns
    /// (corpus mode). Preloaded pairs ban immediately but are never
    /// re-reported in [`CampaignResult::quarantined`] — `record` skips
    /// pairs already present.
    pub fn preload(&mut self, pairs: &[(String, Option<MutatorKind>)]) {
        for pair in pairs {
            if !self.quarantined.contains(pair) {
                self.quarantined.push(pair.clone());
            }
        }
    }
}

/// Corpus-mode state threaded through the supervised loop: the scheduler
/// replaces round-robin seed rotation, promotions admit minimized mutants
/// back into the store, and fingerprints keep admission idempotent. All of
/// it is derived from journal-visible data (header baseline + round
/// records), never from the live store, so journal replay reconstructs the
/// exact same state.
pub(crate) struct CorpusCtx<'a> {
    /// The backing store (mutated in memory; flushed by the campaign).
    pub store: &'a mut jcorpus::Store,
    /// Power scheduler over the campaign's entries.
    pub scheduler: jcorpus::PowerScheduler,
    /// Entry name → program, for scheduled rounds and promotion oracles.
    pub programs: HashMap<String, Program>,
    /// Every fingerprint known to this campaign (baseline + promotions).
    pub fingerprints: HashSet<u64>,
    /// OBV-delta threshold for promotion.
    pub promote_threshold: f64,
    /// Quarantine pairs inherited from earlier campaigns over the store.
    pub preq: Vec<(String, Option<MutatorKind>)>,
    /// Entry name → floor streak at campaign start (journal baseline), the
    /// base the post-campaign flush counts GC streaks from.
    pub baseline_streaks: HashMap<String, u64>,
}

/// Runs `f` inside a panic boundary (see [`pool::quiet_catch_unwind`]:
/// contained panics stay silent on this thread while panics elsewhere
/// keep reporting normally) and classifies the payload. A panel JVM that
/// panicked inside a parallel differential merge is re-raised by
/// [`crate::oracle::differential_jobs`] at its canonical pool position,
/// so the payload reaching this boundary — and its classification — is
/// identical at any `--oracle-jobs`.
fn catch_round<T>(f: impl FnOnce() -> T) -> Result<T, RoundError> {
    pool::quiet_catch_unwind(f).map_err(|payload| classify_panic(payload.as_ref()))
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Maps a caught panic payload onto the taxonomy via the fault markers.
fn classify_panic(payload: &(dyn Any + Send)) -> RoundError {
    let message = panic_message(payload);
    if message.starts_with(jtelemetry::cancel::TIMEOUT_PANIC_MARKER) {
        // The configured limit is patched in by `execute_round`; the
        // classifier sees only the panic payload.
        return RoundError::Timeout { limit_ms: 0 };
    }
    if let Some(rest) = message.strip_prefix(MUTATOR_PANIC_MARKER) {
        let name = rest.trim_start_matches(':').split(':').next().unwrap_or("");
        return RoundError::MutatorPanic {
            mutator: MutatorKind::from_debug_name(name),
            message,
        };
    }
    // VM_PANIC_MARKER panics and unmarked panics both land here: the VM
    // execution layer is where a round spends nearly all of its time.
    let _ = VM_PANIC_MARKER;
    RoundError::VmPanic { message }
}

/// The RNG seed of `(round, attempt)`. Attempt 0 reproduces the original
/// unsupervised derivation, so fault-free campaigns are unchanged; each
/// retry re-derives, giving the round a genuinely different trajectory.
fn round_rng_seed(base: u64, round: usize, attempt: u32) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(round as u64)
        .wrapping_add((attempt as u64).wrapping_mul(0xA076_1D64_78BD_642F))
}

/// Folds one round record into the campaign result. Both the live path
/// and journal replay go through this function — that shared path is what
/// makes resumption bit-identical.
pub(crate) fn apply_record(
    result: &mut CampaignResult,
    seen: &mut HashSet<String>,
    quarantine: &mut Quarantine,
    record: &RoundRecord,
    threshold: u32,
    mut corpus: Option<&mut CorpusCtx>,
) {
    result.round_errors.extend(record.errors.iter().cloned());
    result.wasted_steps += record.wasted_steps;
    result.wasted_execs += record.wasted_execs;
    match record.disposition {
        Disposition::Skipped => {
            result.skipped_rounds += 1;
            jtelemetry::count(jtelemetry::Counter::RoundsSkipped, 1);
        }
        Disposition::Errored => {
            // The final attempt was not retried; every earlier one was.
            let retries = record.errors.len().saturating_sub(1) as u64;
            result.retried_attempts += retries;
            result.errored_rounds += 1;
            jtelemetry::count(jtelemetry::Counter::RoundsErrored, 1);
            jtelemetry::count(jtelemetry::Counter::RetriedAttempts, retries);
            if let Some((seed, mutator)) = &record.fault_pair {
                if quarantine.record(threshold, seed, *mutator) {
                    result.quarantined.push((seed.clone(), *mutator));
                }
            }
            if let Some(ctx) = corpus.as_deref_mut() {
                ctx.scheduler.record_fault(&record.seed);
                if quarantine.seed_blocked(&record.seed) {
                    ctx.scheduler.block(&record.seed);
                }
            }
        }
        Disposition::Ok => {
            result.retried_attempts += record.errors.len() as u64;
            jtelemetry::count(jtelemetry::Counter::RoundsOk, 1);
            jtelemetry::count(
                jtelemetry::Counter::RetriedAttempts,
                record.errors.len() as u64,
            );
            result.executions += record.fuzz_execs;
            result.steps += record.fuzz_steps;
            result.coverage.merge(&record.coverage);
            result.final_deltas.push(record.final_delta);
            if let Some(sighting) = &record.crash {
                push_bug(result, seen, sighting, &record.seed);
            }
            if let Some((execs, steps)) = record.diff {
                result.executions += execs;
                result.steps += steps;
            }
            for sighting in &record.diff_bugs {
                push_bug(result, seen, sighting, &record.seed);
            }
            if record.inconclusive {
                result.inconclusive_rounds += 1;
            }
            if let Some(ctx) = corpus.as_deref_mut() {
                let bugs = record.crash.iter().count() as u64 + record.diff_bugs.len() as u64;
                ctx.scheduler
                    .record_ok(&record.seed, record.final_delta, bugs);
            }
        }
    }
    // Promotion accounting is shared by live and replay: the record carries
    // the minimized program and its cost, so replay re-admits without
    // re-reducing.
    if let Some(promo) = &record.promotion {
        result.executions += promo.execs;
        result.steps += promo.steps;
        result.promotions.push(promo.name.clone());
        if let Some(ctx) = corpus {
            ctx.fingerprints.insert(promo.fingerprint);
            ctx.programs
                .insert(promo.name.clone(), promo.source.clone());
            ctx.scheduler
                .admit(&promo.name, jcorpus::EntryStats::default(), false);
            let _ = ctx.store.admit(
                &promo.name,
                &promo.source,
                promo.fingerprint,
                jcorpus::Provenance::Promoted,
                Some(promo.from_seed.clone()),
            );
        }
    }
}

fn push_bug(
    result: &mut CampaignResult,
    seen: &mut HashSet<String>,
    sighting: &BugSighting,
    seed: &str,
) {
    if seen.insert(sighting.id.clone()) {
        result.bugs.push(FoundBug {
            id: sighting.id.clone(),
            component: sighting.component,
            is_crash: sighting.is_crash,
            jvm: sighting.jvm.clone(),
            seed: seed.to_string(),
            mutators: sighting.mutators.clone(),
            at_execs: result.executions,
            at_steps: result.steps,
            mutant: sighting.mutant.clone(),
        });
    }
}

fn budget_stop(
    result: &CampaignResult,
    supervisor: &SupervisorConfig,
    round: usize,
) -> Option<RoundFailure> {
    let stop = |budget, limit, used| {
        Some(RoundFailure {
            round,
            attempt: 0,
            error: RoundError::BudgetExhausted {
                budget,
                limit,
                used,
            },
            flight: Vec::new(),
        })
    };
    // Budgets meter *all* simulated work, productive and wasted alike: a
    // campaign that burns its step ceiling on doomed retries must stop
    // just as surely as one that spends it productively.
    if let Some(limit) = supervisor.max_steps {
        let used = result.steps + result.wasted_steps;
        if used >= limit {
            return stop(BudgetKind::CampaignSteps, limit, used);
        }
    }
    if let Some(limit) = supervisor.max_executions {
        let used = result.executions + result.wasted_execs;
        if used >= limit {
            return stop(BudgetKind::CampaignExecutions, limit, used);
        }
    }
    None
}

/// One isolated attempt at a round: fuzz, oracle-check, and classify.
/// Everything computed here is local — the campaign result is only touched
/// by [`apply_record`] once the attempt as a whole has succeeded. Returns
/// the record plus the final mutant (for promotion; not journaled per se).
fn run_attempt(
    round: usize,
    seed: &Seed,
    guidance: &JvmSpec,
    config: &CampaignConfig,
    banned: &[MutatorKind],
    rng_seed: u64,
) -> Result<(RoundRecord, Program), RoundError> {
    let fuzz_config = FuzzConfig {
        max_iterations: config.iterations_per_seed,
        variant: config.variant,
        guidance: guidance.clone(),
        rng_seed,
        weight_scheme: Default::default(),
        banned: banned.to_vec(),
        fault: config.fault.clone(),
    };
    let (record, mutant) = catch_round(|| {
        let outcome = {
            let _fuzz_span = jtelemetry::trace_span("fuzz", || {
                vec![("seed", seed.name.clone()), ("guidance", guidance.name())]
            });
            fuzz(&seed.program, &fuzz_config)
        };
        if let Some(message) = &outcome.seed_invalid {
            return Err(RoundError::BuildFailure {
                message: message.clone(),
            });
        }
        let mut record = RoundRecord {
            round,
            seed: seed.name.clone(),
            disposition: Disposition::Ok,
            fuzz_execs: outcome.executions,
            fuzz_steps: outcome.steps,
            diff: None,
            final_delta: outcome.final_delta(),
            inconclusive: false,
            errors: Vec::new(),
            crash: None,
            diff_bugs: Vec::new(),
            coverage: outcome.coverage.clone(),
            fault_pair: None,
            wasted_steps: 0,
            wasted_execs: 0,
            promotion: None,
        };
        if let Some(report) = &outcome.crash {
            record.crash = Some(BugSighting {
                id: report.bug_id.clone(),
                component: report.component,
                is_crash: true,
                jvm: guidance.name(),
                mutators: outcome.mutator_history(),
                mutant: outcome.final_mutant.clone(),
            });
            return Ok((record, outcome.final_mutant));
        }
        let options = RunOptions {
            fault: config.fault.clone(),
            ..RunOptions::fuzzing()
        };
        let diff = {
            let _diff_span = jtelemetry::trace_span("differential", || {
                vec![("pool", config.pool.len().to_string())]
            });
            differential_jobs(
                &outcome.final_mutant,
                &config.pool,
                &options,
                config.oracle_jobs,
            )
        };
        record.diff = Some((diff.executions, diff.steps));
        record.coverage.merge(&diff.coverage);
        match diff.verdict {
            OracleVerdict::Crash { jvm, report } => record.diff_bugs.push(BugSighting {
                id: report.bug_id.clone(),
                component: report.component,
                is_crash: true,
                jvm,
                mutators: outcome.mutator_history(),
                mutant: outcome.final_mutant.clone(),
            }),
            OracleVerdict::Miscompile { outputs, culprits } => {
                for id in culprits {
                    let component = component_of_miscompile(&id).unwrap_or(Component::OtherJit);
                    record.diff_bugs.push(BugSighting {
                        id,
                        component,
                        is_crash: false,
                        jvm: outputs.first().map(|(j, _)| j.clone()).unwrap_or_default(),
                        mutators: outcome.mutator_history(),
                        mutant: outcome.final_mutant.clone(),
                    });
                }
            }
            OracleVerdict::Inconclusive(_) => record.inconclusive = true,
            OracleVerdict::Pass => {}
        }
        Ok((record, outcome.final_mutant))
    })??;
    if let Some(deadline) = config.supervisor.round_step_deadline {
        let used = record.fuzz_steps + record.diff.map_or(0, |(_, s)| s);
        if used > deadline {
            return Err(RoundError::BudgetExhausted {
                budget: BudgetKind::RoundSteps,
                limit: deadline,
                used,
            });
        }
    }
    Ok((record, mutant))
}

/// Runs one round under supervision: skip if quarantined, otherwise
/// attempt with bounded retries and produce the round's record (plus the
/// final mutant of an `Ok` round, for promotion consideration).
///
/// `skip` and `banned` are passed as data rather than read from a
/// [`Quarantine`] so the round is a pure function of its inputs — workers
/// execute it speculatively on snapshots and the coordinator validates the
/// snapshot afterwards (see [`run_parallel_rounds`]).
fn execute_round(
    round: usize,
    seed: &Seed,
    config: &CampaignConfig,
    skip: bool,
    banned: &[MutatorKind],
) -> (RoundRecord, Option<Program>) {
    let skeleton = |disposition| RoundRecord {
        round,
        seed: seed.name.clone(),
        disposition,
        fuzz_execs: 0,
        fuzz_steps: 0,
        diff: None,
        final_delta: 0.0,
        inconclusive: false,
        errors: Vec::new(),
        crash: None,
        diff_bugs: Vec::new(),
        coverage: jvmsim::CoverageMap::new(),
        fault_pair: None,
        wasted_steps: 0,
        wasted_execs: 0,
        promotion: None,
    };
    // Trace identity: one root span per round; attempts nest under it.
    // Skipped rounds still get a (zero-duration) root so the trace
    // accounts for every scheduled round.
    let _round_span = jtelemetry::trace_span("round", || {
        vec![
            ("round", round.to_string()),
            ("seed", seed.name.clone()),
            ("skip", skip.to_string()),
        ]
    });
    if skip {
        return (skeleton(Disposition::Skipped), None);
    }
    let guidance = config.pool[round % config.pool.len()].clone();
    let mut errors: Vec<RoundFailure> = Vec::new();
    // Work done by attempts that fault is "wasted": it never reaches the
    // campaign totals through the record's productive fields, but it did
    // burn simulated time, so it is measured via work-meter deltas (which
    // advance even when the attempt dies by panic) and carried on the
    // record. Both budgets and telemetry see it.
    let mut wasted_steps = 0u64;
    let mut wasted_execs = 0u64;
    for attempt in 0..=config.supervisor.max_retries {
        let rng_seed = round_rng_seed(config.rng_seed, round, attempt);
        jtelemetry::flight_reset();
        jtelemetry::flight(
            jtelemetry::FlightKind::Round,
            "attempt",
            format!("round {round} attempt {attempt} seed {}", seed.name),
        );
        let _attempt_span = jtelemetry::trace_span("attempt", || {
            vec![
                ("attempt", attempt.to_string()),
                ("rng_seed", format!("{rng_seed:#x}")),
            ]
        });
        let (steps_before, execs_before) = jtelemetry::work::totals();
        // Hang containment: each attempt gets a fresh cancellation token,
        // installed on this thread (the oracle re-installs it on its pool
        // threads) and armed on the wall-clock watchdog. Both guards drop
        // at the end of the iteration, so a retry starts clean.
        let cancel = jtelemetry::cancel::CancelToken::new();
        let _cancel_guard = jtelemetry::cancel::install(&cancel);
        let _watchdog = config
            .supervisor
            .round_wall_timeout_ms
            .map(|ms| crate::watchdog::arm(cancel.clone(), std::time::Duration::from_millis(ms)));
        match run_attempt(round, seed, &guidance, config, banned, rng_seed) {
            Ok((mut record, mutant)) => {
                record.errors = errors;
                record.wasted_steps = wasted_steps;
                record.wasted_execs = wasted_execs;
                return (record, Some(mutant));
            }
            Err(mut error) => {
                if let RoundError::Timeout { limit_ms } = &mut error {
                    // Record the configured limit (journal-stable), never
                    // the elapsed time.
                    *limit_ms = config.supervisor.round_wall_timeout_ms.unwrap_or(0);
                    jtelemetry::count(jtelemetry::Counter::RoundsTimedOut, 1);
                }
                let (steps_after, execs_after) = jtelemetry::work::totals();
                wasted_steps += steps_after - steps_before;
                wasted_execs += execs_after - execs_before;
                errors.push(RoundFailure {
                    round,
                    attempt,
                    error,
                    flight: jtelemetry::flight_snapshot(),
                });
            }
        }
    }
    // Every attempt faulted: attribute the fault for quarantine purposes.
    let mutator = errors.iter().find_map(|f| match &f.error {
        RoundError::MutatorPanic {
            mutator: Some(k), ..
        } => Some(*k),
        _ => None,
    });
    let mut record = skeleton(Disposition::Errored);
    record.errors = errors;
    record.fault_pair = Some((seed.name.clone(), mutator));
    record.wasted_steps = wasted_steps;
    record.wasted_execs = wasted_execs;
    (record, None)
}

/// Decides whether an `Ok` round's final mutant earns promotion, and if so
/// minimizes it with jreduce and fingerprints the result. A pure function
/// of its arguments (admission happens in [`apply_record`], the shared
/// live/replay path); all oracle runs are fault-free and deterministic.
/// `seed_program` is the program the round fuzzed and `fingerprints` the
/// set of behaviours already in the corpus — passed as data so workers can
/// evaluate promotion on a snapshot (the coordinator re-checks the
/// fingerprint against authoritative state at merge time).
fn consider_promotion(
    record: &RoundRecord,
    mutant: &Program,
    seed_program: &Program,
    fingerprints: &HashSet<u64>,
    promote_threshold: f64,
    config: &CampaignConfig,
) -> Option<PromotionRecord> {
    let reason = if let Some(crash) = &record.crash {
        PromotionReason::Bug(crash.id.clone())
    } else if let Some(bug) = record.diff_bugs.first() {
        PromotionReason::Bug(bug.id.clone())
    } else if record.final_delta >= promote_threshold {
        PromotionReason::Delta(record.final_delta)
    } else {
        return None;
    };
    let mut execs = 0u64;
    let mut steps = 0u64;
    let options = RunOptions::fuzzing();
    let reduced = match &reason {
        PromotionReason::Bug(id) => {
            let sighting = record.crash.as_ref().or_else(|| record.diff_bugs.first())?;
            let spec = JvmSpec::from_name(&sighting.jvm).ok()?;
            let is_crash = sighting.is_crash;
            let mut oracle = |p: &Program| {
                let run = run_jvm(p, &spec, &options);
                execs += 1;
                steps += run.steps;
                if is_crash {
                    matches!(&run.verdict, Verdict::CompilerCrash(c) if c.bug_id == *id)
                } else {
                    // Miscompilation: the simulator's ground-truth label
                    // stands in for re-running the differential pool.
                    run.miscompiled_by.contains(id)
                }
            };
            jreduce::reduce(mutant, &mut oracle).0
        }
        PromotionReason::Delta(_) => {
            let guidance = &config.pool[record.round % config.pool.len()];
            let seed_run = run_jvm(seed_program, guidance, &options);
            execs += 1;
            steps += seed_run.steps;
            let seed_obv = Obv::from_log(&seed_run.log);
            let threshold = promote_threshold;
            let mut oracle = |p: &Program| {
                let run = run_jvm(p, guidance, &options);
                execs += 1;
                steps += run.steps;
                matches!(run.verdict, Verdict::Completed(_))
                    && Obv::delta(&seed_obv, &Obv::from_log(&run.log)) >= threshold
            };
            jreduce::reduce(mutant, &mut oracle).0
        }
    };
    let fp = jcorpus::fingerprint(&reduced).ok()?;
    execs += 1;
    steps += fp.steps;
    if fingerprints.contains(&fp.fingerprint) {
        return None; // behaviour already in the corpus
    }
    Some(PromotionRecord {
        name: format!("p{}", jcorpus::fingerprint_hex(fp.fingerprint)),
        fingerprint: fp.fingerprint,
        source: reduced,
        from_seed: record.seed.clone(),
        reason,
        execs,
        steps,
    })
}

/// Publishes the campaign-level gauges from the current result state.
fn update_gauges(
    result: &CampaignResult,
    rounds_done: usize,
    rounds_total: usize,
    seeds_len: usize,
    corpus: Option<&CorpusCtx>,
) {
    use jtelemetry::Gauge;
    jtelemetry::gauge(Gauge::RoundsDone, rounds_done as f64);
    jtelemetry::gauge(Gauge::RoundsTotal, rounds_total as f64);
    let corpus_size = corpus.map_or(seeds_len, |ctx| ctx.scheduler.len());
    jtelemetry::gauge(Gauge::CorpusSize, corpus_size as f64);
    jtelemetry::gauge(Gauge::QuarantineCount, result.quarantined.len() as f64);
    jtelemetry::gauge(Gauge::BugsFound, result.bugs.len() as f64);
    jtelemetry::gauge(Gauge::ProductiveSteps, result.steps as f64);
    jtelemetry::gauge(Gauge::WastedSteps, result.wasted_steps as f64);
    jtelemetry::gauge(Gauge::ProductiveExecs, result.executions as f64);
    jtelemetry::gauge(Gauge::WastedExecs, result.wasted_execs as f64);
    if let Some(ctx) = corpus {
        jtelemetry::gauge(Gauge::CorpusEnergy, ctx.scheduler.total_energy());
        jtelemetry::gauge(Gauge::PromotedEntries, result.promotions.len() as f64);
    }
}

/// The supervised campaign loop shared by [`crate::campaign::run_campaign`]
/// and [`crate::campaign::resume_campaign`]: replay any checkpointed
/// records, then execute (and journal) the remaining rounds. When an
/// observer is attached it is notified after every live round (replayed
/// rounds are not re-reported).
pub(crate) fn run_supervised(
    seeds: &[Seed],
    config: &CampaignConfig,
    mut writer: Option<&mut JournalWriter>,
    replay: &[RoundRecord],
    mut observer: Option<&mut dyn crate::campaign::CampaignObserver>,
    mut corpus: Option<&mut CorpusCtx>,
) -> CampaignResult {
    let mut result = CampaignResult::default();
    let mut seen: HashSet<String> = HashSet::new();
    let mut quarantine = Quarantine::default();
    if (seeds.is_empty() && corpus.is_none()) || config.pool.is_empty() {
        return result;
    }
    // Fresh execution-substrate caches per campaign: cache contents never
    // affect results or journaled counters (the oracle derives those from
    // per-run lookup logs), so this is memory hygiene plus meaningful
    // per-campaign `cache_stats()` — not a determinism requirement.
    jexec::threaded::cache_reset();
    jopt::pipeline::cache_reset();
    if let Some(ctx) = corpus.as_deref_mut() {
        // Pairs quarantined by earlier campaigns over this store stay
        // banned; blocked seeds are also removed from scheduling.
        quarantine.preload(&ctx.preq);
        for (seed, mutator) in &ctx.preq {
            if mutator.is_none() {
                ctx.scheduler.block(seed);
            }
        }
    }
    let threshold = config.supervisor.quarantine_threshold;
    for record in replay {
        apply_record(
            &mut result,
            &mut seen,
            &mut quarantine,
            record,
            threshold,
            corpus.as_deref_mut(),
        );
    }
    if jtelemetry::enabled() {
        update_gauges(
            &result,
            replay.len(),
            config.rounds,
            seeds.len(),
            corpus.as_deref(),
        );
    }
    if config.jobs > 1 {
        run_parallel_rounds(
            seeds,
            config,
            &mut writer,
            replay.len(),
            &mut observer,
            &mut corpus,
            &mut result,
            &mut seen,
            &mut quarantine,
        );
        return result;
    }
    for round in replay.len()..config.rounds {
        if crate::interrupt::requested() {
            // Graceful stop: everything merged so far is journaled; the
            // caller flushes and reports a resumable campaign.
            result.interrupted = true;
            break;
        }
        if let Some(ctx) = corpus.as_deref_mut() {
            refresh_external_quarantine(ctx, &mut quarantine);
        }
        if let Some(stop) = budget_stop(&result, &config.supervisor, round) {
            result.round_errors.push(stop.clone());
            result.stopped = Some(stop);
            break;
        }
        // Corpus mode replaces the fixed round-robin rotation with the
        // power scheduler: energy-weighted choice, deterministic in
        // (campaign seed, round).
        let seed = match corpus.as_deref_mut() {
            Some(ctx) => match ctx.scheduler.pick(round, config.rng_seed) {
                Some(name) => {
                    let program = ctx
                        .programs
                        .get(&name)
                        .expect("scheduled entry has a program")
                        .clone();
                    Seed { name, program }
                }
                None => break, // everything quarantined
            },
            None => seeds[round % seeds.len()].clone(),
        };
        let skip = quarantine.seed_blocked(&seed.name);
        let banned = quarantine.banned_mutators(&seed.name);
        let (mut record, mutant) = execute_round(round, &seed, config, skip, &banned);
        if let (Some(ctx), Some(mutant)) = (corpus.as_deref_mut(), mutant.as_ref()) {
            record.promotion = consider_promotion(
                &record,
                mutant,
                &seed.program,
                &ctx.fingerprints,
                ctx.promote_threshold,
                config,
            );
        }
        if let Some(w) = writer.as_deref_mut() {
            // A failing journal must not kill the campaign it protects.
            if let Err(e) = w.write_round(&record) {
                eprintln!("warning: journal write failed: {e}");
            }
        }
        apply_record(
            &mut result,
            &mut seen,
            &mut quarantine,
            &record,
            threshold,
            corpus.as_deref_mut(),
        );
        if jtelemetry::enabled() {
            update_gauges(
                &result,
                round + 1,
                config.rounds,
                seeds.len(),
                corpus.as_deref(),
            );
        }
        if let Some(obs) = observer.as_deref_mut() {
            obs.round_finished(round, &result);
        }
    }
    result
}

/// Folds pairs quarantined by *concurrent* campaigns into this one: the
/// store's on-disk quarantine file (which every campaign over the store
/// appends to at its final flush) is re-read each round, and new pairs are
/// preloaded — banned immediately, never re-reported in
/// [`CampaignResult::quarantined`]. This is a live-only overlay: it is not
/// journaled, so replay/resume see only the header's `preq` snapshot plus
/// whatever the file holds at resume time. With no concurrent writer the
/// file is static and the overlay is a deterministic no-op, which is what
/// keeps `--jobs N` runs bit-identical. Unknown mutator names (a store
/// shared with a newer binary) are skipped, not fatal.
fn refresh_external_quarantine(ctx: &mut CorpusCtx, quarantine: &mut Quarantine) {
    let Ok(pairs) = jcorpus::read_quarantine_dir(ctx.store.dir()) else {
        return;
    };
    let mut converted: Vec<(String, Option<MutatorKind>)> = Vec::new();
    for (seed, mutator) in pairs {
        match mutator {
            None => converted.push((seed, None)),
            Some(name) => {
                if let Some(kind) = MutatorKind::from_debug_name(&name) {
                    converted.push((seed, Some(kind)));
                }
            }
        }
    }
    quarantine.preload(&converted);
    for (seed, mutator) in &converted {
        if mutator.is_none() {
            ctx.scheduler.block(seed);
        }
    }
}

/// One speculative round execution, shipped to a worker. `skip`, `banned`
/// and `promo` are snapshots of coordinator state at dispatch time; the
/// coordinator validates them against authoritative state before accepting
/// the result.
struct WorkerTask {
    round: usize,
    seed: Seed,
    skip: bool,
    banned: Vec<MutatorKind>,
    /// When set, install a fresh telemetry session of this shape (clock
    /// mode, tracing, profiling inherited from the coordinator) for this
    /// task and ship its snapshot and trace back (the coordinator's
    /// session absorbs both on acceptance).
    telemetry: Option<jtelemetry::SessionSpec>,
    promo: Option<PromoInputs>,
}

/// Corpus promotion inputs snapshotted at dispatch time.
struct PromoInputs {
    fingerprints: Arc<HashSet<u64>>,
    promote_threshold: f64,
}

/// A speculatively executed round plus the inputs it was computed from.
struct WorkerOutput {
    round: usize,
    seed: String,
    skip: bool,
    banned: Vec<MutatorKind>,
    record: RoundRecord,
    metrics: Option<jtelemetry::MetricsSnapshot>,
    /// Trace spans the task recorded, for in-order absorption on
    /// acceptance (empty when the coordinator is not tracing).
    trace: Vec<jtelemetry::TraceEvent>,
    /// The task body escaped its panic boundary (a harness bug, not an
    /// injected fault — those are contained inside [`execute_round`]).
    /// Poisoned outputs never merge; the coordinator re-executes inline.
    /// Pool threads outlive any one campaign, so a dead-worker fallback
    /// no longer exists — this sentinel replaces it.
    poisoned: bool,
}

/// One speculative round execution, run as a pool job. Rounds are
/// self-contained (seed-derived RNG, per-attempt flight rebasing,
/// work-meter deltas), so executing them on any thread produces the exact
/// record a serial run would. Always sends exactly one output — even when
/// the body panics — so the coordinator's merge loop never hangs on a
/// round it dispatched.
fn run_worker_task(
    task: WorkerTask,
    config: &CampaignConfig,
    results: &mpsc::Sender<WorkerOutput>,
) {
    let (round, skip) = (task.round, task.skip);
    let (seed_name, banned) = (task.seed.name.clone(), task.banned.clone());
    let body = pool::quiet_catch_unwind(|| {
        // Pool threads are shared across campaigns and tasks: drop any
        // session a previous occupant left behind before installing ours.
        drop(jtelemetry::take());
        if let Some(spec) = task.telemetry {
            jtelemetry::install(jtelemetry::Session::from_spec(spec));
        }
        let (mut record, mutant) =
            execute_round(task.round, &task.seed, config, task.skip, &task.banned);
        if let (Some(promo), Some(mutant)) = (&task.promo, mutant.as_ref()) {
            record.promotion = consider_promotion(
                &record,
                mutant,
                &task.seed.program,
                &promo.fingerprints,
                promo.promote_threshold,
                config,
            );
        }
        let (metrics, trace) = match jtelemetry::take() {
            Some(mut session) => {
                let trace = session.take_trace();
                (Some(session.snapshot()), trace)
            }
            None => (None, Vec::new()),
        };
        (record, metrics, trace)
    });
    let output = match body {
        Ok((record, metrics, trace)) => WorkerOutput {
            round,
            seed: seed_name,
            skip,
            banned,
            record,
            metrics,
            trace,
            poisoned: false,
        },
        Err(_) => {
            drop(jtelemetry::take()); // don't leak a partial session
            WorkerOutput {
                round,
                seed: seed_name,
                skip,
                banned,
                record: RoundRecord {
                    round,
                    seed: String::new(),
                    disposition: Disposition::Skipped,
                    fuzz_execs: 0,
                    fuzz_steps: 0,
                    diff: None,
                    final_delta: 0.0,
                    inconclusive: false,
                    errors: Vec::new(),
                    crash: None,
                    diff_bugs: Vec::new(),
                    coverage: jvmsim::CoverageMap::new(),
                    fault_pair: None,
                    wasted_steps: 0,
                    wasted_execs: 0,
                    promotion: None,
                },
                metrics: None,
                trace: Vec::new(),
                poisoned: true,
            }
        }
    };
    // A send can only fail once the coordinator has stopped merging
    // (budget stop / exhaustion); the speculative result is then dead.
    let _ = results.send(output);
}

/// The multi-worker round engine: workers execute rounds speculatively
/// ahead of the merge point; the coordinator merges records in strict
/// round order, so journals, results and corpus flushes are bit-identical
/// to the serial loop at any worker count.
///
/// The protocol per merged round:
/// 1. refresh the cross-campaign quarantine overlay, check budgets, and
///    compute the round's *authoritative* inputs (seed pick, skip flag,
///    banned mutators) from post-merge state — exactly as the serial loop
///    would at this point;
/// 2. top up the speculation window (`2 × jobs` rounds ahead) with tasks
///    built from current state. The head-of-line round is dispatched from
///    authoritative state, so a quiet pipeline always validates;
/// 3. take the round's speculative output and compare the inputs it was
///    computed from against the authoritative ones. On a match the record
///    is accepted (with one fix-up: a promotion whose fingerprint was
///    admitted by an intervening merge is dropped, as the serial run
///    would have declined it) and its telemetry snapshot is absorbed; on
///    a mismatch the round is re-executed synchronously right here with
///    the authoritative inputs, and the stale output is discarded along
///    with its telemetry — the serial run never did that work;
/// 4. journal, fold via [`apply_record`], update gauges, notify.
///
/// A budget stop or scheduler exhaustion breaks the loop; the output
/// channel is dropped with it, so any still-in-flight speculation is
/// discarded unmerged (its send fails silently), exactly as if the serial
/// loop had stopped there.
#[allow(clippy::too_many_arguments)]
fn run_parallel_rounds(
    seeds: &[Seed],
    config: &CampaignConfig,
    writer: &mut Option<&mut JournalWriter>,
    first_round: usize,
    observer: &mut Option<&mut dyn crate::campaign::CampaignObserver>,
    corpus: &mut Option<&mut CorpusCtx>,
    result: &mut CampaignResult,
    seen: &mut HashSet<String>,
    quarantine: &mut Quarantine,
) {
    let threshold = config.supervisor.quarantine_threshold;
    let telemetry = jtelemetry::enabled();
    // Workers inherit the coordinator session's shape so speculative
    // rounds record the same event classes a serial loop would.
    let session_spec = jtelemetry::session_spec();
    let window = config.jobs.max(2) * 2;
    // Round jobs go to the shared process-wide pool (capacity is the max
    // of every subsystem's request, so `--jobs` and `--oracle-jobs` can't
    // oversubscribe each other). One config clone serves the campaign.
    let shared_config = Arc::new(config.clone());
    pool::shared().ensure_capacity(config.jobs);
    let (out_tx, out_rx) = mpsc::channel::<WorkerOutput>();

    let mut pending: BTreeMap<usize, WorkerOutput> = BTreeMap::new();
    let mut dispatched: HashSet<usize> = HashSet::new();
    let mut next_dispatch = first_round;

    for round in first_round..config.rounds {
        if crate::interrupt::requested() {
            // Graceful stop at the merge point: rounds merged so far are
            // journaled; in-flight speculation is discarded when the
            // output channel drops, exactly like a budget stop.
            result.interrupted = true;
            break;
        }
        if let Some(ctx) = corpus.as_deref_mut() {
            refresh_external_quarantine(ctx, quarantine);
        }
        if let Some(stop) = budget_stop(result, &config.supervisor, round) {
            result.round_errors.push(stop.clone());
            result.stopped = Some(stop);
            break;
        }
        let seed = match corpus.as_deref_mut() {
            Some(ctx) => match ctx.scheduler.pick(round, config.rng_seed) {
                Some(name) => {
                    let program = ctx
                        .programs
                        .get(&name)
                        .expect("scheduled entry has a program")
                        .clone();
                    Seed { name, program }
                }
                None => break, // everything quarantined
            },
            None => seeds[round % seeds.len()].clone(),
        };
        let skip = quarantine.seed_blocked(&seed.name);
        let banned = quarantine.banned_mutators(&seed.name);
        while next_dispatch < config.rounds && next_dispatch < round + window {
            let spec_round = next_dispatch;
            let spec_seed = if spec_round == round {
                Some(seed.clone())
            } else {
                match corpus.as_deref() {
                    Some(ctx) => ctx.scheduler.pick(spec_round, config.rng_seed).map(|name| {
                        let program = ctx
                            .programs
                            .get(&name)
                            .expect("scheduled entry has a program")
                            .clone();
                        Seed { name, program }
                    }),
                    None => Some(seeds[spec_round % seeds.len()].clone()),
                }
            };
            let Some(spec_seed) = spec_seed else {
                // The scheduler predicts exhaustion; the authoritative
                // decision is made at this round's own merge point
                // (a promotion may yet unblock it).
                break;
            };
            let task = WorkerTask {
                round: spec_round,
                skip: quarantine.seed_blocked(&spec_seed.name),
                banned: quarantine.banned_mutators(&spec_seed.name),
                telemetry: session_spec,
                promo: corpus.as_deref().map(|ctx| PromoInputs {
                    fingerprints: Arc::new(ctx.fingerprints.clone()),
                    promote_threshold: ctx.promote_threshold,
                }),
                seed: spec_seed,
            };
            let job_config = Arc::clone(&shared_config);
            let job_results = out_tx.clone();
            pool::shared().submit(Box::new(move || {
                run_worker_task(task, &job_config, &job_results);
            }));
            jtelemetry::trace_sched_instant("dispatch", || vec![("round", spec_round.to_string())]);
            dispatched.insert(spec_round);
            next_dispatch += 1;
        }
        let output = {
            // Scheduler-lane attribution: how long the coordinator sat
            // blocked on speculative results for this round. Wall-clock
            // only; the lane is suppressed under a manual clock.
            let _wait =
                jtelemetry::trace_sched_span("merge_wait", || vec![("round", round.to_string())]);
            loop {
                if let Some(found) = pending.remove(&round) {
                    break Some(found);
                }
                if !dispatched.contains(&round) {
                    break None;
                }
                match out_rx.recv() {
                    Ok(incoming) => {
                        pending.insert(incoming.round, incoming);
                    }
                    Err(_) => break None, // unreachable: we hold a sender
                }
            }
        };
        dispatched.remove(&round);
        let validates = |output: &WorkerOutput| {
            !output.poisoned
                && output.seed == seed.name
                && output.skip == skip
                && output.banned == banned
        };
        let (record, metrics, trace) = match output {
            Some(output) if validates(&output) => {
                let mut record = output.record;
                if let (Some(ctx), Some(promo)) = (corpus.as_deref(), record.promotion.as_ref()) {
                    if ctx.fingerprints.contains(&promo.fingerprint) {
                        // An intervening merge admitted this behaviour:
                        // the serial run's promotion check would have
                        // seen the fingerprint and declined, so decline
                        // here too.
                        record.promotion = None;
                    }
                }
                (record, output.metrics, output.trace)
            }
            stale => {
                // Mispredicted inputs, poisoned, or never dispatched:
                // execute here with the authoritative ones. The stale
                // output's telemetry and trace are discarded with it —
                // the serial run never did that work.
                if let Some(stale) = &stale {
                    jtelemetry::trace_sched_instant("speculation_wasted", || {
                        vec![
                            ("round", round.to_string()),
                            (
                                "reason",
                                if stale.poisoned {
                                    "poisoned".to_string()
                                } else {
                                    "mispredicted".to_string()
                                },
                            ),
                        ]
                    });
                }
                let (mut record, mutant) = execute_round(round, &seed, config, skip, &banned);
                if let (Some(ctx), Some(mutant)) = (corpus.as_deref(), mutant.as_ref()) {
                    record.promotion = consider_promotion(
                        &record,
                        mutant,
                        &seed.program,
                        &ctx.fingerprints,
                        ctx.promote_threshold,
                        config,
                    );
                }
                (record, None, Vec::new())
            }
        };
        if let Some(snapshot) = &metrics {
            jtelemetry::absorb(snapshot);
        }
        jtelemetry::absorb_trace(&trace);
        if let Some(w) = writer.as_deref_mut() {
            if let Err(e) = w.write_round(&record) {
                eprintln!("warning: journal write failed: {e}");
            }
        }
        apply_record(
            result,
            seen,
            quarantine,
            &record,
            threshold,
            corpus.as_deref_mut(),
        );
        if telemetry {
            update_gauges(
                result,
                round + 1,
                config.rounds,
                seeds.len(),
                corpus.as_deref(),
            );
        }
        if let Some(obs) = observer.as_deref_mut() {
            obs.round_finished(round, result);
        }
    }
    // Dropping out_rx (with out_tx) orphans any in-flight speculation:
    // its sends fail and the results evaporate, as if never computed.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_marked_and_unmarked_panics() {
        let mutator: Box<dyn Any + Send> = Box::new(format!(
            "{MUTATOR_PANIC_MARKER}:Inlining: injected mutator panic"
        ));
        match classify_panic(mutator.as_ref()) {
            RoundError::MutatorPanic { mutator, .. } => {
                assert_eq!(mutator, Some(MutatorKind::Inlining));
            }
            other => panic!("misclassified: {other:?}"),
        }
        let vm: Box<dyn Any + Send> =
            Box::new(format!("{VM_PANIC_MARKER}: injected VM panic on J9-8"));
        assert!(matches!(
            classify_panic(vm.as_ref()),
            RoundError::VmPanic { .. }
        ));
        let stray: Box<dyn Any + Send> = Box::new("index out of bounds");
        assert!(matches!(
            classify_panic(stray.as_ref()),
            RoundError::VmPanic { .. }
        ));
        let unknown_mutator: Box<dyn Any + Send> =
            Box::new(format!("{MUTATOR_PANIC_MARKER}:NotAMutator: boom"));
        match classify_panic(unknown_mutator.as_ref()) {
            RoundError::MutatorPanic { mutator, .. } => assert_eq!(mutator, None),
            other => panic!("misclassified: {other:?}"),
        }
        let timeout: Box<dyn Any + Send> = Box::new(format!(
            "{}: interpreter cancelled by watchdog",
            jtelemetry::cancel::TIMEOUT_PANIC_MARKER
        ));
        assert!(matches!(
            classify_panic(timeout.as_ref()),
            RoundError::Timeout { limit_ms: 0 }
        ));
    }

    #[test]
    fn catch_round_contains_and_passes_through() {
        assert_eq!(catch_round(|| 42).unwrap(), 42);
        let err = catch_round(|| panic!("plain panic")).unwrap_err();
        assert!(matches!(err, RoundError::VmPanic { .. }));
    }

    #[test]
    fn quarantine_threshold_and_bans() {
        let mut q = Quarantine::default();
        assert!(!q.record(2, "s1", Some(MutatorKind::Inlining)));
        assert!(q.record(2, "s1", Some(MutatorKind::Inlining)));
        // Already quarantined: further records do not re-add.
        assert!(!q.record(2, "s1", Some(MutatorKind::Inlining)));
        assert_eq!(q.banned_mutators("s1"), vec![MutatorKind::Inlining]);
        assert!(q.banned_mutators("s2").is_empty());
        assert!(!q.seed_blocked("s1"));
        q.record(1, "s2", None);
        assert!(q.seed_blocked("s2"));
        assert_eq!(q.pairs().len(), 2);
    }

    #[test]
    fn rng_derivation_attempt_zero_matches_legacy() {
        let base: u64 = 2024;
        let legacy = base.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(3);
        assert_eq!(round_rng_seed(base, 3, 0), legacy);
        assert_ne!(round_rng_seed(base, 3, 1), legacy);
        assert_ne!(round_rng_seed(base, 3, 1), round_rng_seed(base, 3, 2));
    }

    #[test]
    fn budget_stop_triggers_at_limits() {
        let mut result = CampaignResult::default();
        let supervisor = SupervisorConfig {
            max_steps: Some(100),
            max_executions: Some(10),
            ..SupervisorConfig::default()
        };
        assert!(budget_stop(&result, &supervisor, 0).is_none());
        result.steps = 100;
        let stop = budget_stop(&result, &supervisor, 4).unwrap();
        assert_eq!(stop.round, 4);
        assert!(matches!(
            stop.error,
            RoundError::BudgetExhausted {
                budget: BudgetKind::CampaignSteps,
                limit: 100,
                used: 100
            }
        ));
        result.steps = 0;
        result.executions = 11;
        assert!(matches!(
            budget_stop(&result, &supervisor, 0).unwrap().error,
            RoundError::BudgetExhausted {
                budget: BudgetKind::CampaignExecutions,
                ..
            }
        ));
    }
}
