//! # mopfuzzer — the paper's contribution
//!
//! MopFuzzer validates JVM JIT compilers by *maximizing optimization
//! interactions* (ASPLOS'24). The pieces map one-to-one onto the paper:
//!
//! * [`mutators`] — the 13 optimization-evoking mutators of §3.2/Table 1,
//!   each inserting code adjacent to or nested around a fixed mutation
//!   point;
//! * [`fuzzer`] — Algorithm 1: iterate mutators at the MP, weighted by
//!   profile-data guidance (Eq. 1–3 via [`jprofile`]);
//! * [`oracle`] — crash and differential-testing oracles over the
//!   simulated JVM pool (§3.5);
//! * [`campaign`] — multi-seed campaigns with root-cause deduplication,
//!   coverage accounting, and a simulated clock;
//! * [`supervisor`] — the fault-isolated campaign loop: panic
//!   containment, bounded retries, quarantine, and budgets;
//! * [`journal`] — JSONL checkpoints making campaigns resumable with
//!   bit-identical results;
//! * `pool` (internal) — the process-wide work pool shared by the
//!   round-level engine (`--jobs`) and the intra-round differential
//!   oracle (`--oracle-jobs`);
//! * [`variant`] — the §4.4 ablations (`MopFuzzer_g`, `MopFuzzer_r`);
//! * [`corpus`] — built-in and generated regression-test-style seeds;
//! * [`stats`] — Table 5 mutator/pair ratios and Figure 1 trajectories.
//!
//! # Examples
//!
//! ```no_run
//! use mopfuzzer::{fuzz, FuzzConfig};
//!
//! let seed = mjava::samples::listing2().program;
//! let config = FuzzConfig::new(jvmsim::JvmSpec::hotspur(jvmsim::Version::Mainline));
//! let outcome = fuzz(&seed, &config);
//! println!(
//!     "final Δ = {:.1} after {} iterations",
//!     outcome.final_delta(),
//!     outcome.records.len()
//! );
//! ```

pub mod campaign;
pub mod corpus;
pub mod fuzzer;
pub mod interrupt;
pub mod journal;
pub mod mutators;
pub mod oracle;
mod pool;
pub mod stats;
pub mod supervisor;
pub mod variant;
mod watchdog;

pub use campaign::{
    resume_campaign, resume_campaign_extended, run_campaign, run_campaign_observed,
    run_campaign_with_journal, run_campaign_with_journal_observed, run_corpus_campaign,
    run_corpus_campaign_with, CampaignConfig, CampaignObserver, CampaignResult, CorpusOptions,
    FoundBug,
};
pub use corpus::{import_seeds, seeds_from_store, ImportOutcome, Seed};
pub use fuzzer::{fuzz, FuzzConfig, FuzzOutcome, IterationRecord, WeightScheme};
pub use journal::{
    read_journal, BaselineEntry, BugSighting, CorpusHeader, Disposition, JournalContents,
    JournalWriter, PromotionReason, PromotionRecord, RoundRecord,
};
pub use mutators::{all_mutators, Mutation, Mutator, MutatorKind};
pub use oracle::{differential, differential_jobs, DifferentialResult, OracleVerdict};
pub use supervisor::{BudgetKind, Quarantine, RoundError, RoundFailure, SupervisorConfig};
pub use variant::Variant;
