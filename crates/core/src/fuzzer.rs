//! The fuzzing loop — Algorithm 1 of the paper.
//!
//! One run takes a seed, picks a mutation point, and iterates: select a
//! mutator by weight (Eq. 1), apply it at the MP, execute the mutant with
//! all trace flags to obtain profile data, scrape the OBV, and bump the
//! chosen mutator's weight by the behaviour increment (Eq. 2 + Eq. 3).
//! The loop stops at the iteration cap or on a compiler crash.

use crate::mutators::{all_mutators, Mutation, Mutator, MutatorKind};
use crate::variant::Variant;
use jprofile::Obv;
use jvmsim::fault::MUTATOR_PANIC_MARKER;
use jvmsim::{CrashReport, FaultPlan, JvmSpec, RunOptions, Verdict};
use mjava::{Program, StmtPath};
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng as _};
use std::collections::HashMap;

/// How mutator weights grow with observed behaviour (paper §3.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WeightScheme {
    /// Eq. 3: multiplicative bump by Δ normalized by ‖OBV_c‖ — the
    /// paper's choice, rewarding behaviour *diversity*.
    #[default]
    NormalizedDelta,
    /// The rejected alternative: weights grow by the raw sum of
    /// behaviour increases, which high-frequency behaviours dominate.
    /// Kept for the ablation experiment.
    RawSum,
}

/// Configuration of one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Maximum mutation iterations (the paper uses 50).
    pub max_iterations: usize,
    /// Which variant runs (full / no-guidance / random-MP).
    pub variant: Variant,
    /// The JVM whose profile data guides the run.
    pub guidance: JvmSpec,
    /// RNG seed — every run is deterministic given its seed.
    pub rng_seed: u64,
    /// Weight-update scheme (§3.4's Eq. 3 by default).
    pub weight_scheme: WeightScheme,
    /// Mutators excluded from selection (the supervisor's quarantine).
    pub banned: Vec<MutatorKind>,
    /// Deterministic fault injection, forwarded to every JVM execution
    /// and rolled at each mutator application (robustness testing only).
    pub fault: Option<FaultPlan>,
}

impl FuzzConfig {
    /// The paper's default configuration against a given guidance JVM.
    pub fn new(guidance: JvmSpec) -> FuzzConfig {
        FuzzConfig {
            max_iterations: 50,
            variant: Variant::Full,
            guidance,
            rng_seed: 0x4D4F_5046,
            weight_scheme: WeightScheme::NormalizedDelta,
            banned: Vec::new(),
            fault: None,
        }
    }
}

/// One iteration's bookkeeping (drives Figure 1 and the ablations).
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iteration: usize,
    /// The mutator applied.
    pub mutator: MutatorKind,
    /// The child's OBV.
    pub obv: Obv,
    /// Δ between parent and child (Eq. 2).
    pub delta_vs_parent: f64,
    /// Δ between the original seed and this child.
    pub delta_vs_seed: f64,
}

/// The result of one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// The last mutant generated (`c*` in Algorithm 1).
    pub final_mutant: Program,
    /// Its mutation point.
    pub final_mp: StmtPath,
    /// Crash observed during a guidance execution, if any.
    pub crash: Option<CrashReport>,
    /// Per-iteration records, in order.
    pub records: Vec<IterationRecord>,
    /// The seed's OBV under the guidance JVM.
    pub seed_obv: Obv,
    /// Final mutator weights.
    pub weights: HashMap<MutatorKind, f64>,
    /// JVM executions performed.
    pub executions: u64,
    /// Total interpreter steps consumed (the simulated-time unit).
    pub steps: u64,
    /// Coverage accumulated over all guidance executions.
    pub coverage: jvmsim::CoverageMap,
    /// Children whose execution reported `InvalidProgram` (class-loading
    /// failures). Such children are discarded, never adopted as parents.
    pub build_failures: u64,
    /// Set when the *seed itself* failed to build — the round is useless
    /// and the supervisor classifies it as a build failure.
    pub seed_invalid: Option<String>,
}

impl FuzzOutcome {
    /// Δ between the seed and the final mutant — the headline metric of
    /// Figures 3 and 4.
    pub fn final_delta(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.delta_vs_seed)
    }

    /// The sequence of applied mutators.
    pub fn mutator_history(&self) -> Vec<MutatorKind> {
        self.records.iter().map(|r| r.mutator).collect()
    }
}

/// Picks a random statement of the program as mutation point.
pub fn select_mp(program: &Program, rng: &mut SmallRng) -> Option<StmtPath> {
    let paths = mjava::path::all_paths(program);
    if paths.is_empty() {
        return None;
    }
    Some(paths[rng.gen_range(0..paths.len())].clone())
}

/// The `Class::method` containing a mutation point.
fn method_of(program: &Program, mp: &StmtPath) -> Option<(String, String)> {
    let class = program.classes.get(mp.class)?;
    let method = class.methods.get(mp.method)?;
    Some((class.name.clone(), method.name.clone()))
}

fn run_options(program: &Program, mp: &StmtPath, fault: &Option<FaultPlan>) -> RunOptions {
    let mut options = RunOptions::fuzzing();
    options.compile_only = method_of(program, mp);
    options.fault = fault.clone();
    options
}

/// Weighted random selection per Eq. 1:
/// `potential(mᵢ) = wᵢ / Σⱼ wⱼ`.
///
/// Weights are clamped into `jprofile`'s finite positive range before the
/// sum, so a poisoned weight (NaN/∞ from corrupted profile data) degrades
/// to a bounded bias instead of an invalid sampling range.
fn select_weighted(
    candidates: &[usize],
    weights: &HashMap<MutatorKind, f64>,
    mutators: &[Box<dyn Mutator>],
    rng: &mut SmallRng,
) -> usize {
    let clamped = |i: usize| jprofile::clamp_weight(weights[&mutators[i].kind()]);
    let total: f64 = candidates.iter().map(|&i| clamped(i)).sum();
    let mut point = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for &i in candidates {
        let w = clamped(i);
        if point < w {
            return i;
        }
        point -= w;
    }
    *candidates.last().expect("non-empty candidates")
}

/// Runs Algorithm 1 on one seed.
pub fn fuzz(seed: &Program, config: &FuzzConfig) -> FuzzOutcome {
    let mut rng = SmallRng::seed_from_u64(config.rng_seed);
    let mutators = all_mutators();
    let mut weights: HashMap<MutatorKind, f64> =
        MutatorKind::ALL.iter().map(|&k| (k, 1.0)).collect();

    let mut outcome = FuzzOutcome {
        final_mutant: seed.clone(),
        final_mp: StmtPath::top_level(0, 0, 0),
        crash: None,
        records: Vec::new(),
        seed_obv: Obv::zero(),
        weights: weights.clone(),
        executions: 0,
        steps: 0,
        coverage: jvmsim::CoverageMap::new(),
        build_failures: 0,
        seed_invalid: None,
    };
    let Some(mut mp) = select_mp(seed, &mut rng) else {
        return outcome;
    };
    outcome.final_mp = mp.clone();

    // Execute the seed to obtain the parent's profile data.
    let seed_run = jvmsim::run_jvm(
        seed,
        &config.guidance,
        &run_options(seed, &mp, &config.fault),
    );
    outcome.executions += 1;
    outcome.steps += seed_run.steps;
    outcome.coverage.merge(&seed_run.coverage);
    let seed_obv = Obv::from_log(&seed_run.log);
    outcome.seed_obv = seed_obv;
    if let Verdict::CompilerCrash(report) = seed_run.verdict {
        // A seed that crashes the JVM is already a find.
        outcome.crash = Some(report);
        return outcome;
    }
    if let Verdict::InvalidProgram(e) = &seed_run.verdict {
        // A seed that does not build cannot be mutated meaningfully.
        outcome.seed_invalid = Some(e.to_string());
        return outcome;
    }
    let mut parent = seed.clone();
    let mut parent_obv = seed_obv;

    for iteration in 1..=config.max_iterations {
        if config.variant == Variant::RandomMp {
            if let Some(fresh) = select_mp(&parent, &mut rng) {
                mp = fresh;
            }
        }
        // Applicable mutators at the MP (paper §3.3), minus any the
        // supervisor has quarantined for this seed.
        let mut candidates: Vec<usize> = (0..mutators.len())
            .filter(|&i| !config.banned.contains(&mutators[i].kind()))
            .filter(|&i| mutators[i].is_applicable(&parent, &mp))
            .collect();
        let mutation: Option<(usize, Mutation)> = loop {
            if candidates.is_empty() {
                break None;
            }
            let pick = if config.variant == Variant::Full {
                select_weighted(&candidates, &weights, &mutators, &mut rng)
            } else {
                candidates[rng.gen_range(0..candidates.len())]
            };
            match mutators[pick].apply(&parent, &mp, &mut rng) {
                Some(m) => break Some((pick, m)),
                None => candidates.retain(|&i| i != pick),
            }
        };
        let Some((pick, mutation)) = mutation else {
            break;
        };
        let kind = mutators[pick].kind();
        if jtelemetry::enabled() {
            jtelemetry::count(jtelemetry::Counter::MutationsApplied, 1);
            // Recorded before the (possibly fault-injected) child execution
            // so a panic mid-iteration still names the responsible mutator.
            jtelemetry::flight(
                jtelemetry::FlightKind::Mutator,
                format!("{kind:?}"),
                format!("iteration {iteration}"),
            );
        }
        if let Some(plan) = &config.fault {
            if plan.mutator_fault(config.rng_seed, iteration, &format!("{kind:?}")) {
                panic!("{MUTATOR_PANIC_MARKER}:{kind:?}: injected mutator panic");
            }
        }

        let child_run = jvmsim::run_jvm(
            &mutation.program,
            &config.guidance,
            &run_options(&mutation.program, &mutation.mp, &config.fault),
        );
        outcome.executions += 1;
        outcome.steps += child_run.steps;
        outcome.coverage.merge(&child_run.coverage);
        if matches!(child_run.verdict, Verdict::InvalidProgram(_)) {
            // The child failed class loading: discard it. The previous
            // parent (and MP) stay in place, so later iterations keep
            // mutating a program that actually builds.
            outcome.build_failures += 1;
            if jtelemetry::enabled() {
                jtelemetry::count(jtelemetry::Counter::MutantsRejected, 1);
                jtelemetry::mutator_outcome(&format!("{kind:?}"), false, 0.0);
            }
            continue;
        }
        let child_obv = Obv::from_log(&child_run.log);
        let delta = Obv::delta(&parent_obv, &child_obv);
        if jtelemetry::enabled() {
            jtelemetry::count(jtelemetry::Counter::MutantsAccepted, 1);
            jtelemetry::mutator_outcome(&format!("{kind:?}"), true, delta);
        }
        outcome.records.push(IterationRecord {
            iteration,
            mutator: kind,
            obv: child_obv,
            delta_vs_parent: delta,
            delta_vs_seed: Obv::delta(&seed_obv, &child_obv),
        });
        if config.variant == Variant::Full {
            let w = weights.get_mut(&kind).expect("all kinds present");
            *w = match config.weight_scheme {
                WeightScheme::NormalizedDelta => jprofile::update_weight(*w, delta, &child_obv),
                WeightScheme::RawSum => {
                    jprofile::update_weight_raw_sum(*w, &parent_obv, &child_obv)
                }
            };
        }
        outcome.final_mutant = mutation.program.clone();
        outcome.final_mp = mutation.mp.clone();
        if let Verdict::CompilerCrash(report) = child_run.verdict {
            outcome.crash = Some(report);
            break;
        }
        parent = mutation.program;
        mp = mutation.mp;
        parent_obv = child_obv;
    }
    outcome.weights = weights;
    outcome
}

// Round workers move fuzzing state across the shared pool's threads.
// Guidance executions inside `fuzz` are inherently sequential (iteration
// N+1 mutates iteration N's survivor), so only the round-level types need
// to cross threads — assert they stay `Send` at compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<FuzzConfig>();
    assert_send::<FuzzOutcome>();
    assert_send::<crate::Seed>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn guidance() -> JvmSpec {
        jvmsim::JvmSpec::hotspur(jvmsim::Version::V17).without_bugs()
    }

    fn config(seed: u64) -> FuzzConfig {
        FuzzConfig {
            max_iterations: 8,
            variant: Variant::Full,
            rng_seed: seed,
            ..FuzzConfig::new(guidance())
        }
    }

    #[test]
    fn fuzzing_is_deterministic() {
        let seed = mjava::samples::listing2().program;
        let a = fuzz(&seed, &config(7));
        let b = fuzz(&seed, &config(7));
        assert_eq!(a.final_mutant, b.final_mutant);
        assert_eq!(a.mutator_history(), b.mutator_history());
        assert_eq!(a.final_delta(), b.final_delta());
    }

    #[test]
    fn different_rng_seeds_diverge() {
        let seed = mjava::samples::listing2().program;
        let a = fuzz(&seed, &config(1));
        let b = fuzz(&seed, &config(2));
        assert_ne!(
            (a.mutator_history(), a.final_mutant),
            (b.mutator_history(), b.final_mutant)
        );
    }

    #[test]
    fn iterations_accumulate_behaviour() {
        let seed = mjava::samples::sync_counter().program;
        let out = fuzz(&seed, &config(3));
        assert!(!out.records.is_empty());
        assert!(out.final_delta() > 0.0, "no behaviour increment at all");
        // Executions: 1 seed + 1 per completed iteration.
        assert_eq!(out.executions, out.records.len() as u64 + 1);
    }

    #[test]
    fn guidance_grows_weights_only_in_full_variant() {
        let seed = mjava::samples::listing2().program;
        let full = fuzz(&seed, &config(5));
        let grew = full.weights.values().any(|&w| w > 1.0);
        assert!(grew, "full variant should bump weights: {:?}", full.weights);

        let mut cfg = config(5);
        cfg.variant = Variant::NoGuidance;
        let unguided = fuzz(&seed, &cfg);
        assert!(
            unguided.weights.values().all(|&w| (w - 1.0).abs() < 1e-12),
            "no-guidance variant must not touch weights"
        );
    }

    #[test]
    fn raw_sum_scheme_is_selectable_and_diverges() {
        let seed = mjava::samples::listing2().program;
        let mut cfg = config(5);
        cfg.max_iterations = 10;
        cfg.weight_scheme = crate::fuzzer::WeightScheme::RawSum;
        let raw = fuzz(&seed, &cfg);
        cfg.weight_scheme = crate::fuzzer::WeightScheme::NormalizedDelta;
        let eq3 = fuzz(&seed, &cfg);
        // Same RNG seed, different weight dynamics → the selection
        // sequences eventually diverge (weights feed Eq. 1).
        assert_ne!(raw.weights, eq3.weights);
    }

    #[test]
    fn mutants_stay_valid_programs() {
        let seed = mjava::samples::boxing_mix().program;
        let out = fuzz(&seed, &config(11));
        let printed = mjava::print(&out.final_mutant);
        let reparsed = mjava::parse(&printed).expect("final mutant must reparse");
        assert_eq!(reparsed, out.final_mutant);
    }

    #[test]
    fn invalid_seed_short_circuits() {
        // Every execution (including the seed's) reports a class-loading
        // failure: the run is useless and must say so instead of mutating.
        let seed = mjava::samples::listing2().program;
        let mut cfg = config(1);
        cfg.fault = Some(jvmsim::FaultPlan::new(0, 1.0).with_only(jvmsim::VmFault::BuildFailure));
        let out = fuzz(&seed, &cfg);
        assert!(out.seed_invalid.is_some());
        assert_eq!(out.executions, 1);
        assert!(out.records.is_empty());
        assert_eq!(out.final_mutant, seed);
    }

    /// Regression test for the invalid-parent bug: a child whose execution
    /// reports `InvalidProgram` used to be adopted as the next parent (and
    /// as `final_mutant`) with a zeroed OBV. Discarded children must leave
    /// no record and the accounting identity must hold.
    #[test]
    fn invalid_children_are_discarded_not_adopted() {
        let seed = mjava::samples::listing2().program;
        let guidance = guidance();
        let printed = mjava::print(&seed);
        // Find a plan that spares the seed program itself but fails the
        // build of ~80% of mutated children.
        let plan = (0..1000u64)
            .map(|s| jvmsim::FaultPlan::new(s, 0.8).with_only(jvmsim::VmFault::BuildFailure))
            .find(|p| p.vm_fault(&guidance.name(), &printed).is_none())
            .expect("some plan spares the seed");
        let mut cfg = config(17);
        cfg.max_iterations = 12;
        cfg.fault = Some(plan);
        let out = fuzz(&seed, &cfg);
        assert!(out.seed_invalid.is_none());
        assert!(out.build_failures > 0, "faults at 80% must hit some child");
        // One seed execution + one per recorded child + one per discard.
        assert_eq!(
            out.executions,
            1 + out.records.len() as u64 + out.build_failures
        );
        // The surviving final mutant is a program that actually builds.
        assert!(jexec::Image::build(&out.final_mutant).is_ok());
        // Discarding is deterministic.
        let again = fuzz(&seed, &cfg);
        assert_eq!(again.build_failures, out.build_failures);
        assert_eq!(again.final_mutant, out.final_mutant);
        assert_eq!(again.mutator_history(), out.mutator_history());
    }

    #[test]
    fn banned_mutators_are_never_selected() {
        let seed = mjava::samples::listing2().program;
        let mut cfg = config(5);
        cfg.max_iterations = 10;
        let baseline = fuzz(&seed, &cfg);
        let used: Vec<MutatorKind> = baseline.mutator_history();
        assert!(!used.is_empty());
        // Ban everything the baseline used; the run must avoid all of it.
        cfg.banned = used.clone();
        let restricted = fuzz(&seed, &cfg);
        for kind in restricted.mutator_history() {
            assert!(!used.contains(&kind), "banned mutator {kind:?} selected");
        }
    }

    #[test]
    fn poisoned_weights_do_not_break_selection() {
        // select_weighted must tolerate NaN/∞ weights (e.g. scraped from
        // corrupted profile logs) without panicking in gen_range.
        let mutators = all_mutators();
        let mut weights: HashMap<MutatorKind, f64> =
            MutatorKind::ALL.iter().map(|&k| (k, 1.0)).collect();
        weights.insert(MutatorKind::LoopUnrolling, f64::NAN);
        weights.insert(MutatorKind::Inlining, f64::INFINITY);
        weights.insert(MutatorKind::Deoptimization, -7.0);
        let candidates: Vec<usize> = (0..mutators.len()).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let pick = select_weighted(&candidates, &weights, &mutators, &mut rng);
            assert!(pick < mutators.len());
        }
    }

    #[test]
    fn random_mp_variant_moves_the_point() {
        let seed = mjava::samples::field_state().program;
        let mut cfg = config(13);
        cfg.variant = Variant::RandomMp;
        cfg.max_iterations = 6;
        let out = fuzz(&seed, &cfg);
        assert!(!out.records.is_empty());
    }
}
